//! Failures scenario: the fleet control plane under injected faults.
//!
//! The fleet and churn scenarios assume every machine stays up; real
//! clouds do not get that luxury. This scenario drives the same
//! consolidating fleet through the `kyoto-cluster` fault injector — cell
//! crashes (whose VMs re-enter admission through the bounded-backoff
//! retry queue), transient cell slowdowns and mid-migration aborts — and
//! sweeps crash rate × policy × planner mode. Per sweep point it reports
//! the full fault ledger (crashes, recoveries, slowdowns, aborts by
//! stage, orphans, re-admissions, rejections), the mean re-admission
//! latency, and the degradation penalty each fault rate inflicts on the
//! sensitive VMs relative to the quiet (rate-zero) row of the same
//! policy and planner mode.
//!
//! Two claims ride on the table:
//!
//! * **conservation** — every run re-verifies the VM ledger after the
//!   final epoch: no VM is ever lost or duplicated, whatever the fault
//!   mix (the property tests prove it per epoch; this re-proves it at
//!   scenario scale);
//! * **graceful degradation** — fault injection costs throughput (the
//!   sensitive-VM penalty grows with the crash rate) but never kills the
//!   fleet: rejected orphans are accounted, not dropped.
//!
//! Determinism: the fault plan is a pure function of `(seed, epoch)` and
//! injection happens at epoch boundaries on the control plane, so the
//! rendered table is byte-identical whether cell epochs run serially or
//! one per scoped thread — the CI determinism gate diffs
//! `figures --scenario failures` across both modes.

use crate::config::ExperimentConfig;
use crate::fleet::{self, FleetSweep, SweepCalibration, FLEET_MIX};
use crate::harness::run_jobs;
use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::faults::{FaultPlan, FaultPlanConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_metrics::degradation::degradation_percent;
use serde::{Deserialize, Serialize};

/// The sweep a failures run covers: crash rate × policy × planner mode
/// under fixed abort and slowdown rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSweep {
    /// Cells (machines) in the fleet.
    pub cells: usize,
    /// VMs seeded per cell.
    pub vms_per_cell: usize,
    /// Expected cell crashes per epoch — the sweep axis. The first entry
    /// should be `0.0`: the quiet baseline every faulted row's
    /// degradation penalty is measured against (a rate-zero row still
    /// installs a fault plan, proving the machinery itself is free).
    pub crash_rates: Vec<f64>,
    /// Expected mid-migration aborts per epoch (zeroed on the quiet row).
    pub abort_rate: f64,
    /// Expected cell slowdowns per epoch (zeroed on the quiet row).
    pub slowdown_rate: f64,
    /// Consolidation policies to compare at every crash rate.
    pub policies: Vec<ConsolidationPolicy>,
    /// Planner modes to compare: `false` = fixed move budget, `true` =
    /// cost-aware gate.
    pub cost_modes: Vec<bool>,
    /// Control-loop epochs each run executes.
    pub epochs: u64,
    /// Scheduler ticks per epoch.
    pub epoch_ticks: u64,
    /// Epochs a crashed cell stays down before rebooting.
    pub down_epochs: u64,
    /// Re-admission attempts an orphan gets before rejection.
    pub max_retries: u32,
    /// Paper-scale pollution permit (in thousands) booked by every VM.
    pub permit_paper_kilo: f64,
    /// Seed of the fault plan.
    pub seed: u64,
}

impl FailureSweep {
    /// The standard failures sweep: a 4-cell fleet at 2 VMs per cell,
    /// crash rates 0 / 0.25 / 0.75 against 0.5 aborts and 0.25 slowdowns
    /// per epoch, every policy in both planner modes, eight 6-tick
    /// epochs, 2-epoch reboots, 4 retries.
    pub fn standard() -> Self {
        FailureSweep {
            cells: 4,
            vms_per_cell: 2,
            crash_rates: vec![0.0, 0.25, 0.75],
            abort_rate: 0.5,
            slowdown_rate: 0.25,
            policies: ConsolidationPolicy::ALL.to_vec(),
            cost_modes: vec![false, true],
            epochs: 8,
            epoch_ticks: 6,
            down_epochs: 2,
            max_retries: 4,
            permit_paper_kilo: 250.0,
            seed: 0xFA17,
        }
    }

    /// A small sweep for tests and the CI determinism gate: 3 cells,
    /// rates 0 and 0.75, two policies, both planner modes, six 4-tick
    /// epochs.
    pub fn small() -> Self {
        FailureSweep {
            cells: 3,
            vms_per_cell: 2,
            crash_rates: vec![0.0, 0.75],
            abort_rate: 0.5,
            slowdown_rate: 0.25,
            policies: vec![
                ConsolidationPolicy::LoadBalance,
                ConsolidationPolicy::PollutionAware,
            ],
            cost_modes: vec![false, true],
            epochs: 6,
            epoch_ticks: 4,
            down_epochs: 2,
            max_retries: 3,
            permit_paper_kilo: 250.0,
            seed: 0xFA17,
        }
    }

    /// The fault plan one sweep point installs. A crash rate of zero
    /// zeroes every rate — the quiet baseline row still carries a plan,
    /// so the comparison isolates the *faults*, not the machinery.
    fn plan(&self, crash_rate: f64) -> FaultPlan {
        let quiet = crash_rate == 0.0;
        FaultPlan::new(
            FaultPlanConfig::new(self.seed)
                .with_crash_rate(crash_rate)
                .with_abort_rate(if quiet { 0.0 } else { self.abort_rate })
                .with_slowdown_rate(if quiet { 0.0 } else { self.slowdown_rate })
                .with_down_epochs(self.down_epochs)
                .with_max_retries(self.max_retries),
        )
    }
}

/// One failures sweep point: a crash rate, a policy and a planner mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureCell {
    /// Expected cell crashes per epoch.
    pub crash_rate: f64,
    /// Consolidation policy driving the planner.
    pub policy: ConsolidationPolicy,
    /// Whether the cost-aware gate was on.
    pub cost_aware: bool,
    /// Cell crashes injected over the run.
    pub crashes: u64,
    /// Crashed cells that rebooted within the run.
    pub recoveries: u64,
    /// Transient slowdowns injected.
    pub slowdowns: u64,
    /// Migrations aborted mid-flight (all three stages).
    pub aborted_migrations: u64,
    /// VMs orphaned by crashes.
    pub orphaned: u64,
    /// Orphans re-admitted through the retry queue.
    pub readmitted: u64,
    /// Orphans rejected after exhausting their retries (accounted, not
    /// dropped: their reports are archived with the departed).
    pub rejected_orphans: u64,
    /// Retry attempts that failed and backed off.
    pub retry_backoffs: u64,
    /// Orphans still waiting in the retry queue when the run ended.
    pub queued_orphans: usize,
    /// Mean epochs an orphan waited before re-admission, when any VM was
    /// re-admitted.
    pub mean_readmission_epochs: Option<f64>,
    /// Completed live migrations.
    pub migrations: u64,
    /// VMs resident when the run ended.
    pub final_vms: usize,
    /// Mean degradation (percent vs solo) of every sensitive VM that
    /// ever ran, departed and rejected VMs included.
    pub sensitive_degradation_pct: f64,
    /// Mean degradation (percent vs solo) of every disruptive VM.
    pub disruptive_degradation_pct: f64,
    /// Sensitive-VM degradation penalty vs the quiet (rate-zero) row of
    /// the same policy and planner mode, in percentage points.
    pub sensitive_penalty_vs_quiet_pct: f64,
}

/// The failures dataset: the fleet under every (crash rate, policy,
/// planner mode) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureResult {
    /// Cells in the fleet.
    pub cells: usize,
    /// VMs seeded across the fleet.
    pub initial_vms: usize,
    /// Expected mid-migration aborts per epoch on the faulted rows.
    pub abort_rate: f64,
    /// Expected cell slowdowns per epoch on the faulted rows.
    pub slowdown_rate: f64,
    /// Paper-scale permit booked by every VM.
    pub permit_paper_kilo: f64,
    /// Every sweep point: rate outer, policy middle, planner mode inner.
    pub rows: Vec<FailureCell>,
}

impl FailureResult {
    /// The sweep point for a crash rate / policy / planner mode, if
    /// present.
    pub fn row(
        &self,
        crash_rate: f64,
        policy: ConsolidationPolicy,
        cost_aware: bool,
    ) -> Option<&FailureCell> {
        self.rows.iter().find(|r| {
            (r.crash_rate - crash_rate).abs() < 1e-12
                && r.policy == policy
                && r.cost_aware == cost_aware
        })
    }

    /// Renders the failures table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Fleet failures: crash-rate x policy x planner-mode sweep ({} cells, {} VMs, {:.2} aborts + {:.2} slowdowns/epoch when faulted, {}k permits)\n",
            self.cells,
            self.initial_vms,
            self.abort_rate,
            self.slowdown_rate,
            self.permit_paper_kilo,
        );
        for row in &self.rows {
            let latency = row
                .mean_readmission_epochs
                .map(|l| format!("{l:4.1}"))
                .unwrap_or_else(|| "   -".to_string());
            out.push_str(&format!(
                "  rate {:.2}  {:<17} {:<10}  crash {:>2} recov {:>2} slow {:>2} abort {:>2}  orphan {:>2} readmit {:>2} reject {:>2} queued {:>2} backoff {:>2}  latency {} ep  migr {:>2}  vms {:>2}  degradation sens {:5.1}% / dis {:5.1}%  penalty {:+5.1}pp\n",
                row.crash_rate,
                row.policy.label(),
                if row.cost_aware { "cost-aware" } else { "fixed" },
                row.crashes,
                row.recoveries,
                row.slowdowns,
                row.aborted_migrations,
                row.orphaned,
                row.readmitted,
                row.rejected_orphans,
                row.queued_orphans,
                row.retry_backoffs,
                latency,
                row.migrations,
                row.final_vms,
                row.sensitive_degradation_pct,
                row.disruptive_degradation_pct,
                row.sensitive_penalty_vs_quiet_pct,
            ));
        }
        out
    }
}

/// The fleet-sweep shim that reuses the fleet scenario's calibration
/// (permit conversion + per-app solo baselines) at this sweep's epoch
/// geometry.
fn calibration_sweep(sweep: &FailureSweep) -> FleetSweep {
    FleetSweep {
        cell_counts: Vec::new(),
        vms_per_cell: Vec::new(),
        policies: Vec::new(),
        epochs: sweep.epochs,
        epoch_ticks: sweep.epoch_ticks,
        permit_paper_kilo: sweep.permit_paper_kilo,
        churn: None,
    }
}

/// Runs one failures sweep point: seed the fleet in arrival order,
/// install the fault plan, drive the control loop, re-verify VM
/// conservation and fold every VM that ever ran (re-admitted, rejected
/// and resident alike) into a [`FailureCell`].
pub fn run_failure_cell(
    config: &ExperimentConfig,
    sweep: &FailureSweep,
    crash_rate: f64,
    policy: ConsolidationPolicy,
    cost_aware: bool,
    calibration: &SweepCalibration,
) -> FailureCell {
    let cluster_config = ClusterConfig::new(sweep.cells, config.scale)
        .with_epoch_ticks(sweep.epoch_ticks)
        .with_policy(policy)
        .with_parallel_cells(config.parallel_engine)
        .with_hypervisor(config.hypervisor_config())
        .with_strategy(MonitoringStrategy::SimulatorAttribution)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(4)
                .with_polluter_threshold(calibration.polluter_threshold)
                .with_cost_aware(cost_aware),
        );
    let mut cluster = Cluster::new(cluster_config);
    cluster.install_faults(sweep.plan(crash_rate));
    let vm_count = sweep.cells * sweep.vms_per_cell;
    for i in 0..vm_count {
        let app = FLEET_MIX[i % FLEET_MIX.len()];
        cluster
            .add_vm(
                CellId(i / sweep.vms_per_cell),
                VmConfig::new(format!("fvm{i}-{}", app.name())).with_llc_cap(calibration.permit),
                Box::new(config.workload(app, fleet::app_salt(i))),
            )
            .expect("seeding stays within cell capacity");
    }
    cluster
        .run_epochs(sweep.epochs)
        .expect("the fault boundary handles every injected fault");
    cluster
        .verify_conservation()
        .expect("no VM is lost or duplicated under faults");

    let mut sensitive = (0usize, 0.0f64);
    let mut disruptive = (0usize, 0.0f64);
    for report in cluster.all_reports() {
        let app = fleet::app_of_report(&report.name);
        let solo = calibration
            .baselines
            .iter()
            .find(|(a, _)| *a == app)
            .map(|(_, t)| *t)
            .expect("baseline for every app in the mix");
        let degradation = degradation_percent(solo, report.instructions_per_tick());
        if fleet::is_sensitive(app) {
            sensitive.0 += 1;
            sensitive.1 += degradation;
        } else {
            disruptive.0 += 1;
            disruptive.1 += degradation;
        }
    }
    let mean = |(count, sum): (usize, f64)| if count == 0 { 0.0 } else { sum / count as f64 };
    let faults = cluster.total_faults();
    FailureCell {
        crash_rate,
        policy,
        cost_aware,
        crashes: faults.crashes,
        recoveries: faults.recoveries,
        slowdowns: faults.slowdowns,
        aborted_migrations: faults.aborted_migrations(),
        orphaned: faults.orphaned,
        readmitted: faults.readmitted,
        rejected_orphans: faults.rejected_orphans,
        retry_backoffs: faults.retry_backoffs,
        queued_orphans: cluster.orphan_count(),
        mean_readmission_epochs: cluster.mean_readmission_latency_epochs(),
        migrations: cluster.total_migrations(),
        final_vms: cluster.reports().len(),
        sensitive_degradation_pct: mean(sensitive),
        disruptive_degradation_pct: mean(disruptive),
        // Filled in by the sweep runner once the quiet row is known.
        sensitive_penalty_vs_quiet_pct: 0.0,
    }
}

/// Runs the full sweep described by `sweep`, with the independent sweep
/// points spread over up to `jobs` scoped worker threads (`jobs <= 1`
/// runs serially; the output is byte-identical either way), then charges
/// every faulted row its sensitive-VM penalty against the quiet row of
/// the same policy and planner mode.
pub fn run_with_sweep_jobs(
    config: &ExperimentConfig,
    sweep: &FailureSweep,
    jobs: usize,
) -> FailureResult {
    let calibration = fleet::calibrate_sweep(config, &calibration_sweep(sweep));
    let mut specs: Vec<(f64, ConsolidationPolicy, bool)> = Vec::new();
    for &rate in &sweep.crash_rates {
        for &policy in &sweep.policies {
            for &cost_aware in &sweep.cost_modes {
                specs.push((rate, policy, cost_aware));
            }
        }
    }
    let mut rows = run_jobs(specs.len(), jobs, |index| {
        let (rate, policy, cost_aware) = specs[index];
        run_failure_cell(config, sweep, rate, policy, cost_aware, &calibration)
    });
    let quiet: Vec<(ConsolidationPolicy, bool, f64)> = rows
        .iter()
        .filter(|r| r.crash_rate == 0.0)
        .map(|r| (r.policy, r.cost_aware, r.sensitive_degradation_pct))
        .collect();
    for row in &mut rows {
        row.sensitive_penalty_vs_quiet_pct = quiet
            .iter()
            .find(|(p, c, _)| *p == row.policy && *c == row.cost_aware)
            .map(|(_, _, baseline)| row.sensitive_degradation_pct - baseline)
            .unwrap_or(0.0);
    }
    FailureResult {
        cells: sweep.cells,
        initial_vms: sweep.cells * sweep.vms_per_cell,
        abort_rate: sweep.abort_rate,
        slowdown_rate: sweep.slowdown_rate,
        permit_paper_kilo: sweep.permit_paper_kilo,
        rows,
    }
}

/// Runs the full sweep described by `sweep` on the calling thread.
pub fn run_with_sweep(config: &ExperimentConfig, sweep: &FailureSweep) -> FailureResult {
    run_with_sweep_jobs(config, sweep, 1)
}

/// Runs the standard failures sweep.
pub fn run(config: &ExperimentConfig) -> FailureResult {
    run_with_sweep(config, &FailureSweep::standard())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 11,
            warmup_ticks: 2,
            measure_ticks: 5,
            parallel_engine: false,
        }
    }

    #[test]
    fn sweep_covers_every_point_and_faults_actually_fire() {
        let sweep = FailureSweep::small();
        let result = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(result.rows.len(), 8, "2 rates x 2 policies x 2 modes");
        for row in &result.rows {
            if row.crash_rate == 0.0 {
                assert_eq!(row.crashes, 0, "quiet row must stay quiet: {row:?}");
                assert_eq!(row.orphaned, 0);
                assert_eq!(row.aborted_migrations, 0);
                assert_eq!(
                    row.sensitive_penalty_vs_quiet_pct, 0.0,
                    "the quiet row is its own baseline"
                );
            }
        }
        let faulted: Vec<_> = result.rows.iter().filter(|r| r.crash_rate > 0.0).collect();
        assert!(
            faulted.iter().any(|r| r.crashes > 0),
            "a 0.75 crash rate over 6 epochs must crash something: {faulted:#?}"
        );
        assert!(
            faulted
                .iter()
                .all(|r| r.orphaned == r.readmitted + r.rejected_orphans + r.queued_orphans as u64),
            "every orphan is re-admitted, rejected or still queued: {faulted:#?}"
        );
        let table = result.to_table();
        assert!(table.contains("Fleet failures"));
        assert!(table.contains("cost-aware"));
        assert!(table.contains("rate 0.75"));
    }

    #[test]
    fn runs_are_deterministic_and_cell_parallelism_changes_nothing() {
        let sweep = FailureSweep::small();
        let serial = run_with_sweep(&tiny_config(), &sweep);
        let rerun = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(serial, rerun, "same config, same bytes");
        let parallel = run_with_sweep(&tiny_config().with_parallel_engine(true), &sweep);
        assert_eq!(serial, parallel, "cell-parallel epochs are bit-identical");
        assert_eq!(serial.to_table(), parallel.to_table());
    }

    #[test]
    fn sweep_worker_threads_change_no_bytes() {
        let sweep = FailureSweep::small();
        let serial = run_with_sweep_jobs(&tiny_config(), &sweep, 1);
        let threaded = run_with_sweep_jobs(&tiny_config(), &sweep, 4);
        assert_eq!(serial, threaded);
        assert_eq!(serial.to_table(), threaded.to_table());
    }
}
