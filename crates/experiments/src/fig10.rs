//! Fig. 10 — vCPU isolation could be avoided in some situations.
//!
//! Socket dedication is costly (Fig. 9), so the paper identifies two cases
//! where the measured `llc_cap_act` obtained *without* isolation is already
//! accurate:
//!
//! * a vCPU that generates very few LLC misses (hmmer): its counters are
//!   barely inflated by co-runners because it hardly touches the LLC;
//! * a vCPU that only shares the LLC with low-miss co-runners (bzip among
//!   hmmer neighbours): nobody evicts its lines, so its counters already
//!   reflect its solo behaviour.
//!
//! The figure shows the isolated and non-isolated `llc_cap_act` values side
//! by side for both cases and finds them nearly identical.

use crate::config::ExperimentConfig;
use crate::harness::{measurement_of, spec_workload, warmup_and_measure, SENSITIVE_CORE};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_sim::topology::CoreId;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// One pair of bars in Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// The measured application.
    pub app: SpecApp,
    /// `llc_cap_act` measured while co-located, without any isolation
    /// (raw per-vCPU counters).
    pub not_isolated: f64,
    /// `llc_cap_act` measured with the vCPU isolated (ground truth:
    /// a solo run on the dedicated socket).
    pub isolated: f64,
}

impl Fig10Row {
    /// Relative error (%) of the non-isolated measurement.
    pub fn relative_error_percent(&self) -> f64 {
        if self.isolated.abs() < f64::EPSILON {
            0.0
        } else {
            (self.not_isolated - self.isolated).abs() / self.isolated * 100.0
        }
    }
}

/// The Fig. 10 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// hmmer co-located with disruptive vCPUs (heuristic 1).
    pub hmmer: Fig10Row,
    /// bzip co-located with hmmer-like quiet vCPUs (heuristic 2).
    pub bzip: Fig10Row,
}

impl Fig10Result {
    /// Renders the four bars.
    pub fn to_table(&self) -> String {
        format!(
            "Fig. 10: llc_cap_act with and without vCPU isolation (misses/ms)\n  hmmer   not isolated: {:10.1}   isolated: {:10.1}   (error {:4.1}%)\n  bzip    not isolated: {:10.1}   isolated: {:10.1}   (error {:4.1}%)\n",
            self.hmmer.not_isolated,
            self.hmmer.isolated,
            self.hmmer.relative_error_percent(),
            self.bzip.not_isolated,
            self.bzip.isolated,
            self.bzip.relative_error_percent()
        )
    }
}

/// `llc_cap_act` of `app` running alone (the isolated ground truth).
fn isolated_llc_cap(config: &ExperimentConfig, app: SpecApp) -> f64 {
    let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("measured").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "measured").llc_cap_act()
}

/// `llc_cap_act` of `app` measured from raw counters while co-located with
/// three `neighbour` VMs on the other cores.
fn colocated_llc_cap(config: &ExperimentConfig, app: SpecApp, neighbour: SpecApp) -> f64 {
    let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("measured").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    for i in 0..3u64 {
        hv.add_vm_with(
            VmConfig::new(format!("neighbour-{i}")).pinned_to(vec![CoreId(1 + i as usize)]),
            spec_workload(config, neighbour, 10 + i),
        )
        .expect("valid VM");
    }
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "measured").llc_cap_act()
}

/// Runs the Fig. 10 comparison.
pub fn run(config: &ExperimentConfig) -> Fig10Result {
    Fig10Result {
        // Case 1: hmmer (a low-miss VM) surrounded by disruptors.
        hmmer: Fig10Row {
            app: SpecApp::Hmmer,
            not_isolated: colocated_llc_cap(config, SpecApp::Hmmer, SpecApp::Lbm),
            isolated: isolated_llc_cap(config, SpecApp::Hmmer),
        },
        // Case 2: bzip surrounded by quiet hmmer VMs.
        bzip: Fig10Row {
            app: SpecApp::Bzip,
            not_isolated: colocated_llc_cap(config, SpecApp::Bzip, SpecApp::Hmmer),
            isolated: isolated_llc_cap(config, SpecApp::Bzip),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 29,
            warmup_ticks: 3,
            measure_ticks: 8,
            parallel_engine: false,
        }
    }

    #[test]
    fn low_miss_vms_do_not_need_isolation() {
        let config = tiny_config();
        let result = run(&config);
        // hmmer barely uses the LLC, so both measurements should be small
        // and the bzip-among-hmmers case should stay close to its solo value.
        assert!(
            result.bzip.relative_error_percent() < 60.0,
            "bzip among quiet neighbours should measure close to its solo value (error {:.1}%)",
            result.bzip.relative_error_percent()
        );
        let lbm_solo = isolated_llc_cap(&config, SpecApp::Lbm);
        assert!(
            result.hmmer.isolated < lbm_solo / 10.0,
            "hmmer must be a low polluter compared to lbm"
        );
        assert!(result.to_table().contains("hmmer"));
    }
}
