//! Fig. 3 — The processor is a good lever for punishing disruptive VMs.
//!
//! Each sensitive VM (`vsen1..3` = gcc, omnetpp, soplex) runs in parallel
//! with `vdis1` (lbm) while the disruptor's computing capacity (its Xen
//! `cap`) sweeps from a small share to 100 %. The paper observes that the
//! sensitive VM's degradation grows roughly linearly with the disruptor's
//! computing capacity — which is what justifies using the processor as the
//! lever that enforces pollution permits.

use crate::config::ExperimentConfig;
use crate::harness::{
    measurement_of, spec_workload, warmup_and_measure, DISRUPTOR_CORE, SENSITIVE_CORE,
};
use kyoto_hypervisor::hypervisor::HypervisorConfig;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_metrics::degradation::degradation_percent;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// The cap sweep needs a finer enforcement granularity than Xen's default
/// 3-tick slice (a cap is rounded up to whole ticks within a slice): a 3 ms
/// tick with a 10-tick (30 ms) slice resolves cap steps of 10 %.
fn fine_grained_hypervisor_config(config: &ExperimentConfig) -> HypervisorConfig {
    HypervisorConfig {
        tick_ms: 3,
        ticks_per_slice: 10,
        ..config.hypervisor_config()
    }
}

/// One point of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// The sensitive application.
    pub sensitive: SpecApp,
    /// The disruptor's CPU cap, in percent of one core.
    pub disruptor_cap_percent: u32,
    /// Degradation (%) of the sensitive VM's IPC relative to running alone.
    pub degradation_percent: f64,
}

/// The Fig. 3 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// The swept cap values.
    pub caps: Vec<u32>,
    /// One point per (sensitive app, cap).
    pub points: Vec<Fig3Point>,
}

impl Fig3Result {
    /// The degradation series of one sensitive application, in cap order.
    pub fn series_of(&self, app: SpecApp) -> Vec<(u32, f64)> {
        self.caps
            .iter()
            .filter_map(|&cap| {
                self.points
                    .iter()
                    .find(|p| p.sensitive == app && p.disruptor_cap_percent == cap)
                    .map(|p| (cap, p.degradation_percent))
            })
            .collect()
    }

    /// Renders the dataset as a table (one column per sensitive VM).
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "Fig. 3: % degradation of vsen_i vs vdis1 (lbm) computing capacity\n  cap%     vsen1(gcc)  vsen2(omnetpp)  vsen3(soplex)\n",
        );
        for &cap in &self.caps {
            let mut line = format!("  {cap:4}    ");
            for app in SpecApp::SENSITIVE_VMS {
                let value = self
                    .points
                    .iter()
                    .find(|p| p.sensitive == app && p.disruptor_cap_percent == cap)
                    .map(|p| p.degradation_percent)
                    .unwrap_or(f64::NAN);
                line.push_str(&format!(" {value:11.1}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

fn solo_ipc(config: &ExperimentConfig, app: SpecApp) -> f64 {
    let mut hv = xen_hypervisor(config.machine(), fine_grained_hypervisor_config(config));
    hv.add_vm_with(
        VmConfig::new("sen").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "sen").ipc()
}

fn contended_ipc(config: &ExperimentConfig, app: SpecApp, cap_percent: u32) -> f64 {
    let mut hv = xen_hypervisor(config.machine(), fine_grained_hypervisor_config(config));
    hv.add_vm_with(
        VmConfig::new("sen").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("dis")
            .pinned_to(vec![DISRUPTOR_CORE])
            .with_cap_percent(cap_percent),
        spec_workload(config, SpecApp::Lbm, 2),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "sen").ipc()
}

/// Runs Fig. 3 with an explicit set of cap values.
pub fn run_with_caps(config: &ExperimentConfig, caps: &[u32]) -> Fig3Result {
    let mut points = Vec::new();
    for app in SpecApp::SENSITIVE_VMS {
        let solo = solo_ipc(config, app);
        for &cap in caps {
            let ipc = contended_ipc(config, app, cap);
            points.push(Fig3Point {
                sensitive: app,
                disruptor_cap_percent: cap,
                degradation_percent: degradation_percent(solo, ipc),
            });
        }
    }
    Fig3Result {
        caps: caps.to_vec(),
        points,
    }
}

/// Runs Fig. 3 with the paper's sweep (10 % to 100 %).
pub fn run(config: &ExperimentConfig) -> Fig3Result {
    run_with_caps(config, &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 11,
            warmup_ticks: 3,
            measure_ticks: 6,
            parallel_engine: false,
        }
    }

    #[test]
    fn more_disruptor_cpu_means_more_degradation() {
        let config = tiny_config();
        let result = run_with_caps(&config, &[20, 100]);
        let gcc = result.series_of(SpecApp::Gcc);
        assert_eq!(gcc.len(), 2);
        let low = gcc[0].1;
        let high = gcc[1].1;
        assert!(
            high > low,
            "a full-speed lbm must hurt gcc more than a 20%-capped one ({low:.1}% vs {high:.1}%)"
        );
    }

    #[test]
    fn table_lists_every_cap() {
        let result = Fig3Result {
            caps: vec![50],
            points: vec![Fig3Point {
                sensitive: SpecApp::Gcc,
                disruptor_cap_percent: 50,
                degradation_percent: 7.5,
            }],
        };
        let table = result.to_table();
        assert!(table.contains("50"));
        assert!(table.contains("7.5"));
        assert_eq!(result.series_of(SpecApp::Omnetpp).len(), 0);
    }
}
