//! Fig. 8 — Comparison of Kyoto with Pisces.
//!
//! Pisces removes hypervisor-level interference by giving every enclave
//! exclusive cores and memory, yet the LLC stays shared: the paper measures
//! a ~24 % execution-time gap for `vsen1` (gcc) between running alone and
//! running co-located with `vdis1` (lbm) on plain Pisces, and shows that
//! KS4Pisces (Pisces + Kyoto pollution enforcement) closes that gap.

use crate::config::ExperimentConfig;
use crate::harness::{
    calibrate_permits, measurement_of, spec_workload, warmup_and_measure, DISRUPTOR_CORE,
    SENSITIVE_CORE,
};
use kyoto_core::ks4::ks4pisces_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::pisces_system;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// Work amount (instructions) whose execution time the bars report. The
/// absolute value is arbitrary; only the ratios matter.
const FIXED_WORK_INSTRUCTIONS: f64 = 50_000_000.0;

/// The Fig. 8 dataset: execution times of `vsen1` in the four configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Execution time on plain Pisces, running alone.
    pub pisces_alone: f64,
    /// Execution time on plain Pisces, co-located with lbm.
    pub pisces_colocated: f64,
    /// Execution time on KS4Pisces, running alone.
    pub ks4pisces_alone: f64,
    /// Execution time on KS4Pisces, co-located with lbm.
    pub ks4pisces_colocated: f64,
}

impl Fig8Result {
    /// Relative execution-time increase (in %) on plain Pisces when
    /// co-located — the paper reports about 24 %.
    pub fn pisces_gap_percent(&self) -> f64 {
        if self.pisces_alone <= 0.0 {
            0.0
        } else {
            (self.pisces_colocated - self.pisces_alone) / self.pisces_alone * 100.0
        }
    }

    /// Relative execution-time increase (in %) on KS4Pisces when co-located.
    pub fn ks4pisces_gap_percent(&self) -> f64 {
        if self.ks4pisces_alone <= 0.0 {
            0.0
        } else {
            (self.ks4pisces_colocated - self.ks4pisces_alone) / self.ks4pisces_alone * 100.0
        }
    }

    /// Renders the four bars.
    pub fn to_table(&self) -> String {
        format!(
            "Fig. 8: vsen1 execution time (arbitrary seconds)\n  Pisces      alone: {:8.2}   colocated: {:8.2}   (gap {:+.1}%)\n  KS4Pisces   alone: {:8.2}   colocated: {:8.2}   (gap {:+.1}%)\n",
            self.pisces_alone,
            self.pisces_colocated,
            self.pisces_gap_percent(),
            self.ks4pisces_alone,
            self.ks4pisces_colocated,
            self.ks4pisces_gap_percent()
        )
    }
}

fn pisces_run(config: &ExperimentConfig, colocated: bool) -> f64 {
    let mut hv = pisces_system(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("vsen1").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    if colocated {
        hv.add_vm_with(
            VmConfig::new("vdis1").pinned_to(vec![DISRUPTOR_CORE]),
            spec_workload(config, SpecApp::Lbm, 2),
        )
        .expect("valid VM");
    }
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "vsen1").execution_time_for(FIXED_WORK_INSTRUCTIONS)
}

fn ks4pisces_run(config: &ExperimentConfig, colocated: bool, permit: f64) -> f64 {
    let mut hv = ks4pisces_hypervisor(
        config.machine(),
        config.hypervisor_config(),
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    hv.add_vm_with(
        VmConfig::new("vsen1")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(permit),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    if colocated {
        hv.add_vm_with(
            VmConfig::new("vdis1")
                .pinned_to(vec![DISRUPTOR_CORE])
                .with_llc_cap(permit),
            spec_workload(config, SpecApp::Lbm, 2),
        )
        .expect("valid VM");
    }
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "vsen1").execution_time_for(FIXED_WORK_INSTRUCTIONS)
}

/// Runs the Fig. 8 comparison.
pub fn run(config: &ExperimentConfig) -> Fig8Result {
    let permit = calibrate_permits(config).paper_kilo(250.0);
    Fig8Result {
        pisces_alone: pisces_run(config, false),
        pisces_colocated: pisces_run(config, true),
        ks4pisces_alone: ks4pisces_run(config, false, permit),
        ks4pisces_colocated: ks4pisces_run(config, true, permit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 19,
            warmup_ticks: 3,
            measure_ticks: 8,
            parallel_engine: false,
        }
    }

    #[test]
    fn pisces_alone_suffers_no_hypervisor_interference() {
        let config = tiny_config();
        let alone = pisces_run(&config, false);
        assert!(alone.is_finite() && alone > 0.0);
    }

    #[test]
    fn plain_pisces_suffers_llc_contention_and_kyoto_reduces_it() {
        let config = tiny_config();
        let result = run(&config);
        assert!(
            result.pisces_gap_percent() > 5.0,
            "plain Pisces should show an execution-time gap under co-location, got {:+.1}%",
            result.pisces_gap_percent()
        );
        assert!(
            result.ks4pisces_gap_percent() < result.pisces_gap_percent(),
            "KS4Pisces ({:+.1}%) must shrink the gap of plain Pisces ({:+.1}%)",
            result.ks4pisces_gap_percent(),
            result.pisces_gap_percent()
        );
        assert!(result.to_table().contains("KS4Pisces"));
    }
}
