//! # kyoto-experiments — scenario builders for every table and figure
//!
//! Each module of this crate reproduces one table or figure of the paper
//! ("Mitigating performance unpredictability in the IaaS using the Kyoto
//! principle", Middleware 2016) as a pure function from an
//! [`config::ExperimentConfig`] to a serialisable result type with a
//! `to_table()` renderer:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`tables`] | Table 1 (machine) and Table 2 (experimental VMs) |
//! | [`fig1`] | LLC contention impact per VM category and execution mode |
//! | [`fig2`] | LLC-miss traces of `v2rep` over the first time slices |
//! | [`fig3`] | Degradation vs the disruptor's computing capacity |
//! | [`fig4`] | Equation 1 vs LLCM aggressiveness ranking (Kendall's tau) |
//! | [`fig5`] | KS4Xen effectiveness (normalised perf, punishments, traces) |
//! | [`fig6`] | KS4Xen scalability with 1–15 co-located disruptor vCPUs |
//! | [`fig8`] | Pisces vs KS4Pisces execution times |
//! | [`fig9`] | Socket-dedication migration overhead per application |
//! | [`fig10`] | Cases where vCPU isolation can be skipped |
//! | [`fig11`] | Equation-1 values with vs without socket dedication |
//! | [`fig12`] | KS4Xen overhead vs the scheduling time slice |
//!
//! Beyond the paper, [`cloudscale`] models a cloud-scale consolidation
//! machine (N sockets, dozens of VMs, placement policies) — the first
//! scenario whose socket-parallel execution scales past two threads —
//! [`fleet`] models a whole cluster of such machines under a live-migrating
//! control plane (`kyoto-cluster`), comparing load-balancing, bin-packing
//! and pollution-aware consolidation, [`failures`] drives that fleet
//! through injected faults (cell crashes, slowdowns, mid-migration
//! aborts), sweeping crash rate × policy × planner mode and re-proving VM
//! conservation at scenario scale, and [`service`] puts the
//! `kyoto-service` control plane in front of the fleet — replaying a
//! request trace through the SLA-aware admission controller over an
//! arrival-rate × admission-policy sweep, mid-trace checkpoint/restore
//! included. [`trace`] maps every one of those targets to a
//! representative cycle-domain traced run (`kyoto-trace`), backing
//! `figures --trace-out <path>`.
//!
//! (Fig. 7 is the Pisces architecture diagram; its description lives in
//! `kyoto_hypervisor::pisces`.)
//!
//! The same functions back the `figures` binary of `kyoto-bench`, the
//! Criterion benchmarks, the integration tests and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloudscale;
pub mod config;
pub mod failures;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod harness;
pub mod interactive;
pub mod service;
pub mod tables;
pub mod trace;

pub use config::{ExperimentConfig, Fidelity};
pub use harness::{
    calibrate_permits, warmup_and_measure, ExecutionMode, Measurement, PermitCalibration,
};
