//! Interactive scenario — sleep-mostly latency-sensitive VMs consolidated
//! with batch polluters under KS4Xen.
//!
//! The paper's evaluation keeps every VM CPU-hungry; real consolidation also
//! hosts interactive services that sleep most of the time (WFI) and run
//! short bursts when a request arrives. This scenario pairs two such
//! services with two batch VMs on shared cores and reports, per VM:
//!
//! * the **blocked fraction** (share of ticks spent asleep),
//! * the **wake-to-completion latency** (ticks between a wake event and the
//!   burst actually running — the scheduling delay an end user feels),
//! * the **pollution estimate and punishments**, showing that KS4Xen keeps
//!   punishing the batch polluter that overruns its permit while the
//!   sleeping services — whose Equation-1 estimate stays low because blocked
//!   vCPUs consume no CPU time — are never punished.

use crate::config::ExperimentConfig;
use crate::harness::vm_seed;
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::hypervisor::TickSample;
use kyoto_hypervisor::lifecycle::WakeSource;
use kyoto_hypervisor::vm::{VcpuId, VmConfig};
use kyoto_sim::topology::CoreId;
use kyoto_workloads::interactive::Interactive;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use serde::{Deserialize, Serialize};

/// Every interactive VM is woken by a periodic timer with this period.
pub const WAKE_PERIOD_TICKS: u64 = 4;

/// Ops granted per wake — below the engine's fetch chunk, so each burst
/// completes within the first scheduled tick after the wake.
const BURST_OPS: u32 = 48;

/// One VM of the interactive scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveRow {
    /// VM name (`svc-*` are interactive, `batch-*` are always-runnable).
    pub vm: String,
    /// Fraction of ticks the VM spent Blocked.
    pub blocked_fraction: f64,
    /// Fraction of ticks the VM was scheduled.
    pub cpu_share: f64,
    /// KS4Xen's smoothed Equation-1 pollution estimate (misses/ms).
    pub pollution_rate: f64,
    /// Punishments inflicted on the VM over the run.
    pub punishments: u64,
    /// Mean ticks between a wake event and the burst running
    /// (`None` for batch VMs, which never sleep).
    pub mean_wake_latency_ticks: Option<f64>,
}

/// The interactive scenario dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveResult {
    /// The wake-timer period shared by the interactive VMs.
    pub wake_period_ticks: u64,
    /// One row per VM, in creation order.
    pub rows: Vec<InteractiveRow>,
}

impl InteractiveResult {
    /// The row of one VM.
    pub fn row(&self, vm: &str) -> Option<&InteractiveRow> {
        self.rows.iter().find(|r| r.vm == vm)
    }

    /// Renders the scenario table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Interactive scenario: sleep-mostly services vs batch polluters \
             (wake period {} ticks)\n",
            self.wake_period_ticks
        );
        out.push_str("  vm            blocked  cpu-share  pollution  punished  wake-latency\n");
        for row in &self.rows {
            let latency = row
                .mean_wake_latency_ticks
                .map(|l| format!("{l:.2} ticks"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "  {:<13} {:6.1}%  {:8.1}%  {:9.1}  {:8}  {}\n",
                row.vm,
                row.blocked_fraction * 100.0,
                row.cpu_share * 100.0,
                row.pollution_rate,
                row.punishments,
                latency
            ));
        }
        out
    }
}

/// Mean ticks from each wake event to the next tick the vCPU actually ran.
/// Wakes that never got scheduled before the run ended are dropped.
fn mean_wake_latency(
    history: &[TickSample],
    vcpu: VcpuId,
    period: u64,
    total_ticks: u64,
) -> Option<f64> {
    let scheduled: Vec<u64> = history
        .iter()
        .filter(|s| s.vcpu == vcpu && s.scheduled)
        .map(|s| s.tick)
        .collect();
    // The vCPU starts Ready (tick 0 behaves like a wake); afterwards the
    // periodic timer wakes it at every multiple of the period.
    let wakes = (0..total_ticks).filter(|&t| t == 0 || t.is_multiple_of(period));
    let latencies: Vec<f64> = wakes
        .filter_map(|w| {
            scheduled
                .iter()
                .find(|&&s| s >= w)
                .map(|&s| (s - w) as f64)
        })
        .collect();
    if latencies.is_empty() {
        None
    } else {
        Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
    }
}

/// Runs the interactive scenario.
pub fn run(config: &ExperimentConfig) -> InteractiveResult {
    let hv_config = config.hypervisor_config().with_history();
    let mut hv = ks4xen_hypervisor(config.machine(), hv_config, MonitoringStrategy::DirectPmc);

    // Two interactive services, each sharing a core with a batch VM. The
    // generous permit mirrors what a latency-sensitive tenant would book;
    // sleeping keeps their measured pollution far below it anyway.
    let generous = config.scaled_llc_cap(250_000.0);
    let tight = config.scaled_llc_cap(50_000.0);
    let interactive = |app: SpecApp, salt: u64| {
        Box::new(Interactive::new(
            SpecWorkload::new(app, config.scale, vm_seed(config, salt)),
            BURST_OPS,
        ))
    };
    let wake = |salt: u64| {
        WakeSource::new(config.seed.wrapping_add(salt)).with_timer_period(WAKE_PERIOD_TICKS)
    };
    hv.add_vm_with(
        VmConfig::new("svc-gcc")
            .pinned_to(vec![CoreId(0)])
            .with_llc_cap(generous)
            .with_wake_source(wake(1)),
        interactive(SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("batch-lbm")
            .pinned_to(vec![CoreId(0)])
            .with_llc_cap(tight),
        Box::new(SpecWorkload::new(
            SpecApp::Lbm,
            config.scale,
            vm_seed(config, 2),
        )),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("svc-omnetpp")
            .pinned_to(vec![CoreId(1)])
            .with_llc_cap(generous)
            .with_wake_source(wake(3)),
        interactive(SpecApp::Omnetpp, 3),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("batch-mcf")
            .pinned_to(vec![CoreId(1)])
            .with_llc_cap(generous),
        Box::new(SpecWorkload::new(
            SpecApp::Mcf,
            config.scale,
            vm_seed(config, 4),
        )),
    )
    .expect("valid VM");

    let total_ticks = config.total_ticks();
    hv.run_ticks(total_ticks);

    let rows = hv
        .vm_ids()
        .into_iter()
        .map(|vm| {
            let report = hv.report(vm).expect("resident VM");
            let vcpu = VcpuId::new(vm, 0);
            let pollution_rate = hv.scheduler().measured_llc_cap(vcpu).unwrap_or(0.0);
            let mean_latency = if report.ticks_blocked > 0 {
                mean_wake_latency(hv.history(), vcpu, WAKE_PERIOD_TICKS, total_ticks)
            } else {
                None
            };
            InteractiveRow {
                vm: report.name.clone(),
                blocked_fraction: report.blocked_fraction(),
                cpu_share: report.cpu_share(),
                pollution_rate,
                punishments: report.punishments,
                mean_wake_latency_ticks: mean_latency,
            }
        })
        .collect();
    InteractiveResult {
        wake_period_ticks: WAKE_PERIOD_TICKS,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 17,
            warmup_ticks: 4,
            measure_ticks: 20,
            parallel_engine: false,
        }
    }

    #[test]
    fn services_sleep_and_batch_vms_do_not() {
        let result = run(&tiny());
        for svc in ["svc-gcc", "svc-omnetpp"] {
            let row = result.row(svc).unwrap();
            assert!(
                row.blocked_fraction > 0.5,
                "{svc} should sleep most of the time, got {}",
                row.blocked_fraction
            );
            assert!(row.mean_wake_latency_ticks.is_some());
        }
        for batch in ["batch-lbm", "batch-mcf"] {
            let row = result.row(batch).unwrap();
            assert_eq!(row.blocked_fraction, 0.0, "{batch} never blocks");
            assert_eq!(row.mean_wake_latency_ticks, None);
        }
    }

    #[test]
    fn sleeping_services_are_never_punished_but_the_tight_batch_vm_is() {
        let result = run(&tiny());
        let lbm = result.row("batch-lbm").unwrap();
        assert!(
            lbm.punishments > 0,
            "lbm overruns its tight permit and must be punished"
        );
        for svc in ["svc-gcc", "svc-omnetpp"] {
            let row = result.row(svc).unwrap();
            assert_eq!(row.punishments, 0, "{svc} sleeps within its permit");
            assert!(
                row.pollution_rate < lbm.pollution_rate,
                "a sleeping service must pollute less than the batch polluter"
            );
        }
    }

    #[test]
    fn wakes_are_served_within_a_period() {
        let result = run(&tiny());
        for svc in ["svc-gcc", "svc-omnetpp"] {
            let latency = result.row(svc).unwrap().mean_wake_latency_ticks.unwrap();
            assert!(
                latency < WAKE_PERIOD_TICKS as f64,
                "{svc} mean wake latency {latency} should stay below the period"
            );
        }
    }

    #[test]
    fn the_scenario_is_deterministic_and_renders() {
        let config = tiny();
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a, b);
        let table = a.to_table();
        assert!(table.contains("svc-gcc"));
        assert!(table.contains("batch-lbm"));
        assert!(table.contains("wake period 4 ticks"));
    }
}
