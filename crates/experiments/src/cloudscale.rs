//! Cloud-scale consolidation scenario: many VMs across an N-socket machine.
//!
//! Every figure of the paper runs the single-socket testbed (plus the
//! two-socket PowerEdge for Fig. 9), so the socket-parallel engine never
//! shows up in shipped output. This scenario models the regime that sizes
//! consolidator middleware — dozens of VMs with heterogeneous working sets
//! fanned out across 2–8 sockets — and reports per-socket PMC aggregates for
//! every cell of a socket-count × VM-count sweep, plus a placement-policy
//! comparison at the largest cell.
//!
//! Placement flows through the ordinary machinery: [`place_vms`] produces
//! core pinnings and NUMA nodes, the scheduler's pinning filter keeps each
//! VM on its core, and `Machine::route` charges remote latencies for
//! off-node memory. Nothing here bypasses the hypervisor.
//!
//! The rendered table is *byte-identical* with and without the
//! socket-parallel engine (`--parallel-engine`): `run_slots_parallel`
//! preserves per-socket op order exactly, which `engine_equivalence.rs`
//! proves at 4 and 8 sockets. Wall-clock scaling of the parallel engine is
//! measured separately by [`measure_parallel_scaling`] (consumed by the
//! `substrate_baseline` binary), so the deterministic report stays free of
//! timing noise.

use crate::config::ExperimentConfig;
use crate::harness::{calibrate_permits, run_jobs, spec_workload, warmup_and_measure, Measurement};
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::placement::{place_vms, Placement, PlacementPolicy};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// The heterogeneous application mix cycled across the VMs of a cell:
/// cache-sensitive, streaming/disruptive and compute-bound apps interleaved
/// so every socket hosts a blend of polluters and victims.
pub const APP_MIX: [SpecApp; 8] = [
    SpecApp::Gcc,
    SpecApp::Lbm,
    SpecApp::Hmmer,
    SpecApp::Mcf,
    SpecApp::Milc,
    SpecApp::Bzip,
    SpecApp::Omnetpp,
    SpecApp::Soplex,
];

/// The sweep a cloudscale run covers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloudscaleSweep {
    /// Socket counts of the machines to build.
    pub socket_counts: Vec<usize>,
    /// VM counts per socket (the cell's VM count is `sockets * this`).
    pub vms_per_socket: Vec<usize>,
    /// Placement policy of the main sweep cells.
    pub placement: PlacementPolicy,
    /// When set, every policy is additionally compared at the largest cell.
    pub compare_policies: bool,
    /// When set, the largest cell is additionally run under KS4Xen with
    /// pollution permits booked for every VM — the Kyoto-on-cloudscale
    /// figure (per-socket punishment aggregates, XCS vs KS4Xen sensitive-VM
    /// comparison).
    pub kyoto: bool,
}

impl CloudscaleSweep {
    /// The standard sweep: 2/4/8 sockets × 2/3 VMs per socket under
    /// round-robin placement, plus a policy comparison at 8 sockets ×
    /// 3 VMs per socket.
    pub fn standard() -> Self {
        CloudscaleSweep {
            socket_counts: vec![2, 4, 8],
            vms_per_socket: vec![2, 3],
            placement: PlacementPolicy::RoundRobin,
            compare_policies: true,
            kyoto: true,
        }
    }

    /// A small sweep for tests and the CI determinism gate: 2/4 sockets,
    /// two VMs per socket, no policy comparison, Kyoto cell included (at 4
    /// sockets).
    pub fn small() -> Self {
        CloudscaleSweep {
            socket_counts: vec![2, 4],
            vms_per_socket: vec![2],
            placement: PlacementPolicy::RoundRobin,
            compare_policies: false,
            kyoto: true,
        }
    }
}

/// PMC aggregates of all VMs placed on one socket, over the measurement
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketAggregate {
    /// The socket.
    pub socket: usize,
    /// VMs placed on it.
    pub vms: usize,
    /// Instructions retired by its VMs.
    pub instructions: u64,
    /// Unhalted cycles consumed by its VMs.
    pub cycles: u64,
    /// LLC references of its VMs.
    pub llc_references: u64,
    /// LLC misses of its VMs.
    pub llc_misses: u64,
    /// Remote-memory accesses of its VMs.
    pub remote_accesses: u64,
}

impl SocketAggregate {
    /// Aggregate instructions per cycle of the socket's VMs.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC miss ratio of the socket's VMs.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.llc_references == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_references as f64
        }
    }
}

/// One cell of the sweep: a machine size, a VM count and a placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudscaleCell {
    /// Sockets of the machine.
    pub sockets: usize,
    /// VMs consolidated onto it.
    pub vms: usize,
    /// Placement policy used.
    pub placement: PlacementPolicy,
    /// Per-socket aggregates, in socket order (sockets the policy left
    /// empty report zero VMs).
    pub per_socket: Vec<SocketAggregate>,
}

impl CloudscaleCell {
    /// Machine-wide aggregate IPC.
    pub fn aggregate_ipc(&self) -> f64 {
        let instructions: u64 = self.per_socket.iter().map(|s| s.instructions).sum();
        let cycles: u64 = self.per_socket.iter().map(|s| s.cycles).sum();
        if cycles == 0 {
            0.0
        } else {
            instructions as f64 / cycles as f64
        }
    }

    /// Machine-wide instructions retired.
    pub fn total_instructions(&self) -> u64 {
        self.per_socket.iter().map(|s| s.instructions).sum()
    }
}

/// Per-socket aggregate of the Kyoto-on-cloudscale run: what KS4Xen's
/// punishment machinery did on each socket of the big machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KyotoSocketAggregate {
    /// The socket.
    pub socket: usize,
    /// VMs placed on it.
    pub vms: usize,
    /// VMs on it that were punished at least once.
    pub punished_vms: usize,
    /// Punishments inflicted on its VMs over the measurement window.
    pub punishments: u64,
    /// LLC misses of its VMs.
    pub llc_misses: u64,
    /// Aggregate IPC of its VMs.
    pub ipc: f64,
}

/// The Kyoto-on-cloudscale figure: KS4Xen with permits across the N-socket
/// machine, against the same placement under plain XCS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KyotoCloudCell {
    /// Sockets of the machine.
    pub sockets: usize,
    /// VMs consolidated onto it.
    pub vms: usize,
    /// Paper-scale permit (in thousands) booked by every VM.
    pub permit_paper_kilo: f64,
    /// Per-socket punishment aggregates under KS4Xen.
    pub per_socket: Vec<KyotoSocketAggregate>,
    /// Mean IPC of the cache-sensitive VMs under plain XCS.
    pub sensitive_ipc_xcs: f64,
    /// Mean IPC of the cache-sensitive VMs under KS4Xen.
    pub sensitive_ipc_ks4: f64,
}

impl KyotoCloudCell {
    /// Total punishments across every socket.
    pub fn total_punishments(&self) -> u64 {
        self.per_socket.iter().map(|s| s.punishments).sum()
    }

    /// Relative sensitive-VM improvement of KS4Xen over XCS (1.0 = parity).
    pub fn sensitive_speedup(&self) -> f64 {
        if self.sensitive_ipc_xcs <= 0.0 {
            0.0
        } else {
            self.sensitive_ipc_ks4 / self.sensitive_ipc_xcs
        }
    }
}

/// The cloudscale dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudscaleResult {
    /// Every cell, in sweep order (socket count outer, VM count inner, then
    /// the policy-comparison cells).
    pub cells: Vec<CloudscaleCell>,
    /// The Kyoto-on-cloudscale figure, when the sweep requested it.
    pub kyoto: Option<KyotoCloudCell>,
}

impl CloudscaleResult {
    /// The cell for a machine size / VM count / placement, if present.
    pub fn cell(
        &self,
        sockets: usize,
        vms: usize,
        placement: PlacementPolicy,
    ) -> Option<&CloudscaleCell> {
        self.cells
            .iter()
            .find(|c| c.sockets == sockets && c.vms == vms && c.placement == placement)
    }

    /// Renders the per-socket aggregate table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "Cloudscale: per-socket PMC aggregates across the socket-count x VM-count sweep\n",
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "  {} sockets, {} VMs, {:<11}  aggregate IPC {:.3}\n",
                cell.sockets,
                cell.vms,
                cell.placement.label(),
                cell.aggregate_ipc()
            ));
            for socket in &cell.per_socket {
                out.push_str(&format!(
                    "    socket{}: {} vms  ipc {:.3}  llc_refs {:>9}  llc_miss {:5.1}%  remote {:>7}\n",
                    socket.socket,
                    socket.vms,
                    socket.ipc(),
                    socket.llc_references,
                    socket.llc_miss_ratio() * 100.0,
                    socket.remote_accesses,
                ));
            }
        }
        if let Some(kyoto) = &self.kyoto {
            out.push_str(&format!(
                "  Kyoto on cloudscale: KS4Xen, {} sockets, {} VMs, {}k permits (sensitive IPC {:.3} -> {:.3}, x{:.2})\n",
                kyoto.sockets,
                kyoto.vms,
                kyoto.permit_paper_kilo,
                kyoto.sensitive_ipc_xcs,
                kyoto.sensitive_ipc_ks4,
                kyoto.sensitive_speedup(),
            ));
            for socket in &kyoto.per_socket {
                out.push_str(&format!(
                    "    socket{}: {} vms ({} punished)  punishments {:>5}  llc_miss {:>8}  ipc {:.3}\n",
                    socket.socket,
                    socket.vms,
                    socket.punished_vms,
                    socket.punishments,
                    socket.llc_misses,
                    socket.ipc,
                ));
            }
        }
        out
    }
}

/// Builds the VM population of a cell: `vms` single-vCPU VMs cycling through
/// [`APP_MIX`], with per-VM seeds derived from the experiment seed.
fn build_workloads(config: &ExperimentConfig, vms: usize) -> Vec<(SpecApp, Box<dyn Workload>)> {
    (0..vms)
        .map(|i| {
            let app = APP_MIX[i % APP_MIX.len()];
            (app, spec_workload(config, app, 0xc10d + i as u64))
        })
        .collect()
}

/// Runs one cell: build the N-socket machine, place the VMs, run
/// warm-up + measurement, and aggregate PMCs per socket.
pub fn run_cell(
    config: &ExperimentConfig,
    sockets: usize,
    vms: usize,
    placement: PlacementPolicy,
) -> CloudscaleCell {
    let machine_config = config.cloud_machine_config(sockets);
    let workloads = build_workloads(config, vms);
    let working_sets: Vec<u64> = workloads
        .iter()
        .map(|(_, workload)| workload.working_set_bytes())
        .collect();
    let placements: Vec<Placement> = place_vms(placement, &machine_config, &working_sets);
    let mut hv = xen_hypervisor(config.cloud_machine(sockets), config.hypervisor_config());
    for (i, ((app, workload), vm_placement)) in workloads.into_iter().zip(&placements).enumerate() {
        let vm_config = vm_placement.apply(VmConfig::new(format!("vm{i}-{}", app.name())));
        hv.add_vm_with(vm_config, workload).expect("valid VM");
    }
    let measurements = warmup_and_measure(&mut hv, config);
    CloudscaleCell {
        sockets,
        vms,
        placement,
        per_socket: aggregate_by_socket(sockets, &placements, &measurements),
    }
}

fn aggregate_by_socket(
    sockets: usize,
    placements: &[Placement],
    measurements: &[Measurement],
) -> Vec<SocketAggregate> {
    let mut per_socket: Vec<SocketAggregate> = (0..sockets)
        .map(|socket| SocketAggregate {
            socket,
            vms: 0,
            instructions: 0,
            cycles: 0,
            llc_references: 0,
            llc_misses: 0,
            remote_accesses: 0,
        })
        .collect();
    for (placement, measurement) in placements.iter().zip(measurements) {
        let aggregate = &mut per_socket[placement.socket.0];
        aggregate.vms += 1;
        aggregate.instructions += measurement.pmc_delta.instructions;
        aggregate.cycles += measurement.pmc_delta.unhalted_core_cycles;
        aggregate.llc_references += measurement.pmc_delta.llc_references;
        aggregate.llc_misses += measurement.pmc_delta.llc_misses;
        aggregate.remote_accesses += measurement.pmc_delta.remote_accesses;
    }
    per_socket
}

/// Paper-scale permit (in thousands) booked by every VM of the
/// Kyoto-on-cloudscale cell — the `250k` of the paper's Fig. 5.
pub const KYOTO_PERMIT_PAPER_KILO: f64 = 250.0;

/// Runs the Kyoto-on-cloudscale cell: the same VM population and placement
/// executed twice on the N-socket machine — once under plain XCS, once under
/// KS4Xen with every VM booking a pollution permit — reporting per-socket
/// punishment aggregates and the sensitive-VM IPC comparison. This is the
/// punishment mechanism exercised at fan-out scale.
pub fn run_kyoto_cell(
    config: &ExperimentConfig,
    sockets: usize,
    vms: usize,
    placement: PlacementPolicy,
) -> KyotoCloudCell {
    let calibration = calibrate_permits(config);
    let permit = calibration.paper_kilo(KYOTO_PERMIT_PAPER_KILO);
    let machine_config = config.cloud_machine_config(sockets);
    let apps: Vec<SpecApp> = (0..vms).map(|i| APP_MIX[i % APP_MIX.len()]).collect();
    let working_sets: Vec<u64> = build_workloads(config, vms)
        .iter()
        .map(|(_, workload)| workload.working_set_bytes())
        .collect();
    let placements = place_vms(placement, &machine_config, &working_sets);

    let run = |with_permits: bool| -> Vec<Measurement> {
        let workloads = build_workloads(config, vms);
        if with_permits {
            let mut hv = ks4xen_hypervisor(
                config.cloud_machine(sockets),
                config.hypervisor_config(),
                MonitoringStrategy::DirectPmc,
            );
            for (i, ((app, workload), vm_placement)) in
                workloads.into_iter().zip(&placements).enumerate()
            {
                let vm_config = vm_placement
                    .apply(VmConfig::new(format!("vm{i}-{}", app.name())))
                    .with_llc_cap(permit);
                hv.add_vm_with(vm_config, workload).expect("valid VM");
            }
            warmup_and_measure(&mut hv, config)
        } else {
            let mut hv = xen_hypervisor(config.cloud_machine(sockets), config.hypervisor_config());
            for (i, ((app, workload), vm_placement)) in
                workloads.into_iter().zip(&placements).enumerate()
            {
                let vm_config = vm_placement.apply(VmConfig::new(format!("vm{i}-{}", app.name())));
                hv.add_vm_with(vm_config, workload).expect("valid VM");
            }
            warmup_and_measure(&mut hv, config)
        }
    };
    let xcs = run(false);
    let ks4 = run(true);

    let sensitive_mean = |measurements: &[Measurement]| -> f64 {
        let sensitive: Vec<f64> = measurements
            .iter()
            .zip(&apps)
            .filter(|(_, app)| SpecApp::SENSITIVE_VMS.contains(app))
            .map(|(m, _)| m.ipc())
            .collect();
        if sensitive.is_empty() {
            0.0
        } else {
            sensitive.iter().sum::<f64>() / sensitive.len() as f64
        }
    };

    let mut per_socket: Vec<KyotoSocketAggregate> = (0..sockets)
        .map(|socket| KyotoSocketAggregate {
            socket,
            vms: 0,
            punished_vms: 0,
            punishments: 0,
            llc_misses: 0,
            ipc: 0.0,
        })
        .collect();
    let mut cycles = vec![0u64; sockets];
    let mut instructions = vec![0u64; sockets];
    for (placement, measurement) in placements.iter().zip(&ks4) {
        let aggregate = &mut per_socket[placement.socket.0];
        aggregate.vms += 1;
        if measurement.punishments > 0 {
            aggregate.punished_vms += 1;
        }
        aggregate.punishments += measurement.punishments;
        aggregate.llc_misses += measurement.pmc_delta.llc_misses;
        instructions[placement.socket.0] += measurement.pmc_delta.instructions;
        cycles[placement.socket.0] += measurement.pmc_delta.unhalted_core_cycles;
    }
    for (socket, aggregate) in per_socket.iter_mut().enumerate() {
        aggregate.ipc = if cycles[socket] == 0 {
            0.0
        } else {
            instructions[socket] as f64 / cycles[socket] as f64
        };
    }
    KyotoCloudCell {
        sockets,
        vms,
        permit_paper_kilo: KYOTO_PERMIT_PAPER_KILO,
        per_socket,
        sensitive_ipc_xcs: sensitive_mean(&xcs),
        sensitive_ipc_ks4: sensitive_mean(&ks4),
    }
}

/// Runs the sweep's independent cells on up to `jobs` scoped worker threads.
/// Every cell owns its machine, hypervisor and workloads and derives its
/// seeds from the shared config, so the assembled result — and therefore the
/// rendered table — is byte-identical whatever the parallelism. This is the
/// same work-stealing shape the `figures` binary uses across scenarios,
/// applied one level down.
fn run_cells(
    config: &ExperimentConfig,
    specs: &[(usize, usize, PlacementPolicy)],
    jobs: usize,
) -> Vec<CloudscaleCell> {
    run_jobs(specs.len(), jobs, |index| {
        let (sockets, vms, placement) = specs[index];
        run_cell(config, sockets, vms, placement)
    })
}

/// Runs the full sweep described by `sweep`, with its independent cells
/// spread over up to `jobs` scoped worker threads (`jobs <= 1` runs
/// serially; the output is byte-identical either way).
pub fn run_with_sweep_jobs(
    config: &ExperimentConfig,
    sweep: &CloudscaleSweep,
    jobs: usize,
) -> CloudscaleResult {
    let mut specs: Vec<(usize, usize, PlacementPolicy)> = Vec::new();
    for &sockets in &sweep.socket_counts {
        for &per_socket in &sweep.vms_per_socket {
            specs.push((sockets, sockets * per_socket, sweep.placement));
        }
    }
    let max_sockets = sweep.socket_counts.iter().copied().max().unwrap_or(2);
    let max_per_socket = sweep.vms_per_socket.iter().copied().max().unwrap_or(2);
    if sweep.compare_policies {
        for policy in PlacementPolicy::ALL {
            if policy == sweep.placement {
                continue; // already covered by the main sweep
            }
            specs.push((max_sockets, max_sockets * max_per_socket, policy));
        }
    }
    let cells = run_cells(config, &specs, jobs);
    let kyoto = sweep.kyoto.then(|| {
        run_kyoto_cell(
            config,
            max_sockets,
            max_sockets * max_per_socket,
            sweep.placement,
        )
    });
    CloudscaleResult { cells, kyoto }
}

/// Runs the full sweep described by `sweep` on the calling thread.
pub fn run_with_sweep(config: &ExperimentConfig, sweep: &CloudscaleSweep) -> CloudscaleResult {
    run_with_sweep_jobs(config, sweep, 1)
}

/// Runs the standard cloudscale sweep.
pub fn run(config: &ExperimentConfig) -> CloudscaleResult {
    run_with_sweep(config, &CloudscaleSweep::standard())
}

/// One point of the parallel-engine scaling curve: the same cell executed
/// with the serial and the socket-parallel engine, timed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Sockets of the machine.
    pub sockets: usize,
    /// VMs consolidated onto it.
    pub vms: usize,
    /// Wall-clock seconds of the serial-engine run.
    pub serial_secs: f64,
    /// Wall-clock seconds of the parallel-engine run.
    pub parallel_secs: f64,
}

impl ScalingPoint {
    /// Serial / parallel wall-clock ratio (>1 means the parallel engine
    /// helped; needs as many hardware threads as sockets to approach the
    /// socket count).
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs <= 0.0 {
            0.0
        } else {
            self.serial_secs / self.parallel_secs
        }
    }
}

/// Measures parallel-engine wall-clock scaling on cloudscale cells of
/// `socket_counts` sockets (`vms_per_socket` VMs each), running each cell
/// once with the serial and once with the socket-parallel engine and taking
/// the best of `reps` repetitions. The simulation outputs of the two runs
/// are bit-identical; only the wall-clock differs. Consumed by the
/// `substrate_baseline` binary for `BENCH_substrate.json`'s
/// `parallel_scaling_curve` series.
pub fn measure_parallel_scaling(
    config: &ExperimentConfig,
    socket_counts: &[usize],
    vms_per_socket: usize,
    reps: usize,
) -> Vec<ScalingPoint> {
    let time_cell = |parallel: bool, sockets: usize| -> f64 {
        let run_config = config.with_parallel_engine(parallel);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            // kyoto-lint: allow(wall-clock): this function *measures* wall-clock speedup; timing never feeds back into simulated results
            let start = std::time::Instant::now();
            let cell = run_cell(
                &run_config,
                sockets,
                sockets * vms_per_socket,
                PlacementPolicy::RoundRobin,
            );
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(cell);
            best = best.min(elapsed);
        }
        best
    };
    socket_counts
        .iter()
        .map(|&sockets| ScalingPoint {
            sockets,
            vms: sockets * vms_per_socket,
            serial_secs: time_cell(false, sockets),
            parallel_secs: time_cell(true, sockets),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 7,
            warmup_ticks: 2,
            measure_ticks: 5,
            parallel_engine: false,
        }
    }

    #[test]
    fn sweep_covers_every_cell_and_socket() {
        let sweep = CloudscaleSweep::small();
        let result = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(result.cells.len(), 2);
        let cell = result
            .cell(4, 8, PlacementPolicy::RoundRobin)
            .expect("4-socket cell present");
        assert_eq!(cell.per_socket.len(), 4);
        // Round-robin with 2 VMs per socket populates every socket.
        assert!(cell.per_socket.iter().all(|s| s.vms == 2));
        assert!(cell.total_instructions() > 0);
        assert!(cell.aggregate_ipc() > 0.0);
        let table = result.to_table();
        assert!(table.contains("4 sockets, 8 VMs"));
        assert!(table.contains("socket3"));
    }

    #[test]
    fn parallel_engine_changes_no_cell_output() {
        // The determinism claim of the scenario, at test scale: every cell
        // (and therefore the rendered table) is identical with the serial
        // and the socket-parallel engine.
        let sweep = CloudscaleSweep::small();
        let serial = run_with_sweep(&tiny_config(), &sweep);
        let parallel = run_with_sweep(&tiny_config().with_parallel_engine(true), &sweep);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_table(), parallel.to_table());
    }

    #[test]
    fn packed_placement_leaves_trailing_sockets_idle() {
        // 4 sockets, 8 VMs packed: sockets 0 and 1 take four VMs each,
        // sockets 2 and 3 stay empty — visible in the per-socket aggregates.
        let cell = run_cell(&tiny_config(), 4, 8, PlacementPolicy::Packed);
        assert_eq!(cell.per_socket[0].vms, 4);
        assert_eq!(cell.per_socket[1].vms, 4);
        assert_eq!(cell.per_socket[2].vms, 0);
        assert_eq!(cell.per_socket[3].vms, 0);
        assert_eq!(cell.per_socket[3].instructions, 0);
    }

    #[test]
    fn numa_aware_placement_keeps_memory_local() {
        let cell = run_cell(&tiny_config(), 2, 6, PlacementPolicy::NumaAware);
        let remote: u64 = cell.per_socket.iter().map(|s| s.remote_accesses).sum();
        assert_eq!(remote, 0, "NUMA-aware placement pins memory locally");
    }

    #[test]
    fn kyoto_cell_punishes_polluters_across_sockets() {
        // KS4Xen with permits on the 4-socket machine: the punishment
        // machinery must fire at fan-out scale, and it must not fire on
        // every socket equally (only sockets hosting polluters pay).
        let cell = run_kyoto_cell(&tiny_config(), 4, 8, PlacementPolicy::RoundRobin);
        assert_eq!(cell.per_socket.len(), 4);
        assert!(cell.per_socket.iter().all(|s| s.vms == 2));
        assert!(
            cell.total_punishments() > 0,
            "permits must bite on the big machine"
        );
        assert!(
            cell.sensitive_ipc_ks4 > 0.0 && cell.sensitive_ipc_xcs > 0.0,
            "both schedulers must run the sensitive VMs"
        );
        assert!(
            cell.sensitive_speedup() >= 1.0,
            "punishing polluters must not hurt the sensitive VMs (XCS {:.3} vs KS4Xen {:.3})",
            cell.sensitive_ipc_xcs,
            cell.sensitive_ipc_ks4
        );
    }

    #[test]
    fn sweep_worker_threads_change_no_bytes() {
        // The `--jobs` satellite claim: sweep cells on scoped worker threads
        // produce the identical result (and table) as the serial sweep.
        let sweep = CloudscaleSweep::small();
        let serial = run_with_sweep_jobs(&tiny_config(), &sweep, 1);
        let threaded = run_with_sweep_jobs(&tiny_config(), &sweep, 4);
        assert_eq!(serial, threaded);
        assert_eq!(serial.to_table(), threaded.to_table());
        assert!(serial.kyoto.is_some(), "small sweep carries the Kyoto cell");
    }
}
