//! Shared experiment configuration.
//!
//! Every experiment is parameterised by an [`ExperimentConfig`] that decides
//! the machine scale factor, the RNG seed and how long scenarios run. The
//! paper's experiments run real SPEC workloads for minutes on real hardware;
//! the reproduction runs scaled-down machines (caches and working sets
//! shrunk by the same factor, which preserves every contention phenomenon)
//! for a configurable number of scheduler ticks.

use kyoto_hypervisor::hypervisor::HypervisorConfig;
use kyoto_sim::topology::{Machine, MachineConfig};
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use serde::{Deserialize, Serialize};

/// How much simulated time an experiment spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Short runs on a heavily scaled machine — used by unit/integration
    /// tests and quick smoke runs (seconds of wall-clock time).
    Quick,
    /// Longer runs on a moderately scaled machine — used by the `figures`
    /// binary and the Criterion benches.
    Standard,
}

/// Parameters shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Machine scale factor (cache capacities, frequency and working sets
    /// divided by this factor).
    pub scale: u64,
    /// Base RNG seed; every scenario derives its own sub-seeds from it.
    pub seed: u64,
    /// Warm-up ticks excluded from measurements.
    pub warmup_ticks: u64,
    /// Measured ticks.
    pub measure_ticks: u64,
    /// Run scenario hypervisors with socket-parallel engine execution (one
    /// thread per populated socket inside each tick). Results are
    /// bit-identical to the serial engine — the parallel path preserves
    /// per-socket op order exactly — so every figure is byte-identical with
    /// the switch on or off; only multi-socket wall-clock time changes.
    pub parallel_engine: bool,
}

impl ExperimentConfig {
    /// Test-friendly configuration (small and fast).
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 128,
            seed: 42,
            warmup_ticks: 4,
            measure_ticks: 10,
            parallel_engine: false,
        }
    }

    /// Figure-quality configuration.
    pub fn standard() -> Self {
        ExperimentConfig {
            scale: 32,
            seed: 42,
            warmup_ticks: 12,
            measure_ticks: 45,
            parallel_engine: false,
        }
    }

    /// Returns the same configuration with socket-parallel engine execution
    /// enabled or disabled (see [`ExperimentConfig::parallel_engine`]).
    pub fn with_parallel_engine(mut self, parallel: bool) -> Self {
        self.parallel_engine = parallel;
        self
    }

    /// The configuration for a fidelity level.
    pub fn for_fidelity(fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Quick => Self::quick(),
            Fidelity::Standard => Self::standard(),
        }
    }

    /// The scaled single-socket machine of Table 1.
    pub fn machine(&self) -> Machine {
        Machine::new(MachineConfig::scaled_paper_machine(self.scale))
    }

    /// The scaled two-socket NUMA machine used by Fig. 9.
    pub fn numa_machine(&self) -> Machine {
        Machine::new(MachineConfig::scaled_paper_numa_machine(self.scale))
    }

    /// The scaled machine configuration.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig::scaled_paper_machine(self.scale)
    }

    /// The scaled NUMA machine configuration.
    pub fn numa_machine_config(&self) -> MachineConfig {
        MachineConfig::scaled_paper_numa_machine(self.scale)
    }

    /// The scaled N-socket cloud consolidation machine (the paper's
    /// per-socket geometry replicated `sockets` times) used by the
    /// cloudscale scenario.
    pub fn cloud_machine(&self, sockets: usize) -> Machine {
        Machine::new(self.cloud_machine_config(sockets))
    }

    /// The scaled N-socket machine configuration.
    pub fn cloud_machine_config(&self, sockets: usize) -> MachineConfig {
        MachineConfig::scaled_cloud_machine(sockets, self.scale)
    }

    /// Default hypervisor timing (10 ms ticks, 30 ms slices), carrying this
    /// configuration's engine-parallelism switch.
    pub fn hypervisor_config(&self) -> HypervisorConfig {
        HypervisorConfig::default().with_parallel_engine(self.parallel_engine)
    }

    /// Converts a paper-scale `llc_cap` (e.g. `250_000.0` for the paper's
    /// `250k`) to the scaled machine's units.
    pub fn scaled_llc_cap(&self, paper_misses_per_ms: f64) -> f64 {
        paper_misses_per_ms / self.scale as f64
    }

    /// Instantiates a SPEC-like workload at this configuration's scale.
    pub fn workload(&self, app: SpecApp, salt: u64) -> SpecWorkload {
        SpecWorkload::new(app, self.scale, self.seed.wrapping_add(salt))
    }

    /// Total ticks a scenario runs (warm-up + measurement).
    pub fn total_ticks(&self) -> u64 {
        self.warmup_ticks + self.measure_ticks
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_standard() {
        let quick = ExperimentConfig::quick();
        let standard = ExperimentConfig::standard();
        assert!(quick.scale >= standard.scale);
        assert!(quick.total_ticks() < standard.total_ticks());
        assert_eq!(ExperimentConfig::for_fidelity(Fidelity::Quick), quick);
        assert_eq!(ExperimentConfig::for_fidelity(Fidelity::Standard), standard);
        assert_eq!(ExperimentConfig::default(), quick);
    }

    #[test]
    fn machines_match_the_scale() {
        let config = ExperimentConfig::quick();
        assert_eq!(
            config.machine().config().llc.size_bytes,
            10 * 1024 * 1024 / config.scale
        );
        assert_eq!(config.numa_machine().num_sockets(), 2);
        assert_eq!(config.cloud_machine(8).num_sockets(), 8);
        assert_eq!(
            config.cloud_machine_config(4).llc.size_bytes,
            config.machine_config().llc.size_bytes
        );
    }

    #[test]
    fn llc_cap_scaling() {
        let config = ExperimentConfig {
            scale: 32,
            ..ExperimentConfig::quick()
        };
        assert!((config.scaled_llc_cap(250_000.0) - 7812.5).abs() < 1e-9);
    }

    #[test]
    fn workloads_are_scaled_and_seeded() {
        let config = ExperimentConfig::quick();
        let a = config.workload(SpecApp::Gcc, 1);
        let b = config.workload(SpecApp::Gcc, 2);
        use kyoto_sim::workload::Workload;
        assert_eq!(a.working_set_bytes(), b.working_set_bytes());
        assert!(a.working_set_bytes() <= 5 * 1024 * 1024 / config.scale + 64);
    }
}
