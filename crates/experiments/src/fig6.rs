//! Fig. 6 — KS4Xen's scalability.
//!
//! The sensitive VM `250k·vsen1` (gcc) runs while the number of co-located
//! `50k·vdis1` (lbm) vCPUs grows from 1 to 15 — up to 16 vCPUs sharing the
//! four cores, i.e. the ~4 vCPUs-per-core consolidation ratio the paper
//! cites. KS4Xen is scalable if the sensitive VM's normalised performance
//! stays flat as disruptors are added.

use crate::config::ExperimentConfig;
use crate::harness::{
    calibrate_permits, measurement_of, spec_workload, warmup_and_measure, SENSITIVE_CORE,
};
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_metrics::degradation::normalized_performance;
use kyoto_sim::topology::CoreId;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// The Fig. 6 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Numbers of co-located disruptor vCPUs evaluated.
    pub counts: Vec<usize>,
    /// Normalised `vsen1` performance for each count.
    pub normalized_perf: Vec<(usize, f64)>,
}

impl Fig6Result {
    /// The worst (lowest) normalised performance across all counts.
    pub fn worst_normalized_perf(&self) -> f64 {
        self.normalized_perf
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the dataset.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "Fig. 6: normalised vsen1 performance vs number of co-located 50k vdis1 vCPUs\n  #vdis   normalised perf\n",
        );
        for (count, perf) in &self.normalized_perf {
            out.push_str(&format!("  {count:5}   {perf:.3}\n"));
        }
        out
    }
}

fn run_with_disruptors(
    config: &ExperimentConfig,
    disruptors: usize,
    sen_permit: f64,
    dis_permit: f64,
) -> f64 {
    let machine = config.machine();
    let num_cores = machine.num_cores();
    let mut hv = ks4xen_hypervisor(
        machine,
        config.hypervisor_config(),
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    hv.add_vm_with(
        VmConfig::new("vsen1")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(sen_permit),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    for i in 0..disruptors {
        // Spread the disruptor vCPUs across every core (including the
        // sensitive VM's) like the paper's consolidation scenario.
        let core = CoreId((i + 1) % num_cores);
        hv.add_vm_with(
            VmConfig::new(format!("vdis1-{i}"))
                .pinned_to(vec![core])
                .with_llc_cap(dis_permit),
            spec_workload(config, SpecApp::Lbm, 100 + i as u64),
        )
        .expect("valid VM");
    }
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "vsen1").instructions_per_tick()
}

/// Runs Fig. 6 with explicit disruptor counts.
pub fn run_with_counts(config: &ExperimentConfig, counts: &[usize]) -> Fig6Result {
    let calibration = calibrate_permits(config);
    let sen_permit = calibration.paper_kilo(250.0);
    let dis_permit = calibration.paper_kilo(50.0);
    let solo = run_with_disruptors(config, 0, sen_permit, dis_permit);
    let normalized_perf = counts
        .iter()
        .map(|&count| {
            let throughput = run_with_disruptors(config, count, sen_permit, dis_permit);
            (count, normalized_performance(solo, throughput))
        })
        .collect();
    Fig6Result {
        counts: counts.to_vec(),
        normalized_perf,
    }
}

/// Runs Fig. 6 with the paper's disruptor counts (1 to 15 vCPUs).
pub fn run(config: &ExperimentConfig) -> Fig6Result {
    run_with_counts(config, &[1, 2, 4, 6, 8, 10, 13, 14, 15])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 17,
            warmup_ticks: 3,
            measure_ticks: 6,
            parallel_engine: false,
        }
    }

    #[test]
    fn sensitive_vm_performance_stays_reasonable_with_many_disruptors() {
        let config = tiny_config();
        let result = run_with_counts(&config, &[1, 3]);
        assert_eq!(result.counts, vec![1, 3]);
        for (count, perf) in &result.normalized_perf {
            assert!(
                *perf > 0.3,
                "with {count} punished disruptors vsen1 should keep most of its performance, got {perf:.2}"
            );
        }
        assert!(result.worst_normalized_perf() > 0.0);
        assert!(result.to_table().contains("normalised"));
    }
}
