//! Fleet scenario: the Kyoto principle at cluster scale.
//!
//! Every paper figure runs one machine; the `cloudscale` scenario grew that
//! to one *big* machine. This scenario models the level a cloud provider
//! actually operates: a fleet of independent machines (cells) whose VMs are
//! live-migrated between epochs by a consolidation policy. It sweeps cell
//! count × VM count × policy and reports, per sweep cell:
//!
//! * the migration count and the downtime it inflicted,
//! * mean degradation (vs a solo run) of the *sensitive* VMs and of the
//!   *disruptive* VMs separately,
//! * total Kyoto punishments, and
//! * per-cell PMC aggregates of the final epoch (the consolidated steady
//!   state).
//!
//! The headline comparison: the **pollution-aware** policy — which reads
//! per-VM PMC/punishment data and co-locates polluters away from sensitive
//! VMs — must yield measurably lower sensitive-VM degradation than plain
//! load-balancing, which spreads VM *counts* evenly and thereby gives almost
//! every sensitive VM a polluting neighbour.
//!
//! The sweep also carries the **churn** half (rendered standalone by
//! `figures --scenario churn`): a fleet under seeded VM arrival/departure
//! streams and a scripted drain/join maintenance cycle, swept over
//! arrival rate × policy × planner mode. Its headline is the cost-aware
//! planner ([`PlannerConfig::with_cost_aware`]) cutting total migration
//! downtime below the fixed-budget planner's at equal-or-better
//! sensitive-VM degradation.
//!
//! Determinism: all policies start from the same arrival-order seeding, the
//! event schedule is a pure function of `(seed, epoch)`, the control loop
//! is epoch-driven and pure, and cells share no state — so the rendered
//! table is byte-identical whether cells run serially or one per scoped
//! thread (`--parallel-engine` flips both engine- and cell-level
//! parallelism here; the CI determinism gate diffs the two), and whether
//! sweep cells fan out over `--jobs` worker threads or not.

use crate::config::ExperimentConfig;
use crate::harness::{calibrate_permits, run_jobs};
use kyoto_cluster::cluster::{CellEpochStats, Cluster, ClusterConfig};
use kyoto_cluster::events::{EventSchedule, EventScheduleConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_metrics::degradation::degradation_percent;
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// The application mix cycled across the fleet's VMs: strict alternation of
/// cache-sensitive and disruptive apps, so every policy faces the same
/// polluter density.
pub const FLEET_MIX: [SpecApp; 6] = [
    SpecApp::Gcc,
    SpecApp::Lbm,
    SpecApp::Omnetpp,
    SpecApp::Mcf,
    SpecApp::Soplex,
    SpecApp::Blockie,
];

/// Whether `app` counts as sensitive (victim) rather than disruptive
/// (polluter) in the report.
pub(crate) fn is_sensitive(app: SpecApp) -> bool {
    SpecApp::SENSITIVE_VMS.contains(&app)
}

/// The sweep a fleet run covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweep {
    /// Cell (machine) counts to build.
    pub cell_counts: Vec<usize>,
    /// VMs per cell (the sweep cell's VM count is `cells * this`).
    pub vms_per_cell: Vec<usize>,
    /// Consolidation policies to compare on every sweep cell.
    pub policies: Vec<ConsolidationPolicy>,
    /// Control-loop epochs each run executes.
    pub epochs: u64,
    /// Scheduler ticks per epoch.
    pub epoch_ticks: u64,
    /// Paper-scale pollution permit (in thousands) booked by every VM, as in
    /// Fig. 5's `250k`.
    pub permit_paper_kilo: f64,
    /// The churn sweep riding along (fleet dynamics: VM arrival/departure
    /// streams, a scripted drain/join cycle, and the fixed-budget vs
    /// cost-aware planner comparison). `None` runs the static sweep only.
    pub churn: Option<ChurnSweep>,
}

impl FleetSweep {
    /// The standard sweep: 2/4/8 cells × 2/3 VMs per cell, every policy,
    /// seven 6-tick epochs, 250k permits, plus the standard churn sweep.
    pub fn standard() -> Self {
        FleetSweep {
            cell_counts: vec![2, 4, 8],
            vms_per_cell: vec![2, 3],
            policies: ConsolidationPolicy::ALL.to_vec(),
            epochs: 7,
            epoch_ticks: 6,
            permit_paper_kilo: 250.0,
            churn: Some(ChurnSweep::standard()),
        }
    }

    /// A small sweep for tests and the CI determinism gate: 2/4 cells, two
    /// VMs per cell, every policy, four 4-tick epochs, plus the small churn
    /// sweep.
    pub fn small() -> Self {
        FleetSweep {
            cell_counts: vec![2, 4],
            vms_per_cell: vec![2],
            policies: ConsolidationPolicy::ALL.to_vec(),
            epochs: 4,
            epoch_ticks: 4,
            permit_paper_kilo: 250.0,
            churn: Some(ChurnSweep::small()),
        }
    }

    /// Total ticks one run covers.
    pub fn total_ticks(&self) -> u64 {
        self.epochs * self.epoch_ticks
    }
}

/// The churn sweep a fleet run covers: arrival rate × policy × cost-model
/// on/off, under a seeded departure stream and one scripted drain/join
/// maintenance cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSweep {
    /// Cells (machines) in the churning fleet.
    pub cells: usize,
    /// VMs seeded per cell before churn begins.
    pub initial_vms_per_cell: usize,
    /// Expected VM arrivals per epoch — the sweep axis.
    pub arrival_rates: Vec<f64>,
    /// Expected VM departures per epoch (fixed across the sweep).
    pub departure_rate: f64,
    /// Consolidation policies to compare at every arrival rate.
    pub policies: Vec<ConsolidationPolicy>,
    /// Planner modes to compare: `false` = fixed move budget, `true` =
    /// cost-aware gate.
    pub cost_modes: Vec<bool>,
    /// Control-loop epochs each run executes.
    pub epochs: u64,
    /// Scheduler ticks per epoch.
    pub epoch_ticks: u64,
    /// Epoch boundary at which the last cell starts draining.
    pub drain_epoch: u64,
    /// Epoch boundary at which it rejoins.
    pub join_epoch: u64,
    /// Seed of the arrival/departure event streams.
    pub seed: u64,
}

impl ChurnSweep {
    /// The standard churn sweep: a 4-cell fleet seeded at 2 VMs per cell,
    /// arrival rates 0.5 and 1.5 per epoch against 0.5 departures, every
    /// policy in both planner modes, eight 6-tick epochs with the last cell
    /// draining at epoch 2 and rejoining at epoch 5.
    pub fn standard() -> Self {
        ChurnSweep {
            cells: 4,
            initial_vms_per_cell: 2,
            arrival_rates: vec![0.5, 1.5],
            departure_rate: 0.5,
            policies: ConsolidationPolicy::ALL.to_vec(),
            cost_modes: vec![false, true],
            epochs: 8,
            epoch_ticks: 6,
            drain_epoch: 2,
            join_epoch: 5,
            seed: 0xC0FFEE,
        }
    }

    /// A small churn sweep for tests and the CI determinism gate: 3 cells,
    /// one arrival rate, three policies, both planner modes, five 4-tick
    /// epochs with a drain/join cycle.
    pub fn small() -> Self {
        ChurnSweep {
            cells: 3,
            initial_vms_per_cell: 2,
            arrival_rates: vec![1.0],
            departure_rate: 0.5,
            policies: vec![
                ConsolidationPolicy::LoadBalance,
                ConsolidationPolicy::PollutionAware,
                ConsolidationPolicy::PollutionAwareDensity,
            ],
            cost_modes: vec![false, true],
            epochs: 5,
            epoch_ticks: 4,
            drain_epoch: 1,
            join_epoch: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// One sweep cell: a fleet size, a VM population and a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCell {
    /// Cells (machines) in the fleet.
    pub cells: usize,
    /// VMs across the fleet.
    pub vms: usize,
    /// Consolidation policy driving the planner.
    pub policy: ConsolidationPolicy,
    /// Live migrations the control plane applied over the run.
    pub migrations: u64,
    /// Blackout ticks those migrations inflicted in total.
    pub downtime_ticks: u64,
    /// Mean degradation (percent vs solo) of the sensitive VMs.
    pub sensitive_degradation_pct: f64,
    /// Mean degradation (percent vs solo) of the disruptive VMs.
    pub disruptive_degradation_pct: f64,
    /// Total Kyoto punishments across the fleet.
    pub punishments: u64,
    /// Per-cell aggregates of the final epoch (the consolidated state).
    pub final_epoch: Vec<CellEpochStats>,
}

impl FleetCell {
    /// Fleet-wide instructions retired during the final epoch.
    pub fn final_epoch_instructions(&self) -> u64 {
        self.final_epoch.iter().map(|c| c.instructions).sum()
    }

    /// Cells left empty in the final epoch (what bin-packing frees up).
    pub fn empty_cells(&self) -> usize {
        self.final_epoch.iter().filter(|c| c.vms == 0).count()
    }
}

/// One churn sweep point: an arrival rate, a policy and a planner mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnCell {
    /// Expected arrivals per epoch.
    pub arrival_rate: f64,
    /// Consolidation policy driving the planner.
    pub policy: ConsolidationPolicy,
    /// Whether the cost-aware gate was on.
    pub cost_aware: bool,
    /// Live migrations the control plane applied over the run.
    pub migrations: u64,
    /// Blackout ticks those migrations inflicted in total.
    pub downtime_ticks: u64,
    /// VMs admitted by arrival events.
    pub arrivals: u64,
    /// VMs removed by departure events.
    pub departures: u64,
    /// Arrivals rejected (fleet full or draining).
    pub rejected_arrivals: u64,
    /// VMs resident when the run ended.
    pub final_vms: usize,
    /// Mean degradation (percent vs solo) of every sensitive VM that ever
    /// ran, departed VMs included.
    pub sensitive_degradation_pct: f64,
    /// Mean degradation (percent vs solo) of every disruptive VM that ever
    /// ran.
    pub disruptive_degradation_pct: f64,
    /// Total Kyoto punishments across the fleet's lifetime.
    pub punishments: u64,
}

/// The churn dataset: fleet dynamics under every (rate, policy, planner
/// mode) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnResult {
    /// Cells in the churning fleet.
    pub cells: usize,
    /// VMs seeded before churn began.
    pub initial_vms: usize,
    /// Expected departures per epoch.
    pub departure_rate: f64,
    /// Epoch at which the last cell drained / rejoined.
    pub drain_join: (u64, u64),
    /// Paper-scale permit booked by every VM.
    pub permit_paper_kilo: f64,
    /// Every sweep point: rate outer, policy middle, planner mode inner
    /// (fixed budget first, cost-aware second).
    pub rows: Vec<ChurnCell>,
}

impl ChurnResult {
    /// The sweep point for a rate / policy / planner mode, if present.
    pub fn row(
        &self,
        arrival_rate: f64,
        policy: ConsolidationPolicy,
        cost_aware: bool,
    ) -> Option<&ChurnCell> {
        self.rows.iter().find(|r| {
            (r.arrival_rate - arrival_rate).abs() < 1e-12
                && r.policy == policy
                && r.cost_aware == cost_aware
        })
    }

    /// Renders the churn table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Fleet churn: arrival-rate x policy x planner-mode sweep ({} cells, {} initial VMs, {:.2} departures/epoch, drain@{} join@{}, {}k permits)\n",
            self.cells,
            self.initial_vms,
            self.departure_rate,
            self.drain_join.0,
            self.drain_join.1,
            self.permit_paper_kilo,
        );
        for row in &self.rows {
            out.push_str(&format!(
                "  rate {:.2}  {:<17} {:<10}  migrations {:>2} (downtime {:>2} ticks)  arr {:>2} dep {:>2} rej {:>2}  vms {:>2}  degradation sens {:5.1}% / dis {:5.1}%  punish {:>5}\n",
                row.arrival_rate,
                row.policy.label(),
                if row.cost_aware { "cost-aware" } else { "fixed" },
                row.migrations,
                row.downtime_ticks,
                row.arrivals,
                row.departures,
                row.rejected_arrivals,
                row.final_vms,
                row.sensitive_degradation_pct,
                row.disruptive_degradation_pct,
                row.punishments,
            ));
        }
        out
    }
}

/// The fleet dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Paper-scale permit booked by every VM.
    pub permit_paper_kilo: f64,
    /// Every sweep cell, cell-count outer, VM-count middle, policy inner.
    pub cells: Vec<FleetCell>,
    /// The churn sweep, when the fleet sweep carried one.
    pub churn: Option<ChurnResult>,
}

impl FleetResult {
    /// The sweep cell for a fleet size / VM count / policy, if present.
    pub fn cell(
        &self,
        cells: usize,
        vms: usize,
        policy: ConsolidationPolicy,
    ) -> Option<&FleetCell> {
        self.cells
            .iter()
            .find(|c| c.cells == cells && c.vms == vms && c.policy == policy)
    }

    /// Renders the sweep table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Fleet: cell-count x VM-count x policy sweep ({}k permits, live migration)\n",
            self.permit_paper_kilo
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "  {} cells, {:>2} VMs, {:<15}  migrations {:>2} (downtime {:>2} ticks)  degradation sens {:5.1}% / dis {:5.1}%  punish {:>5}\n",
                cell.cells,
                cell.vms,
                cell.policy.label(),
                cell.migrations,
                cell.downtime_ticks,
                cell.sensitive_degradation_pct,
                cell.disruptive_degradation_pct,
                cell.punishments,
            ));
            for stats in &cell.final_epoch {
                out.push_str(&format!(
                    "    {}{}: {} vms  instr {:>9}  llc_miss {:>7}  punish {:>4}  pollution {:8.1}/ms\n",
                    stats.cell,
                    if stats.draining { " (draining)" } else { "" },
                    stats.vms,
                    stats.instructions,
                    stats.llc_misses,
                    stats.punishments,
                    stats.pollution_rate,
                ));
            }
        }
        if let Some(churn) = &self.churn {
            out.push_str(&churn.to_table());
        }
        out
    }
}

/// Derives the per-VM seed salt: VMs of the same app share a workload stream
/// (they run on disjoint machines), which lets every app's solo baseline be
/// measured once.
pub(crate) fn app_salt(index: usize) -> u64 {
    0xf1ee7 + (index % FLEET_MIX.len()) as u64
}

/// Builds the cluster configuration for one sweep cell.
fn cluster_config(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    cells: usize,
    policy: ConsolidationPolicy,
    polluter_threshold: f64,
) -> ClusterConfig {
    ClusterConfig::new(cells, config.scale)
        .with_epoch_ticks(sweep.epoch_ticks)
        .with_policy(policy)
        // `--parallel-engine` flips both levels: cell-parallel cluster
        // epochs here, and the socket-parallel engine inside each cell via
        // the hypervisor config below.
        .with_parallel_cells(config.parallel_engine)
        .with_hypervisor(config.hypervisor_config())
        // Shadow attribution (as in Fig. 5): pollution estimates are *solo*
        // miss rates, so a victim whose misses are inflated by a polluting
        // neighbour is never misclassified as a polluter itself.
        .with_strategy(MonitoringStrategy::SimulatorAttribution)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(4)
                .with_polluter_threshold(polluter_threshold),
        )
}

/// Measures each app's solo throughput (instructions per tick, same epoch
/// count, one VM alone on one cell) — the degradation baseline.
fn solo_baselines(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    permit: f64,
    polluter_threshold: f64,
) -> Vec<(SpecApp, f64)> {
    FLEET_MIX
        .iter()
        .enumerate()
        .map(|(index, &app)| {
            let mut cluster = Cluster::new(cluster_config(
                config,
                sweep,
                1,
                ConsolidationPolicy::LoadBalance,
                polluter_threshold,
            ));
            let vm = cluster
                .add_vm(
                    CellId(0),
                    VmConfig::new(format!("solo-{}", app.name())).with_llc_cap(permit),
                    Box::new(config.workload(app, app_salt(index))),
                )
                .expect("cell 0 admits the solo VM");
            cluster
                .run_epochs(sweep.epochs)
                .expect("solo run is fault-free");
            let report = cluster.report(vm).expect("solo VM exists");
            (app, report.instructions_per_tick())
        })
        .collect()
}

/// Calibrated inputs shared by every cell of one sweep run: the simulated
/// permit each VM books, the pollution rate above which the planner counts
/// a VM as a polluter, and the per-app solo throughput baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCalibration {
    /// Simulated permit (misses per CPU-ms) each VM books.
    pub permit: f64,
    /// Planner classification threshold (misses per CPU-ms).
    pub polluter_threshold: f64,
    /// Solo instructions-per-tick of each app in [`FLEET_MIX`].
    pub baselines: Vec<(SpecApp, f64)>,
}

/// Runs one sweep cell: seed `cells * vms_per_cell` VMs across the fleet in
/// arrival order (VMs fill one cell, then the next — the placement a cloud's
/// admission path produces, which leaves every cell with a
/// sensitive/disruptive blend), run the control loop, and fold the outcome
/// into a [`FleetCell`].
pub fn run_cell(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    cells: usize,
    vms_per_cell: usize,
    policy: ConsolidationPolicy,
    calibration: &SweepCalibration,
) -> FleetCell {
    let vm_count = cells * vms_per_cell;
    let mut cluster = Cluster::new(cluster_config(
        config,
        sweep,
        cells,
        policy,
        calibration.polluter_threshold,
    ));
    let mut apps = Vec::with_capacity(vm_count);
    for i in 0..vm_count {
        let app = FLEET_MIX[i % FLEET_MIX.len()];
        apps.push(app);
        cluster
            .add_vm(
                CellId((i / vms_per_cell).min(cells - 1)),
                VmConfig::new(format!("fvm{i}-{}", app.name())).with_llc_cap(calibration.permit),
                Box::new(config.workload(app, app_salt(i))),
            )
            .expect("seeding stays within cell capacity");
    }
    cluster
        .run_epochs(sweep.epochs)
        .expect("sweep run is fault-free");

    let downtime_per_move = cluster.config().planner.cost.downtime_ticks;
    let reports = cluster.reports();
    let mut sensitive = (0usize, 0.0f64);
    let mut disruptive = (0usize, 0.0f64);
    let mut punishments = 0u64;
    for (report, &app) in reports.iter().zip(&apps) {
        punishments += report.punishments;
        let solo = calibration
            .baselines
            .iter()
            .find(|(a, _)| *a == app)
            .map(|(_, t)| *t)
            .expect("baseline for every app in the mix");
        let degradation = degradation_percent(solo, report.instructions_per_tick());
        if is_sensitive(app) {
            sensitive.0 += 1;
            sensitive.1 += degradation;
        } else {
            disruptive.0 += 1;
            disruptive.1 += degradation;
        }
    }
    let mean = |(count, sum): (usize, f64)| if count == 0 { 0.0 } else { sum / count as f64 };
    FleetCell {
        cells,
        vms: vm_count,
        policy,
        migrations: cluster.total_migrations(),
        downtime_ticks: cluster.total_migrations() * downtime_per_move,
        sensitive_degradation_pct: mean(sensitive),
        disruptive_degradation_pct: mean(disruptive),
        punishments,
        final_epoch: cluster
            .history()
            .last()
            .map(|epoch| epoch.cells.clone())
            .unwrap_or_default(),
    }
}

/// Calibrates a sweep run: converts the paper permit to simulated units and
/// measures the per-app solo baselines.
pub fn calibrate_sweep(config: &ExperimentConfig, sweep: &FleetSweep) -> SweepCalibration {
    let permit = calibrate_permits(config).paper_kilo(sweep.permit_paper_kilo);
    // A VM polluting beyond its booked permit counts as a polluter even
    // before the scheduler catches it punishing.
    let polluter_threshold = permit;
    SweepCalibration {
        permit,
        polluter_threshold,
        baselines: solo_baselines(config, sweep, permit, polluter_threshold),
    }
}

/// The app behind a fleet VM, recovered from its configured name (every
/// fleet VM is named `...-<app>`). Lets churn runs fold live *and departed*
/// VM reports back onto their solo baselines.
pub(crate) fn app_of_report(name: &str) -> SpecApp {
    *FLEET_MIX
        .iter()
        .find(|app| name.ends_with(&format!("-{}", app.name())))
        .expect("fleet VM names carry their app")
}

/// Runs one churn sweep point: seed the fleet in arrival order, drive
/// `churn.epochs` epochs under the seeded arrival/departure streams and the
/// scripted drain/join cycle, and fold every VM that ever ran (departed
/// included) into a [`ChurnCell`].
pub fn run_churn_cell(
    config: &ExperimentConfig,
    churn: &ChurnSweep,
    arrival_rate: f64,
    policy: ConsolidationPolicy,
    cost_aware: bool,
    calibration: &SweepCalibration,
) -> ChurnCell {
    let cluster_config = ClusterConfig::new(churn.cells, config.scale)
        .with_epoch_ticks(churn.epoch_ticks)
        .with_policy(policy)
        .with_parallel_cells(config.parallel_engine)
        .with_hypervisor(config.hypervisor_config())
        .with_strategy(MonitoringStrategy::SimulatorAttribution)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(4)
                .with_polluter_threshold(calibration.polluter_threshold)
                .with_cost_aware(cost_aware),
        );
    let mut cluster = Cluster::new(cluster_config);
    let initial = churn.cells * churn.initial_vms_per_cell;
    for i in 0..initial {
        let app = FLEET_MIX[i % FLEET_MIX.len()];
        cluster
            .add_vm(
                CellId(i / churn.initial_vms_per_cell),
                VmConfig::new(format!("fvm{i}-{}", app.name())).with_llc_cap(calibration.permit),
                Box::new(config.workload(app, app_salt(i))),
            )
            .expect("seeding stays within cell capacity");
    }
    let drained = CellId(churn.cells - 1);
    let schedule = EventSchedule::new(
        EventScheduleConfig::new(churn.seed)
            .with_arrival_rate(arrival_rate)
            .with_departure_rate(churn.departure_rate)
            .with_drain(churn.drain_epoch, drained)
            .with_join(churn.join_epoch, drained),
    );
    let permit = calibration.permit;
    let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
        let k = initial + index as usize;
        let app = FLEET_MIX[k % FLEET_MIX.len()];
        (
            VmConfig::new(format!("fvm{k}-{}", app.name())).with_llc_cap(permit),
            Box::new(config.workload(app, app_salt(k))),
        )
    };
    cluster
        .run_epochs_with_schedule(&schedule, churn.epochs, &mut spawn)
        .expect("churn run is fault-free");

    let downtime_per_move = cluster.config().planner.cost.downtime_ticks;
    let mut sensitive = (0usize, 0.0f64);
    let mut disruptive = (0usize, 0.0f64);
    let mut punishments = 0u64;
    for report in cluster.all_reports() {
        punishments += report.punishments;
        let app = app_of_report(&report.name);
        let solo = calibration
            .baselines
            .iter()
            .find(|(a, _)| *a == app)
            .map(|(_, t)| *t)
            .expect("baseline for every app in the mix");
        let degradation = degradation_percent(solo, report.instructions_per_tick());
        if is_sensitive(app) {
            sensitive.0 += 1;
            sensitive.1 += degradation;
        } else {
            disruptive.0 += 1;
            disruptive.1 += degradation;
        }
    }
    let mean = |(count, sum): (usize, f64)| if count == 0 { 0.0 } else { sum / count as f64 };
    ChurnCell {
        arrival_rate,
        policy,
        cost_aware,
        migrations: cluster.total_migrations(),
        downtime_ticks: cluster.total_migrations() * downtime_per_move,
        arrivals: cluster.total_arrivals(),
        departures: cluster.total_departures(),
        rejected_arrivals: cluster.rejected_arrivals(),
        final_vms: cluster.reports().len(),
        sensitive_degradation_pct: mean(sensitive),
        disruptive_degradation_pct: mean(disruptive),
        punishments,
    }
}

/// Runs the churn sweep with its points spread over up to `jobs` scoped
/// worker threads.
fn run_churn_sweep(
    config: &ExperimentConfig,
    churn: &ChurnSweep,
    permit_paper_kilo: f64,
    calibration: &SweepCalibration,
    jobs: usize,
) -> ChurnResult {
    let mut specs: Vec<(f64, ConsolidationPolicy, bool)> = Vec::new();
    for &rate in &churn.arrival_rates {
        for &policy in &churn.policies {
            for &cost_aware in &churn.cost_modes {
                specs.push((rate, policy, cost_aware));
            }
        }
    }
    let rows = run_jobs(specs.len(), jobs, |index| {
        let (rate, policy, cost_aware) = specs[index];
        run_churn_cell(config, churn, rate, policy, cost_aware, calibration)
    });
    ChurnResult {
        cells: churn.cells,
        initial_vms: churn.cells * churn.initial_vms_per_cell,
        departure_rate: churn.departure_rate,
        drain_join: (churn.drain_epoch, churn.join_epoch),
        permit_paper_kilo,
        rows,
    }
}

/// Runs the full sweep described by `sweep` — the static consolidation
/// cells plus the churn sweep when one is configured — with the
/// independent sweep cells spread over up to `jobs` scoped worker threads
/// (`jobs <= 1` runs serially; the output is byte-identical either way).
pub fn run_with_sweep_jobs(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    jobs: usize,
) -> FleetResult {
    let calibration = calibrate_sweep(config, sweep);
    let mut specs: Vec<(usize, usize, ConsolidationPolicy)> = Vec::new();
    for &cell_count in &sweep.cell_counts {
        for &vms_per_cell in &sweep.vms_per_cell {
            for &policy in &sweep.policies {
                specs.push((cell_count, vms_per_cell, policy));
            }
        }
    }
    let cells = run_jobs(specs.len(), jobs, |index| {
        let (cell_count, vms_per_cell, policy) = specs[index];
        run_cell(
            config,
            sweep,
            cell_count,
            vms_per_cell,
            policy,
            &calibration,
        )
    });
    let churn = sweep
        .churn
        .as_ref()
        .map(|churn| run_churn_sweep(config, churn, sweep.permit_paper_kilo, &calibration, jobs));
    FleetResult {
        permit_paper_kilo: sweep.permit_paper_kilo,
        cells,
        churn,
    }
}

/// Runs the full sweep described by `sweep` on the calling thread.
pub fn run_with_sweep(config: &ExperimentConfig, sweep: &FleetSweep) -> FleetResult {
    run_with_sweep_jobs(config, sweep, 1)
}

/// Runs only the churn half of `sweep` (the `figures --scenario churn`
/// target), with its points spread over up to `jobs` worker threads.
/// Returns `None` when the sweep carries no churn component.
pub fn run_churn_with_jobs(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    jobs: usize,
) -> Option<ChurnResult> {
    let churn = sweep.churn.as_ref()?;
    let calibration = calibrate_sweep(config, sweep);
    Some(run_churn_sweep(
        config,
        churn,
        sweep.permit_paper_kilo,
        &calibration,
        jobs,
    ))
}

/// Runs the standard fleet sweep.
pub fn run(config: &ExperimentConfig) -> FleetResult {
    run_with_sweep(config, &FleetSweep::standard())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 11,
            warmup_ticks: 2,
            measure_ticks: 5,
            parallel_engine: false,
        }
    }

    #[test]
    fn sweep_covers_every_cell_and_policy() {
        let sweep = FleetSweep {
            churn: None,
            ..FleetSweep::small()
        };
        let result = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(result.cells.len(), 8, "2 fleet sizes x 4 policies");
        for policy in ConsolidationPolicy::ALL {
            let cell = result.cell(4, 8, policy).expect("4-cell sweep cell");
            assert_eq!(cell.final_epoch.len(), 4);
            assert!(cell.final_epoch_instructions() > 0);
        }
        let table = result.to_table();
        assert!(table.contains("pollution-aware"));
        assert!(table.contains("pollution-density"));
        assert!(table.contains("4 cells"));
        assert!(table.contains("cell3"));
    }

    #[test]
    fn pollution_aware_beats_load_balancing_for_sensitive_vms() {
        // The acceptance claim of the subsystem: with the same fleet, same
        // VMs and same seeds, co-locating polluters away from sensitive VMs
        // must measurably reduce the sensitive VMs' aggregate degradation
        // relative to count-balancing.
        let sweep = FleetSweep {
            churn: None,
            ..FleetSweep::small()
        };
        let result = run_with_sweep(&tiny_config(), &sweep);
        let balanced = result
            .cell(4, 8, ConsolidationPolicy::LoadBalance)
            .expect("load-balance cell");
        let aware = result
            .cell(4, 8, ConsolidationPolicy::PollutionAware)
            .expect("pollution-aware cell");
        assert!(
            aware.sensitive_degradation_pct < balanced.sensitive_degradation_pct - 1.0,
            "pollution-aware ({:.1}%) must beat load-balance ({:.1}%) by a visible margin",
            aware.sensitive_degradation_pct,
            balanced.sensitive_degradation_pct
        );
        assert!(
            aware.migrations > 0,
            "separation requires actual migrations"
        );
    }

    #[test]
    fn runs_are_deterministic_and_cell_parallelism_changes_nothing() {
        let sweep = FleetSweep::small();
        let serial = run_with_sweep(&tiny_config(), &sweep);
        let rerun = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(serial, rerun, "same config, same bytes");
        let parallel = run_with_sweep(&tiny_config().with_parallel_engine(true), &sweep);
        assert_eq!(serial, parallel, "cell-parallel epochs are bit-identical");
        assert_eq!(serial.to_table(), parallel.to_table());
        assert!(serial.churn.is_some(), "small sweep carries the churn half");
    }

    #[test]
    fn sweep_worker_threads_change_no_bytes() {
        let sweep = FleetSweep::small();
        let serial = run_with_sweep_jobs(&tiny_config(), &sweep, 1);
        let threaded = run_with_sweep_jobs(&tiny_config(), &sweep, 4);
        assert_eq!(serial, threaded);
        assert_eq!(serial.to_table(), threaded.to_table());
    }

    #[test]
    fn churn_sweep_covers_every_point_and_reports_dynamics() {
        let sweep = FleetSweep::small();
        let churn = run_churn_with_jobs(&tiny_config(), &sweep, 1).expect("churn configured");
        assert_eq!(churn.rows.len(), 6, "1 rate x 3 policies x 2 modes");
        let table = churn.to_table();
        assert!(table.contains("Fleet churn"));
        assert!(table.contains("cost-aware"));
        assert!(table.contains("fixed"));
        for row in &churn.rows {
            assert!(
                row.arrivals + row.departures > 0,
                "churn must actually happen: {row:?}"
            );
            assert!(row.final_vms > 0, "the fleet must survive: {row:?}");
        }
    }

    #[test]
    fn cost_aware_lowers_downtime_without_hurting_sensitive_vms_somewhere() {
        // The PR's acceptance claim: at least one churn sweep point must
        // show the cost-aware planner beating the fixed-budget planner on
        // total downtime at equal-or-better sensitive degradation.
        let sweep = FleetSweep::small();
        let churn = run_churn_with_jobs(&tiny_config(), &sweep, 1).expect("churn configured");
        let churn_sweep = sweep.churn.as_ref().unwrap();
        let mut witnessed = false;
        for &rate in &churn_sweep.arrival_rates {
            for &policy in &churn_sweep.policies {
                let fixed = churn.row(rate, policy, false).expect("fixed row");
                let aware = churn.row(rate, policy, true).expect("cost-aware row");
                assert!(
                    aware.downtime_ticks <= fixed.downtime_ticks,
                    "cost-aware may never inflict more downtime ({policy:?} @ {rate})"
                );
                if aware.downtime_ticks < fixed.downtime_ticks
                    && aware.sensitive_degradation_pct <= fixed.sensitive_degradation_pct + 0.05
                {
                    witnessed = true;
                }
            }
        }
        assert!(
            witnessed,
            "no sweep point shows the cost-aware win: {:#?}",
            churn.rows
        );
    }

    #[test]
    fn density_cap_keeps_separation_paying_at_three_vms_per_cell() {
        // Pins the DESIGN.md inversion fix: at 3+ VMs per 4-core cell,
        // plain separation concentrates the sensitive VMs until they
        // degrade each other; the density-capped policy must hold
        // sensitive degradation at or below the load-balance baseline.
        let sweep = FleetSweep {
            churn: None,
            ..FleetSweep::small()
        };
        let config = tiny_config();
        let calibration = calibrate_sweep(&config, &sweep);
        let balanced = run_cell(
            &config,
            &sweep,
            4,
            3,
            ConsolidationPolicy::LoadBalance,
            &calibration,
        );
        let density = run_cell(
            &config,
            &sweep,
            4,
            3,
            ConsolidationPolicy::PollutionAwareDensity,
            &calibration,
        );
        assert!(
            density.sensitive_degradation_pct <= balanced.sensitive_degradation_pct + 0.05,
            "density-aware ({:.2}%) must not lose to load-balance ({:.2}%) at 3 VMs/cell",
            density.sensitive_degradation_pct,
            balanced.sensitive_degradation_pct
        );
    }
}
