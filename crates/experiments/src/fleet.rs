//! Fleet scenario: the Kyoto principle at cluster scale.
//!
//! Every paper figure runs one machine; the `cloudscale` scenario grew that
//! to one *big* machine. This scenario models the level a cloud provider
//! actually operates: a fleet of independent machines (cells) whose VMs are
//! live-migrated between epochs by a consolidation policy. It sweeps cell
//! count × VM count × policy and reports, per sweep cell:
//!
//! * the migration count and the downtime it inflicted,
//! * mean degradation (vs a solo run) of the *sensitive* VMs and of the
//!   *disruptive* VMs separately,
//! * total Kyoto punishments, and
//! * per-cell PMC aggregates of the final epoch (the consolidated steady
//!   state).
//!
//! The headline comparison: the **pollution-aware** policy — which reads
//! per-VM PMC/punishment data and co-locates polluters away from sensitive
//! VMs — must yield measurably lower sensitive-VM degradation than plain
//! load-balancing, which spreads VM *counts* evenly and thereby gives almost
//! every sensitive VM a polluting neighbour.
//!
//! Determinism: all policies start from the same arrival-order seeding, the
//! control loop is epoch-driven and pure, and cells share no state — so the
//! rendered table is byte-identical whether cells run serially or one per
//! scoped thread (`--parallel-engine` flips both engine- and cell-level
//! parallelism here; the CI determinism gate diffs the two).

use crate::config::ExperimentConfig;
use crate::harness::calibrate_permits;
use kyoto_cluster::cluster::{CellEpochStats, Cluster, ClusterConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_metrics::degradation::degradation_percent;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// The application mix cycled across the fleet's VMs: strict alternation of
/// cache-sensitive and disruptive apps, so every policy faces the same
/// polluter density.
pub const FLEET_MIX: [SpecApp; 6] = [
    SpecApp::Gcc,
    SpecApp::Lbm,
    SpecApp::Omnetpp,
    SpecApp::Mcf,
    SpecApp::Soplex,
    SpecApp::Blockie,
];

/// Whether `app` counts as sensitive (victim) rather than disruptive
/// (polluter) in the report.
fn is_sensitive(app: SpecApp) -> bool {
    SpecApp::SENSITIVE_VMS.contains(&app)
}

/// The sweep a fleet run covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweep {
    /// Cell (machine) counts to build.
    pub cell_counts: Vec<usize>,
    /// VMs per cell (the sweep cell's VM count is `cells * this`).
    pub vms_per_cell: Vec<usize>,
    /// Consolidation policies to compare on every sweep cell.
    pub policies: Vec<ConsolidationPolicy>,
    /// Control-loop epochs each run executes.
    pub epochs: u64,
    /// Scheduler ticks per epoch.
    pub epoch_ticks: u64,
    /// Paper-scale pollution permit (in thousands) booked by every VM, as in
    /// Fig. 5's `250k`.
    pub permit_paper_kilo: f64,
}

impl FleetSweep {
    /// The standard sweep: 2/4/8 cells × 2/3 VMs per cell, all three
    /// policies, seven 6-tick epochs, 250k permits.
    pub fn standard() -> Self {
        FleetSweep {
            cell_counts: vec![2, 4, 8],
            vms_per_cell: vec![2, 3],
            policies: ConsolidationPolicy::ALL.to_vec(),
            epochs: 7,
            epoch_ticks: 6,
            permit_paper_kilo: 250.0,
        }
    }

    /// A small sweep for tests and the CI determinism gate: 2/4 cells, two
    /// VMs per cell, all three policies, four 4-tick epochs.
    pub fn small() -> Self {
        FleetSweep {
            cell_counts: vec![2, 4],
            vms_per_cell: vec![2],
            policies: ConsolidationPolicy::ALL.to_vec(),
            epochs: 4,
            epoch_ticks: 4,
            permit_paper_kilo: 250.0,
        }
    }

    /// Total ticks one run covers.
    pub fn total_ticks(&self) -> u64 {
        self.epochs * self.epoch_ticks
    }
}

/// One sweep cell: a fleet size, a VM population and a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCell {
    /// Cells (machines) in the fleet.
    pub cells: usize,
    /// VMs across the fleet.
    pub vms: usize,
    /// Consolidation policy driving the planner.
    pub policy: ConsolidationPolicy,
    /// Live migrations the control plane applied over the run.
    pub migrations: u64,
    /// Blackout ticks those migrations inflicted in total.
    pub downtime_ticks: u64,
    /// Mean degradation (percent vs solo) of the sensitive VMs.
    pub sensitive_degradation_pct: f64,
    /// Mean degradation (percent vs solo) of the disruptive VMs.
    pub disruptive_degradation_pct: f64,
    /// Total Kyoto punishments across the fleet.
    pub punishments: u64,
    /// Per-cell aggregates of the final epoch (the consolidated state).
    pub final_epoch: Vec<CellEpochStats>,
}

impl FleetCell {
    /// Fleet-wide instructions retired during the final epoch.
    pub fn final_epoch_instructions(&self) -> u64 {
        self.final_epoch.iter().map(|c| c.instructions).sum()
    }

    /// Cells left empty in the final epoch (what bin-packing frees up).
    pub fn empty_cells(&self) -> usize {
        self.final_epoch.iter().filter(|c| c.vms == 0).count()
    }
}

/// The fleet dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Paper-scale permit booked by every VM.
    pub permit_paper_kilo: f64,
    /// Every sweep cell, cell-count outer, VM-count middle, policy inner.
    pub cells: Vec<FleetCell>,
}

impl FleetResult {
    /// The sweep cell for a fleet size / VM count / policy, if present.
    pub fn cell(
        &self,
        cells: usize,
        vms: usize,
        policy: ConsolidationPolicy,
    ) -> Option<&FleetCell> {
        self.cells
            .iter()
            .find(|c| c.cells == cells && c.vms == vms && c.policy == policy)
    }

    /// Renders the sweep table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Fleet: cell-count x VM-count x policy sweep ({}k permits, live migration)\n",
            self.permit_paper_kilo
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "  {} cells, {:>2} VMs, {:<15}  migrations {:>2} (downtime {:>2} ticks)  degradation sens {:5.1}% / dis {:5.1}%  punish {:>5}\n",
                cell.cells,
                cell.vms,
                cell.policy.label(),
                cell.migrations,
                cell.downtime_ticks,
                cell.sensitive_degradation_pct,
                cell.disruptive_degradation_pct,
                cell.punishments,
            ));
            for stats in &cell.final_epoch {
                out.push_str(&format!(
                    "    {}: {} vms  instr {:>9}  llc_miss {:>7}  punish {:>4}  pollution {:8.1}/ms\n",
                    stats.cell,
                    stats.vms,
                    stats.instructions,
                    stats.llc_misses,
                    stats.punishments,
                    stats.pollution_rate,
                ));
            }
        }
        out
    }
}

/// Derives the per-VM seed salt: VMs of the same app share a workload stream
/// (they run on disjoint machines), which lets every app's solo baseline be
/// measured once.
fn app_salt(index: usize) -> u64 {
    0xf1ee7 + (index % FLEET_MIX.len()) as u64
}

/// Builds the cluster configuration for one sweep cell.
fn cluster_config(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    cells: usize,
    policy: ConsolidationPolicy,
    polluter_threshold: f64,
) -> ClusterConfig {
    ClusterConfig::new(cells, config.scale)
        .with_epoch_ticks(sweep.epoch_ticks)
        .with_policy(policy)
        // `--parallel-engine` flips both levels: cell-parallel cluster
        // epochs here, and the socket-parallel engine inside each cell via
        // the hypervisor config below.
        .with_parallel_cells(config.parallel_engine)
        .with_hypervisor(config.hypervisor_config())
        // Shadow attribution (as in Fig. 5): pollution estimates are *solo*
        // miss rates, so a victim whose misses are inflated by a polluting
        // neighbour is never misclassified as a polluter itself.
        .with_strategy(MonitoringStrategy::SimulatorAttribution)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(4)
                .with_polluter_threshold(polluter_threshold),
        )
}

/// Measures each app's solo throughput (instructions per tick, same epoch
/// count, one VM alone on one cell) — the degradation baseline.
fn solo_baselines(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    permit: f64,
    polluter_threshold: f64,
) -> Vec<(SpecApp, f64)> {
    FLEET_MIX
        .iter()
        .enumerate()
        .map(|(index, &app)| {
            let mut cluster = Cluster::new(cluster_config(
                config,
                sweep,
                1,
                ConsolidationPolicy::LoadBalance,
                polluter_threshold,
            ));
            let vm = cluster.add_vm(
                CellId(0),
                VmConfig::new(format!("solo-{}", app.name())).with_llc_cap(permit),
                Box::new(config.workload(app, app_salt(index))),
            );
            cluster.run_epochs(sweep.epochs);
            let report = cluster.report(vm).expect("solo VM exists");
            (app, report.instructions_per_tick())
        })
        .collect()
}

/// Calibrated inputs shared by every cell of one sweep run: the simulated
/// permit each VM books, the pollution rate above which the planner counts
/// a VM as a polluter, and the per-app solo throughput baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCalibration {
    /// Simulated permit (misses per CPU-ms) each VM books.
    pub permit: f64,
    /// Planner classification threshold (misses per CPU-ms).
    pub polluter_threshold: f64,
    /// Solo instructions-per-tick of each app in [`FLEET_MIX`].
    pub baselines: Vec<(SpecApp, f64)>,
}

/// Runs one sweep cell: seed `cells * vms_per_cell` VMs across the fleet in
/// arrival order (VMs fill one cell, then the next — the placement a cloud's
/// admission path produces, which leaves every cell with a
/// sensitive/disruptive blend), run the control loop, and fold the outcome
/// into a [`FleetCell`].
pub fn run_cell(
    config: &ExperimentConfig,
    sweep: &FleetSweep,
    cells: usize,
    vms_per_cell: usize,
    policy: ConsolidationPolicy,
    calibration: &SweepCalibration,
) -> FleetCell {
    let vm_count = cells * vms_per_cell;
    let mut cluster = Cluster::new(cluster_config(
        config,
        sweep,
        cells,
        policy,
        calibration.polluter_threshold,
    ));
    let mut apps = Vec::with_capacity(vm_count);
    for i in 0..vm_count {
        let app = FLEET_MIX[i % FLEET_MIX.len()];
        apps.push(app);
        cluster.add_vm(
            CellId((i / vms_per_cell).min(cells - 1)),
            VmConfig::new(format!("fvm{i}-{}", app.name())).with_llc_cap(calibration.permit),
            Box::new(config.workload(app, app_salt(i))),
        );
    }
    cluster.run_epochs(sweep.epochs);

    let downtime_per_move = cluster.config().planner.cost.downtime_ticks;
    let reports = cluster.reports();
    let mut sensitive = (0usize, 0.0f64);
    let mut disruptive = (0usize, 0.0f64);
    let mut punishments = 0u64;
    for (report, &app) in reports.iter().zip(&apps) {
        punishments += report.punishments;
        let solo = calibration
            .baselines
            .iter()
            .find(|(a, _)| *a == app)
            .map(|(_, t)| *t)
            .expect("baseline for every app in the mix");
        let degradation = degradation_percent(solo, report.instructions_per_tick());
        if is_sensitive(app) {
            sensitive.0 += 1;
            sensitive.1 += degradation;
        } else {
            disruptive.0 += 1;
            disruptive.1 += degradation;
        }
    }
    let mean = |(count, sum): (usize, f64)| if count == 0 { 0.0 } else { sum / count as f64 };
    FleetCell {
        cells,
        vms: vm_count,
        policy,
        migrations: cluster.total_migrations(),
        downtime_ticks: cluster.total_migrations() * downtime_per_move,
        sensitive_degradation_pct: mean(sensitive),
        disruptive_degradation_pct: mean(disruptive),
        punishments,
        final_epoch: cluster
            .history()
            .last()
            .map(|epoch| epoch.cells.clone())
            .unwrap_or_default(),
    }
}

/// Calibrates a sweep run: converts the paper permit to simulated units and
/// measures the per-app solo baselines.
pub fn calibrate_sweep(config: &ExperimentConfig, sweep: &FleetSweep) -> SweepCalibration {
    let permit = calibrate_permits(config).paper_kilo(sweep.permit_paper_kilo);
    // A VM polluting beyond its booked permit counts as a polluter even
    // before the scheduler catches it punishing.
    let polluter_threshold = permit;
    SweepCalibration {
        permit,
        polluter_threshold,
        baselines: solo_baselines(config, sweep, permit, polluter_threshold),
    }
}

/// Runs the full sweep described by `sweep`.
pub fn run_with_sweep(config: &ExperimentConfig, sweep: &FleetSweep) -> FleetResult {
    let calibration = calibrate_sweep(config, sweep);
    let mut cells = Vec::new();
    for &cell_count in &sweep.cell_counts {
        for &vms_per_cell in &sweep.vms_per_cell {
            for &policy in &sweep.policies {
                cells.push(run_cell(
                    config,
                    sweep,
                    cell_count,
                    vms_per_cell,
                    policy,
                    &calibration,
                ));
            }
        }
    }
    FleetResult {
        permit_paper_kilo: sweep.permit_paper_kilo,
        cells,
    }
}

/// Runs the standard fleet sweep.
pub fn run(config: &ExperimentConfig) -> FleetResult {
    run_with_sweep(config, &FleetSweep::standard())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 11,
            warmup_ticks: 2,
            measure_ticks: 5,
            parallel_engine: false,
        }
    }

    #[test]
    fn sweep_covers_every_cell_and_policy() {
        let sweep = FleetSweep::small();
        let result = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(result.cells.len(), 6, "2 fleet sizes x 3 policies");
        for policy in ConsolidationPolicy::ALL {
            let cell = result.cell(4, 8, policy).expect("4-cell sweep cell");
            assert_eq!(cell.final_epoch.len(), 4);
            assert!(cell.final_epoch_instructions() > 0);
        }
        let table = result.to_table();
        assert!(table.contains("pollution-aware"));
        assert!(table.contains("4 cells"));
        assert!(table.contains("cell3"));
    }

    #[test]
    fn pollution_aware_beats_load_balancing_for_sensitive_vms() {
        // The acceptance claim of the subsystem: with the same fleet, same
        // VMs and same seeds, co-locating polluters away from sensitive VMs
        // must measurably reduce the sensitive VMs' aggregate degradation
        // relative to count-balancing.
        let sweep = FleetSweep::small();
        let result = run_with_sweep(&tiny_config(), &sweep);
        let balanced = result
            .cell(4, 8, ConsolidationPolicy::LoadBalance)
            .expect("load-balance cell");
        let aware = result
            .cell(4, 8, ConsolidationPolicy::PollutionAware)
            .expect("pollution-aware cell");
        assert!(
            aware.sensitive_degradation_pct < balanced.sensitive_degradation_pct - 1.0,
            "pollution-aware ({:.1}%) must beat load-balance ({:.1}%) by a visible margin",
            aware.sensitive_degradation_pct,
            balanced.sensitive_degradation_pct
        );
        assert!(
            aware.migrations > 0,
            "separation requires actual migrations"
        );
    }

    #[test]
    fn runs_are_deterministic_and_cell_parallelism_changes_nothing() {
        let sweep = FleetSweep::small();
        let serial = run_with_sweep(&tiny_config(), &sweep);
        let rerun = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(serial, rerun, "same config, same bytes");
        let parallel = run_with_sweep(&tiny_config().with_parallel_engine(true), &sweep);
        assert_eq!(serial, parallel, "cell-parallel epochs are bit-identical");
        assert_eq!(serial.to_table(), parallel.to_table());
    }
}
