//! Cycle-domain trace capture behind `figures --trace-out <path>`.
//!
//! Every figure/scenario target maps to one **representative traced run**
//! at the experiment's scale: the paper figures share one NUMA hypervisor
//! run (engine spans, scheduler pick/punish instants), the fleet
//! scenarios run a traced cluster (boundary phases, migration/fault/
//! retry-queue events merged from the cells in cell-id order) and the
//! service scenario runs a traced control plane (request → admission →
//! placement chains). Captures honour
//! [`ExperimentConfig::parallel_engine`] for both the socket-parallel
//! engine and the cell-parallel cluster, and are **byte-identical**
//! either way — the CI determinism gate diffs the written files.
//!
//! All timestamps are simulated time (engine cycles or the cluster
//! control cursor); nothing here reads a wall clock, so the same inputs
//! always produce the same bytes.

use crate::config::ExperimentConfig;
use crate::harness::spec_workload;
use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::events::{EventSchedule, EventScheduleConfig};
use kyoto_cluster::faults::{FaultPlan, FaultPlanConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_cluster::TraceConfig;
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_sim::workload::Workload;
use kyoto_trace::{CycleProfile, TraceDoc, TraceSink};
use kyoto_workloads::spec::SpecApp;
use std::collections::BTreeSet;

/// The apps the traced runs schedule (a contention-heavy mix, so the
/// trace shows punishments and migrations, not just idle epochs).
const APPS: [SpecApp; 4] = [SpecApp::Lbm, SpecApp::Gcc, SpecApp::Mcf, SpecApp::Omnetpp];

/// The capture domain a figure/scenario target belongs to: every paper
/// figure shares the `engine` capture; each beyond-paper scenario has its
/// own. `None` for unknown targets.
pub fn capture_kind(target: &str) -> Option<&'static str> {
    match target {
        "table1" | "table2" | "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig8"
        | "fig9" | "fig10" | "fig11" | "fig12" => Some("engine"),
        "cloudscale" => Some("cloudscale"),
        "fleet" => Some("fleet"),
        "churn" => Some("churn"),
        "failures" => Some("failures"),
        "service" => Some("service"),
        "interactive" => Some("interactive"),
        _ => None,
    }
}

/// Captures the representative trace of one target (see [`capture_kind`]),
/// or `None` for unknown targets.
pub fn capture(target: &str, config: &ExperimentConfig) -> Option<TraceSink> {
    Some(match capture_kind(target)? {
        "engine" => engine_capture(config),
        "service" => service_capture(config),
        "interactive" => interactive_capture(config),
        kind => cluster_capture(kind, config),
    })
}

/// Captures every distinct domain among `targets` (deduplicated — the 13
/// figure targets share one `engine` capture) and merges them into one
/// document, tracks and metrics prefixed `<kind>.`.
pub fn capture_merged(targets: &[&str], config: &ExperimentConfig) -> TraceDoc {
    let mut doc = TraceDoc::default();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for target in targets {
        let Some(kind) = capture_kind(target) else {
            continue;
        };
        if !seen.insert(kind) {
            continue;
        }
        let sink = capture(target, config).expect("kind implies capture");
        doc.absorb(&sink, &format!("{kind}."));
    }
    doc
}

/// Renders `doc` in text format v1 with its [`CycleProfile`] rollup
/// appended as `#` comments — the parser ignores them, so the file still
/// round-trips, while a human gets the flamegraph-substitute table in the
/// same artifact.
pub fn render_with_profile(doc: &TraceDoc) -> String {
    let mut out = doc.render();
    out.push_str("#\n# cycle profile (count, total and self cycles per span name)\n");
    for line in CycleProfile::from_doc(doc).render().lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// One traced KS4Xen run on the two-socket NUMA machine: a capped heavy
/// polluter plus companions, so engine spans, scheduler picks and
/// punishments all appear.
fn engine_capture(config: &ExperimentConfig) -> TraceSink {
    let mut hv = ks4xen_hypervisor(
        config.numa_machine(),
        config.hypervisor_config(),
        MonitoringStrategy::DirectPmc,
    );
    hv.engine_mut().trace_mut().enable();
    for (i, app) in APPS.iter().enumerate() {
        let mut vm = VmConfig::new(format!("trace-{}", app.name()));
        if i == 0 {
            // A tight permit on the heaviest polluter provokes punishments.
            vm = vm.with_llc_cap(config.scaled_llc_cap(50_000.0));
        }
        hv.add_vm_with(vm, spec_workload(config, *app, 0x7ace + i as u64))
            .expect("valid VM");
    }
    hv.run_ticks(config.total_ticks());
    hv.engine().trace().clone()
}

/// The traced cluster shared by the fleet-family scenarios: `failures`
/// installs a fault plan, `churn` drives an arrival/departure schedule,
/// `fleet` and `cloudscale` run the plain consolidation loop.
fn cluster_capture(kind: &str, config: &ExperimentConfig) -> TraceSink {
    let cells = 3;
    let mut cluster = Cluster::new(
        ClusterConfig::new(cells, config.scale)
            .with_epoch_ticks(3)
            .with_policy(ConsolidationPolicy::PollutionAware)
            .with_planner(
                PlannerConfig::default()
                    .with_max_moves(3)
                    .with_polluter_threshold(200.0),
            )
            .with_parallel_cells(config.parallel_engine)
            .with_trace(TraceConfig::On),
    );
    for i in 0..6 {
        let app = APPS[i % APPS.len()];
        cluster
            .add_vm(
                CellId(i % cells),
                VmConfig::new(format!("trace-vm{i}-{}", app.name())).with_llc_cap(50.0),
                spec_workload(config, app, 0xf1ee7 + i as u64),
            )
            .expect("valid VM");
    }
    let epochs = 5;
    match kind {
        "failures" => {
            cluster.install_faults(FaultPlan::new(
                FaultPlanConfig::new(config.seed ^ 0xFA17)
                    .with_crash_rate(0.4)
                    .with_slowdown_rate(0.3)
                    .with_abort_rate(0.6)
                    .with_down_epochs(2),
            ));
            cluster.run_epochs(epochs).expect("traced fault run");
        }
        "churn" => {
            let schedule = EventSchedule::new(
                EventScheduleConfig::new(config.seed ^ 0xC4)
                    .with_arrival_rate(1.0)
                    .with_departure_rate(0.5)
                    .with_drain(1, CellId(cells - 1))
                    .with_join(3, CellId(cells - 1)),
            );
            let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
                let app = APPS[(index as usize) % APPS.len()];
                (
                    VmConfig::new(format!("churn{index}-{}", app.name())).with_llc_cap(50.0),
                    spec_workload(config, app, 0xA11 + index),
                )
            };
            cluster
                .run_epochs_with_schedule(&schedule, epochs, &mut spawn)
                .expect("traced churn run");
        }
        _ => cluster.run_epochs(epochs).expect("traced fleet run"),
    }
    cluster.trace().clone()
}

/// A traced run of the interactive scenario's VM mix: sleep-mostly
/// services block (WFI) and wake on their timers next to batch polluters,
/// leaving `vm.block`/`vm.wake` instants and per-VM blocked-cycles
/// counters on the `hv` track alongside the usual engine spans.
fn interactive_capture(config: &ExperimentConfig) -> TraceSink {
    use crate::interactive::WAKE_PERIOD_TICKS;
    use kyoto_hypervisor::lifecycle::WakeSource;
    use kyoto_workloads::interactive::Interactive;
    use kyoto_workloads::spec::SpecWorkload;
    let mut hv = ks4xen_hypervisor(
        config.machine(),
        config.hypervisor_config(),
        MonitoringStrategy::DirectPmc,
    );
    hv.engine_mut().trace_mut().enable();
    for (i, app) in APPS.iter().enumerate() {
        let mut vm = VmConfig::new(format!("trace-{}", app.name()));
        let seed = 0xb10c + i as u64;
        let workload: Box<dyn Workload> = if i % 2 == 0 {
            vm = vm.with_wake_source(
                WakeSource::new(config.seed.wrapping_add(seed))
                    .with_timer_period(WAKE_PERIOD_TICKS),
            );
            Box::new(Interactive::new(
                SpecWorkload::new(*app, config.scale, seed),
                48,
            ))
        } else {
            Box::new(SpecWorkload::new(*app, config.scale, seed))
        };
        hv.add_vm_with(vm, workload).expect("valid VM");
    }
    hv.run_ticks(config.total_ticks());
    hv.engine().trace().clone()
}

/// A traced control-plane replay: placements, queries and departures
/// through the SLA-aware admission front, leaving request → admission →
/// placement chains on the `service` track.
fn service_capture(config: &ExperimentConfig) -> TraceSink {
    use kyoto_service::request::{RequestTrace, RequestTraceConfig};
    use kyoto_service::service::{FleetService, ServiceConfig};
    let cluster = Cluster::new(
        ClusterConfig::new(2, config.scale)
            .with_epoch_ticks(3)
            .with_parallel_cells(config.parallel_engine)
            .with_trace(TraceConfig::On),
    );
    let requests = RequestTrace::new(
        RequestTraceConfig::new(config.seed ^ 0x5e41, 6)
            .with_place_rate(1.5)
            .with_depart_rate(0.5)
            .with_query_rate(0.5),
    );
    let mut service = FleetService::new(cluster, requests, ServiceConfig::default());
    let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
        let app = APPS[(index as usize) % APPS.len()];
        (
            VmConfig::new(format!("req{index}-{}", app.name())),
            spec_workload(config, app, 0x5e47 + index),
        )
    };
    service.run_to_end(&mut spawn).expect("traced service run");
    service.cluster().trace().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 9,
            warmup_ticks: 2,
            measure_ticks: 4,
            parallel_engine: false,
        }
    }

    #[test]
    fn every_known_target_has_a_kind_and_unknowns_do_not() {
        for target in ["fig1", "fig12", "table1", "fleet", "service", "interactive"] {
            assert!(capture_kind(target).is_some(), "{target}");
        }
        assert_eq!(capture_kind("fig7"), None);
        assert!(capture("fig7", &tiny()).is_none());
    }

    #[test]
    fn captures_are_deterministic_and_survive_the_text_round_trip() {
        let config = tiny();
        let a = TraceDoc::from_sink(&capture("service", &config).unwrap());
        let b = TraceDoc::from_sink(&capture("service", &config).unwrap());
        assert_eq!(a, b, "captures must be pure functions of the config");
        assert!(!a.is_empty());
        let text = render_with_profile(&a);
        assert_eq!(
            TraceDoc::parse(&text).unwrap(),
            a,
            "profile comments must not affect the parse"
        );
    }

    #[test]
    fn the_interactive_capture_records_block_and_wake_instants() {
        let doc = TraceDoc::from_sink(&capture("interactive", &tiny()).unwrap());
        let names: Vec<&str> = doc.events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"vm.block"), "services must park (WFI)");
        assert!(names.contains(&"vm.wake"), "timer wakes must be recorded");
        assert!(
            doc.counters.iter().any(|(name, value)| name.contains("blocked_cycles") && *value > 0),
            "blocked-cycles counters must be exported"
        );
    }

    #[test]
    fn merged_capture_deduplicates_engine_targets() {
        let config = tiny();
        let doc = capture_merged(&["fig9", "fig9", "table1"], &config);
        assert!(!doc.is_empty());
        // One engine capture, every track under the single `engine.` prefix.
        for event in &doc.events {
            assert!(event.track.starts_with("engine."), "{}", event.track);
        }
        let json = kyoto_trace::to_chrome_json(&doc);
        kyoto_trace::validate_json(&json).expect("chrome export stays valid JSON");
    }
}
