//! Shared scenario-execution helpers used by every figure module.

use crate::config::ExperimentConfig;
use kyoto_hypervisor::hypervisor::Hypervisor;
use kyoto_hypervisor::scheduler::Scheduler;
use kyoto_hypervisor::vm::{VmId, VmReport};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::topology::CoreId;
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The three co-location modes assessed in Section 2.2.4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// The representative VM runs alone on the machine.
    Alone,
    /// Representative and disruptive VMs time-share the same core.
    Alternative,
    /// Representative and disruptive VMs run simultaneously on different
    /// cores of the same socket.
    Parallel,
    /// Both at once: one disruptor shares the representative's core while a
    /// second one runs on a neighbouring core.
    Combined,
}

impl ExecutionMode {
    /// The three contended modes (everything except [`ExecutionMode::Alone`]).
    pub const CONTENDED: [ExecutionMode; 3] = [
        ExecutionMode::Alternative,
        ExecutionMode::Parallel,
        ExecutionMode::Combined,
    ];

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Alone => "alone",
            ExecutionMode::Alternative => "alternative",
            ExecutionMode::Parallel => "parallel",
            ExecutionMode::Combined => "alternative+parallel",
        }
    }
}

/// Per-VM measurement taken over the measurement window only (warm-up
/// excluded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The measured VM.
    pub vm: VmId,
    /// Its configured name.
    pub name: String,
    /// Counter delta over the measurement window.
    pub pmc_delta: PmcSet,
    /// Ticks in the measurement window.
    pub ticks: u64,
    /// Ticks (within the window) during which the VM was scheduled.
    pub ticks_scheduled: u64,
    /// Punishments accumulated during the window.
    pub punishments: u64,
    /// Core frequency in kHz (to convert cycles to milliseconds).
    pub freq_khz: u64,
}

impl Measurement {
    /// Instructions per cycle while the VM was actually running — the
    /// performance metric of Section 2.2.3.
    pub fn ipc(&self) -> f64 {
        self.pmc_delta.ipc()
    }

    /// Instructions retired per elapsed tick: a wall-clock throughput, the
    /// inverse of the paper's execution time for a fixed amount of work.
    pub fn instructions_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.pmc_delta.instructions as f64 / self.ticks as f64
        }
    }

    /// Fraction of the window during which the VM was scheduled.
    pub fn cpu_share(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.ticks_scheduled as f64 / self.ticks as f64
        }
    }

    /// The VM's measured pollution (Equation 1 over the window).
    pub fn llc_cap_act(&self) -> f64 {
        kyoto_core::equation::llc_cap_act_from_pmcs(&self.pmc_delta, self.freq_khz)
    }

    /// LLC misses per measured tick.
    pub fn llc_misses_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.pmc_delta.llc_misses as f64 / self.ticks as f64
        }
    }

    /// Execution time (in arbitrary seconds) of a fixed amount of work,
    /// derived from the throughput. Used by the execution-time figures
    /// (Fig. 8, Fig. 12).
    pub fn execution_time_for(&self, work_instructions: f64) -> f64 {
        let throughput = self.instructions_per_tick();
        if throughput <= 0.0 {
            f64::INFINITY
        } else {
            work_instructions / throughput
        }
    }
}

fn delta_measurement(before: &VmReport, after: &VmReport, freq_khz: u64) -> Measurement {
    Measurement {
        vm: after.vm,
        name: after.name.clone(),
        pmc_delta: after.pmcs.delta_since(&before.pmcs),
        ticks: after.ticks_elapsed - before.ticks_elapsed,
        ticks_scheduled: after.ticks_scheduled - before.ticks_scheduled,
        punishments: after.punishments - before.punishments,
        freq_khz,
    }
}

/// Runs `hypervisor` for the configured warm-up then measurement windows and
/// returns one [`Measurement`] per VM (in creation order).
pub fn warmup_and_measure<S: Scheduler>(
    hypervisor: &mut Hypervisor<S>,
    config: &ExperimentConfig,
) -> Vec<Measurement> {
    let freq_khz = hypervisor.engine().machine().config().freq_khz;
    hypervisor.run_ticks(config.warmup_ticks);
    let before = hypervisor.reports();
    hypervisor.run_ticks(config.measure_ticks);
    let after = hypervisor.reports();
    before
        .iter()
        .zip(after.iter())
        .map(|(b, a)| delta_measurement(b, a, freq_khz))
        .collect()
}

/// Finds the measurement of a VM by name.
///
/// # Panics
///
/// Panics when no VM has that name — a scenario construction bug.
pub fn measurement_of<'a>(measurements: &'a [Measurement], name: &str) -> &'a Measurement {
    measurements
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("no measurement for VM named {name}"))
}

/// Core on which the sensitive / representative VM is pinned by convention.
pub const SENSITIVE_CORE: CoreId = CoreId(0);
/// Core on which the (first) parallel disruptor is pinned by convention.
pub const DISRUPTOR_CORE: CoreId = CoreId(1);

/// Derives a per-VM workload seed from the experiment seed and a salt, so
/// co-located VMs never share RNG streams.
pub fn vm_seed(config: &ExperimentConfig, salt: u64) -> u64 {
    config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(salt)
}

/// Conversion between the paper's `llc_cap` values (expressed for its
/// physical Xeon E5-1603 v3) and the simulated machine's pollution rates.
///
/// The paper books permits like `250k` misses/ms; the absolute pollution
/// rates of the simulated machine differ from the real testbed (and shrink
/// with the scale factor), so experiments calibrate the permit unit against
/// the heaviest polluter: the measured solo pollution of `lbm` is mapped to
/// the ~1.6M misses/ms peak rate implied by the paper's traces, and every
/// paper permit is converted with that ratio. This preserves the *relative*
/// tightness of each permit, which is what the figures depend on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PermitCalibration {
    /// Simulated misses/ms corresponding to the paper's "1k" unit.
    pub sim_per_paper_kilo: f64,
}

/// Paper-scale kilo-units assumed for lbm's solo pollution rate (the
/// calibration anchor).
const LBM_PAPER_KILO: f64 = 1600.0;

impl PermitCalibration {
    /// Converts a paper permit expressed in thousands (the paper's `250k` is
    /// `paper_kilo(250.0)`) into simulated misses/ms.
    pub fn paper_kilo(&self, kilo: f64) -> f64 {
        kilo * self.sim_per_paper_kilo
    }
}

/// Measures the calibration anchor by running `lbm` alone for a few ticks.
pub fn calibrate_permits(config: &ExperimentConfig) -> PermitCalibration {
    let mut hv = kyoto_hypervisor::xen_hypervisor(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        kyoto_hypervisor::vm::VmConfig::new("lbm").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, SpecApp::Lbm, 0xca11),
    )
    .expect("valid VM");
    let short = ExperimentConfig {
        warmup_ticks: 2,
        measure_ticks: 4,
        ..*config
    };
    let measurements = warmup_and_measure(&mut hv, &short);
    let lbm_rate = measurement_of(&measurements, "lbm").llc_cap_act().max(1.0);
    PermitCalibration {
        sim_per_paper_kilo: lbm_rate / LBM_PAPER_KILO,
    }
}

/// Boxes a SPEC workload for VM creation.
pub fn spec_workload(config: &ExperimentConfig, app: SpecApp, salt: u64) -> Box<dyn Workload> {
    Box::new(config.workload(app, vm_seed(config, salt)))
}

/// Runs `count` independent sweep cells on up to `jobs` scoped worker
/// threads, preserving input order (`jobs <= 1` runs on the calling
/// thread). Every cell must derive all its seeds from shared, immutable
/// inputs, so the assembled result is byte-identical whatever the
/// parallelism — the work-stealing shape behind the cloudscale and fleet
/// sweeps (and `figures --jobs` one level up).
pub fn run_jobs<T: Send>(count: usize, jobs: usize, run_one: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = jobs.clamp(1, count.max(1));
    if workers <= 1 {
        return (0..count).map(run_one).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let result = run_one(index);
                results.lock().expect("no poisoned worker")[index] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned worker")
        .into_iter()
        .map(|cell| cell.expect("every cell computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_hypervisor::vm::VmConfig;
    use kyoto_hypervisor::xen_hypervisor;
    use kyoto_sim::workload::ComputeOnly;

    #[test]
    fn execution_mode_labels() {
        assert_eq!(ExecutionMode::Alone.label(), "alone");
        assert_eq!(ExecutionMode::Combined.label(), "alternative+parallel");
        assert_eq!(ExecutionMode::CONTENDED.len(), 3);
    }

    #[test]
    fn warmup_is_excluded_from_measurements() {
        let config = ExperimentConfig::quick();
        let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
        hv.add_vm_with(VmConfig::new("solo"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        let measurements = warmup_and_measure(&mut hv, &config);
        assert_eq!(measurements.len(), 1);
        let m = &measurements[0];
        assert_eq!(m.ticks, config.measure_ticks);
        assert_eq!(m.ticks_scheduled, config.measure_ticks);
        assert!((m.ipc() - 1.0).abs() < 1e-9);
        assert!((m.cpu_share() - 1.0).abs() < 1e-9);
        assert!(m.instructions_per_tick() > 0.0);
    }

    #[test]
    fn measurement_lookup_by_name() {
        let config = ExperimentConfig::quick();
        let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
        hv.add_vm_with(VmConfig::new("a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        hv.add_vm_with(VmConfig::new("b"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        let measurements = warmup_and_measure(&mut hv, &config);
        assert_eq!(measurement_of(&measurements, "b").name, "b");
    }

    #[test]
    #[should_panic(expected = "no measurement")]
    fn missing_measurement_panics() {
        measurement_of(&[], "ghost");
    }

    #[test]
    fn execution_time_is_inverse_throughput() {
        let m = Measurement {
            vm: VmId(1),
            name: "x".into(),
            pmc_delta: PmcSet {
                instructions: 1000,
                unhalted_core_cycles: 1000,
                ..PmcSet::default()
            },
            ticks: 10,
            ticks_scheduled: 10,
            punishments: 0,
            freq_khz: 1000,
        };
        assert!((m.execution_time_for(1000.0) - 10.0).abs() < 1e-9);
        assert!((m.llc_misses_per_tick() - 0.0).abs() < 1e-12);
        let empty = Measurement { ticks: 0, ..m };
        assert!(empty.execution_time_for(1000.0).is_infinite());
    }

    #[test]
    fn vm_seeds_differ_per_salt() {
        let config = ExperimentConfig::quick();
        assert_ne!(vm_seed(&config, 1), vm_seed(&config, 2));
    }

    #[test]
    fn permit_calibration_is_positive_and_linear() {
        let config = ExperimentConfig {
            scale: 256,
            seed: 1,
            warmup_ticks: 2,
            measure_ticks: 3,
            parallel_engine: false,
        };
        let calibration = calibrate_permits(&config);
        assert!(calibration.sim_per_paper_kilo > 0.0);
        let a = calibration.paper_kilo(50.0);
        let b = calibration.paper_kilo(250.0);
        assert!((b / a - 5.0).abs() < 1e-9);
    }
}
