//! Table 1 (experimental machine) and Table 2 (experimental VMs).

use kyoto_sim::topology::MachineConfig;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Component name (e.g. "LLC").
    pub component: String,
    /// Its description.
    pub value: String,
}

/// Table 1: the experimental machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// The rows, in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Builds Table 1 from the paper's machine configuration.
pub fn table1() -> Table1 {
    let machine = MachineConfig::paper_machine();
    let kib = |bytes: u64| bytes / 1024;
    let rows = vec![
        Table1Row {
            component: "Main memory".into(),
            value: "8096 MB".into(),
        },
        Table1Row {
            component: "L1 cache".into(),
            value: format!(
                "L1 D {} KB, L1 I {} KB, {}-way",
                kib(machine.l1d.size_bytes),
                kib(machine.l1i.size_bytes),
                machine.l1d.ways
            ),
        },
        Table1Row {
            component: "L2 cache".into(),
            value: format!(
                "L2 U {} KB, {}-way",
                kib(machine.l2.size_bytes),
                machine.l2.ways
            ),
        },
        Table1Row {
            component: "LLC".into(),
            value: format!(
                "{} MB, {}-way",
                machine.llc.size_bytes / (1024 * 1024),
                machine.llc.ways
            ),
        },
        Table1Row {
            component: "Processor".into(),
            value: format!(
                "{} Socket, {} Cores/socket, {:.1} GHz",
                machine.sockets,
                machine.cores_per_socket,
                machine.freq_khz as f64 / 1_000_000.0
            ),
        },
    ];
    Table1 { rows }
}

impl Table1 {
    /// Renders the table as aligned text.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Table 1: experimental machine\n");
        for row in &self.rows {
            out.push_str(&format!("  {:<12} {}\n", row.component, row.value));
        }
        out
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The VM label used throughout the paper (`vsen1`, `vdis2`, ...).
    pub vm: String,
    /// The application the VM hosts.
    pub app: SpecApp,
}

/// Table 2: the sensitive and disruptive experimental VMs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// The rows, in the paper's order.
    pub rows: Vec<Table2Row>,
}

/// Builds Table 2 (Section 4 of the paper).
pub fn table2() -> Table2 {
    Table2 {
        rows: vec![
            Table2Row {
                vm: "vsen1".into(),
                app: SpecApp::Gcc,
            },
            Table2Row {
                vm: "vsen2".into(),
                app: SpecApp::Omnetpp,
            },
            Table2Row {
                vm: "vsen3".into(),
                app: SpecApp::Soplex,
            },
            Table2Row {
                vm: "vdis1".into(),
                app: SpecApp::Lbm,
            },
            Table2Row {
                vm: "vdis2".into(),
                app: SpecApp::Blockie,
            },
            Table2Row {
                vm: "vdis3".into(),
                app: SpecApp::Mcf,
            },
        ],
    }
}

impl Table2 {
    /// The application hosted by a paper VM label.
    pub fn app_of(&self, vm: &str) -> Option<SpecApp> {
        self.rows.iter().find(|r| r.vm == vm).map(|r| r.app)
    }

    /// Renders the table as aligned text.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Table 2: experimental VMs\n");
        for row in &self.rows {
            out.push_str(&format!("  {:<6} {}\n", row.vm, row.app));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_the_paper_geometry() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
        let text = t.to_table();
        assert!(text.contains("L1 D 32 KB, L1 I 32 KB, 8-way"));
        assert!(text.contains("L2 U 256 KB, 8-way"));
        assert!(text.contains("10 MB, 20-way"));
        assert!(text.contains("1 Socket, 4 Cores/socket, 2.8 GHz"));
    }

    #[test]
    fn table2_matches_the_paper_mapping() {
        let t = table2();
        assert_eq!(t.app_of("vsen1"), Some(SpecApp::Gcc));
        assert_eq!(t.app_of("vsen2"), Some(SpecApp::Omnetpp));
        assert_eq!(t.app_of("vsen3"), Some(SpecApp::Soplex));
        assert_eq!(t.app_of("vdis1"), Some(SpecApp::Lbm));
        assert_eq!(t.app_of("vdis2"), Some(SpecApp::Blockie));
        assert_eq!(t.app_of("vdis3"), Some(SpecApp::Mcf));
        assert_eq!(t.app_of("nope"), None);
        assert!(t.to_table().contains("vdis2  blockie"));
    }
}
