//! Fig. 12 — The overhead incurred by KS4Xen is near zero.
//!
//! Two VMs hosting the CPU-bound SPEC application povray share the same
//! core; the experiment is repeated under XCS and under KS4Xen while the
//! scheduling time slice (and therefore the frequency at which the
//! monitoring code runs) varies. The execution times are identical, showing
//! that the PMC-gathering and quota accounting add no measurable overhead.

use crate::config::ExperimentConfig;
use crate::harness::{measurement_of, spec_workload, warmup_and_measure, SENSITIVE_CORE};
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::hypervisor::HypervisorConfig;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// Work amount (instructions) whose execution time the curves report.
const FIXED_WORK_INSTRUCTIONS: f64 = 50_000_000.0;

/// One point of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig12Point {
    /// Scheduling time slice (tick) in milliseconds.
    pub time_slice_ms: u64,
    /// Execution time of povray under plain XCS.
    pub xcs_execution_time: f64,
    /// Execution time of povray under KS4Xen.
    pub ks4xen_execution_time: f64,
}

impl Fig12Point {
    /// KS4Xen's overhead relative to XCS, in percent.
    pub fn overhead_percent(&self) -> f64 {
        if self.xcs_execution_time <= 0.0 {
            0.0
        } else {
            (self.ks4xen_execution_time - self.xcs_execution_time) / self.xcs_execution_time * 100.0
        }
    }
}

/// The Fig. 12 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// One point per evaluated time slice.
    pub points: Vec<Fig12Point>,
}

impl Fig12Result {
    /// The largest absolute overhead (in %) across every time slice.
    pub fn max_overhead_percent(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.overhead_percent().abs())
            .fold(0.0, f64::max)
    }

    /// Renders the two curves.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "Fig. 12: povray execution time vs scheduling time slice\n  slice(ms)   XCS          KS4Xen      overhead%\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:9} {:12.2} {:12.2} {:10.2}\n",
                p.time_slice_ms,
                p.xcs_execution_time,
                p.ks4xen_execution_time,
                p.overhead_percent()
            ));
        }
        out
    }
}

fn hypervisor_config_with_slice(config: &ExperimentConfig, tick_ms: u64) -> HypervisorConfig {
    config.hypervisor_config().with_tick_ms(tick_ms)
}

fn xcs_run(config: &ExperimentConfig, tick_ms: u64) -> f64 {
    let mut hv = xen_hypervisor(
        config.machine(),
        hypervisor_config_with_slice(config, tick_ms),
    );
    hv.add_vm_with(
        VmConfig::new("povray-a").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, SpecApp::Povray, 1),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("povray-b").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, SpecApp::Povray, 2),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "povray-a").execution_time_for(FIXED_WORK_INSTRUCTIONS)
}

fn ks4xen_run(config: &ExperimentConfig, tick_ms: u64) -> f64 {
    let mut hv = ks4xen_hypervisor(
        config.machine(),
        hypervisor_config_with_slice(config, tick_ms),
        MonitoringStrategy::DirectPmc,
    );
    // Both VMs book a comfortable permit; povray barely touches the LLC so
    // the quota machinery runs on every tick without ever punishing.
    let permit = 1_000_000.0;
    hv.add_vm_with(
        VmConfig::new("povray-a")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(permit),
        spec_workload(config, SpecApp::Povray, 1),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("povray-b")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(permit),
        spec_workload(config, SpecApp::Povray, 2),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "povray-a").execution_time_for(FIXED_WORK_INSTRUCTIONS)
}

/// Runs Fig. 12 with explicit time slices.
pub fn run_with_slices(config: &ExperimentConfig, slices_ms: &[u64]) -> Fig12Result {
    let points = slices_ms
        .iter()
        .map(|&tick_ms| Fig12Point {
            time_slice_ms: tick_ms,
            xcs_execution_time: xcs_run(config, tick_ms),
            ks4xen_execution_time: ks4xen_run(config, tick_ms),
        })
        .collect();
    Fig12Result { points }
}

/// Runs Fig. 12 with the paper's sweep (3 ms to 30 ms).
pub fn run(config: &ExperimentConfig) -> Fig12Result {
    run_with_slices(config, &[3, 6, 9, 12, 15, 18, 21, 24, 27, 30])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 37,
            warmup_ticks: 3,
            measure_ticks: 9,
            parallel_engine: false,
        }
    }

    #[test]
    fn ks4xen_overhead_is_negligible() {
        let config = tiny_config();
        let result = run_with_slices(&config, &[10, 30]);
        assert_eq!(result.points.len(), 2);
        assert!(
            result.max_overhead_percent() < 5.0,
            "KS4Xen should not slow povray down (max overhead {:.2}%)",
            result.max_overhead_percent()
        );
        assert!(result.to_table().contains("overhead"));
    }
}
