//! Fig. 1 — LLC contention could impact some applications.
//!
//! Section 2.2 classifies VMs into three categories by working-set size (C1
//! fits the ILC, C2 fits the LLC, C3 exceeds it) and measures the
//! performance degradation of a representative VM of each category when
//! co-located with a disruptive VM of each category, under three execution
//! modes (alternative on the same core, parallel on different cores, and
//! both combined).
//!
//! Expected shape (paper): C1 representatives are unaffected by anything;
//! C2/C3 representatives suffer badly from C2/C3 disruptors; parallel
//! execution hurts much more (up to ~70 %) than alternative execution
//! (~13 %).

use crate::config::ExperimentConfig;
use crate::harness::{
    measurement_of, warmup_and_measure, ExecutionMode, DISRUPTOR_CORE, SENSITIVE_CORE,
};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_metrics::degradation::degradation_percent;
use kyoto_workloads::category::Category;
use kyoto_workloads::micro::{disruptive, representative};
use serde::{Deserialize, Serialize};

/// One bar of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Category of the representative (measured) VM.
    pub representative: Category,
    /// Category of the disruptive VM.
    pub disruptor: Category,
    /// Co-location mode.
    pub mode: ExecutionMode,
    /// Performance degradation (in %) of the representative's IPC relative
    /// to running alone.
    pub degradation_percent: f64,
}

/// The full Fig. 1 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Solo IPC of each representative VM.
    pub solo_ipc: Vec<(Category, f64)>,
    /// One row per (representative, disruptor, mode) combination.
    pub rows: Vec<Fig1Row>,
}

impl Fig1Result {
    /// The row for a given combination.
    pub fn row(&self, rep: Category, dis: Category, mode: ExecutionMode) -> Option<&Fig1Row> {
        self.rows
            .iter()
            .find(|r| r.representative == rep && r.disruptor == dis && r.mode == mode)
    }

    /// Renders the dataset the way the paper's three sub-plots present it.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("Fig. 1: % of perf. degradation of v_i_rep co-located with v_j_dis\n");
        for mode in ExecutionMode::CONTENDED {
            out.push_str(&format!("  [{}]\n", mode.label()));
            out.push_str("    rep\\dis      C1       C2       C3\n");
            for rep in Category::ALL {
                let mut line = format!("    v{}rep   ", rep.index());
                for dis in Category::ALL {
                    let value = self
                        .row(rep, dis, mode)
                        .map(|r| r.degradation_percent)
                        .unwrap_or(f64::NAN);
                    line.push_str(&format!(" {value:7.1}%"));
                }
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

fn solo_ipc(config: &ExperimentConfig, category: Category) -> f64 {
    let machine = config.machine();
    let machine_config = machine.config().clone();
    let mut hv = xen_hypervisor(machine, config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("rep").pinned_to(vec![SENSITIVE_CORE]),
        representative(category, &machine_config, config.seed),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "rep").ipc()
}

fn contended_ipc(
    config: &ExperimentConfig,
    rep: Category,
    dis: Category,
    mode: ExecutionMode,
) -> f64 {
    let machine = config.machine();
    let machine_config = machine.config().clone();
    let mut hv = xen_hypervisor(machine, config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("rep").pinned_to(vec![SENSITIVE_CORE]),
        representative(rep, &machine_config, config.seed),
    )
    .expect("valid VM");
    match mode {
        ExecutionMode::Alone => {}
        ExecutionMode::Alternative => {
            hv.add_vm_with(
                VmConfig::new("dis").pinned_to(vec![SENSITIVE_CORE]),
                Box::new(disruptive(dis, &machine_config, config.seed + 1)),
            )
            .expect("valid VM");
        }
        ExecutionMode::Parallel => {
            hv.add_vm_with(
                VmConfig::new("dis").pinned_to(vec![DISRUPTOR_CORE]),
                Box::new(disruptive(dis, &machine_config, config.seed + 1)),
            )
            .expect("valid VM");
        }
        ExecutionMode::Combined => {
            hv.add_vm_with(
                VmConfig::new("dis-alt").pinned_to(vec![SENSITIVE_CORE]),
                Box::new(disruptive(dis, &machine_config, config.seed + 1)),
            )
            .expect("valid VM");
            hv.add_vm_with(
                VmConfig::new("dis-par").pinned_to(vec![DISRUPTOR_CORE]),
                Box::new(disruptive(dis, &machine_config, config.seed + 2)),
            )
            .expect("valid VM");
        }
    }
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "rep").ipc()
}

/// Runs the full Fig. 1 campaign.
pub fn run(config: &ExperimentConfig) -> Fig1Result {
    let solo: Vec<(Category, f64)> = Category::ALL
        .iter()
        .map(|&cat| (cat, solo_ipc(config, cat)))
        .collect();
    let mut rows = Vec::new();
    for &(rep, solo_ipc) in &solo {
        for dis in Category::ALL {
            for mode in ExecutionMode::CONTENDED {
                let ipc = contended_ipc(config, rep, dis, mode);
                rows.push(Fig1Row {
                    representative: rep,
                    disruptor: dis,
                    mode,
                    degradation_percent: degradation_percent(solo_ipc, ipc),
                });
            }
        }
    }
    Fig1Result {
        solo_ipc: solo,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 7,
            warmup_ticks: 2,
            measure_ticks: 4,
            parallel_engine: false,
        }
    }

    #[test]
    fn solo_runs_produce_positive_ipc() {
        let config = tiny_config();
        for category in Category::ALL {
            assert!(solo_ipc(&config, category) > 0.0, "{category}");
        }
    }

    #[test]
    fn c2_parallel_contention_hurts_more_than_c1_disruptors() {
        let config = tiny_config();
        let solo = solo_ipc(&config, Category::C2);
        let vs_c1 = contended_ipc(&config, Category::C2, Category::C1, ExecutionMode::Parallel);
        let vs_c3 = contended_ipc(&config, Category::C2, Category::C3, ExecutionMode::Parallel);
        let deg_c1 = degradation_percent(solo, vs_c1);
        let deg_c3 = degradation_percent(solo, vs_c3);
        assert!(
            deg_c3 > deg_c1,
            "an LLC-thrashing disruptor must hurt more than an ILC-only one ({deg_c3:.1}% vs {deg_c1:.1}%)"
        );
    }

    #[test]
    fn table_rendering_contains_all_modes() {
        let result = Fig1Result {
            solo_ipc: vec![(Category::C1, 1.0)],
            rows: vec![Fig1Row {
                representative: Category::C1,
                disruptor: Category::C2,
                mode: ExecutionMode::Parallel,
                degradation_percent: 12.5,
            }],
        };
        let table = result.to_table();
        assert!(table.contains("alternative"));
        assert!(table.contains("parallel"));
        assert!(table.contains("12.5"));
        assert!(result
            .row(Category::C1, Category::C2, ExecutionMode::Parallel)
            .is_some());
        assert!(result
            .row(Category::C3, Category::C2, ExecutionMode::Parallel)
            .is_none());
    }
}
