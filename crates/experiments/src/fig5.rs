//! Fig. 5 — KS4Xen minimises LLC contention, thus avoids performance
//! variations.
//!
//! The sensitive VM `250k·vsen1` (gcc with a 250k pollution permit) runs in
//! parallel with each disruptive VM `250k·vdis_i` (lbm, blockie, mcf) under
//! KS4Xen. The paper reports three things:
//!
//! * the normalised performance of `vsen1` stays close to 1.0 whatever the
//!   aggressiveness of the co-located VM (top-left plot);
//! * the disruptive VMs receive far more punishments than the sensitive VM
//!   (top-right plot);
//! * the per-tick trace of `vdis1` shows KS4Xen depriving it of the
//!   processor whenever its measured pollution exceeds the booked permit,
//!   unlike XCS which lets it run continuously (bottom plots).

use crate::config::ExperimentConfig;
use crate::harness::{
    calibrate_permits, measurement_of, spec_workload, warmup_and_measure, DISRUPTOR_CORE,
    SENSITIVE_CORE,
};
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::{VcpuId, VmConfig};
use kyoto_hypervisor::xen_hypervisor;
use kyoto_metrics::degradation::normalized_performance;
use kyoto_metrics::series::TimeSeries;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// The Fig. 5 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Paper-scale permit booked by every VM in the scenario (250k).
    pub booked_llc_cap_paper: f64,
    /// Normalised performance of `vsen1` against each disruptor, under KS4Xen.
    pub normalized_perf: Vec<(SpecApp, f64)>,
    /// Punishment counts per disruptor scenario: (disruptor, vsen1
    /// punishments, disruptor punishments).
    pub punishments: Vec<(SpecApp, u64, u64)>,
    /// Per-tick CPU occupancy (1 = running) of `vdis1` under plain XCS.
    pub cpu_trace_xcs: TimeSeries,
    /// Per-tick CPU occupancy of `vdis1` under KS4Xen.
    pub cpu_trace_ks4xen: TimeSeries,
    /// Per-tick pollution quota of `vdis1` under KS4Xen (misses, may go
    /// negative while punished) — the paper's bottom "1k llc_cap" trace.
    pub quota_trace_ks4xen: TimeSeries,
}

impl Fig5Result {
    /// Renders the dataset.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Fig. 5: KS4Xen effectiveness (vsen1 = gcc, permits = 250k)\n");
        out.push_str("  normalised vsen1 performance:\n");
        for (app, perf) in &self.normalized_perf {
            out.push_str(&format!("    vs {:<8} {:.3}\n", app.name(), perf));
        }
        out.push_str("  punishments (vsen1 / vdis):\n");
        for (app, sen, dis) in &self.punishments {
            out.push_str(&format!(
                "    vs {:<8} {:>6} / {:>6}\n",
                app.name(),
                sen,
                dis
            ));
        }
        out.push_str(&self.cpu_trace_xcs.to_table());
        out.push_str(&self.cpu_trace_ks4xen.to_table());
        out.push_str(&self.quota_trace_ks4xen.to_table());
        out
    }
}

/// Throughput of `vsen1` (gcc) running alone under KS4Xen with its permit —
/// the normalisation baseline.
fn solo_throughput(config: &ExperimentConfig, permit: f64) -> f64 {
    let mut hv = ks4xen_hypervisor(
        config.machine(),
        config.hypervisor_config(),
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    hv.add_vm_with(
        VmConfig::new("vsen1")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(permit),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "vsen1").instructions_per_tick()
}

struct CorunOutcome {
    normalized: f64,
    sen_punishments: u64,
    dis_punishments: u64,
}

fn corun_under_ks4xen(
    config: &ExperimentConfig,
    disruptor: SpecApp,
    permit: f64,
    solo: f64,
) -> CorunOutcome {
    let mut hv = ks4xen_hypervisor(
        config.machine(),
        config.hypervisor_config(),
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    hv.add_vm_with(
        VmConfig::new("vsen1")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(permit),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("vdis")
            .pinned_to(vec![DISRUPTOR_CORE])
            .with_llc_cap(permit),
        spec_workload(config, disruptor, 2),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    let sen = measurement_of(&measurements, "vsen1");
    let dis = measurement_of(&measurements, "vdis");
    CorunOutcome {
        normalized: normalized_performance(solo, sen.instructions_per_tick()),
        sen_punishments: sen.punishments,
        dis_punishments: dis.punishments,
    }
}

/// Traces `vdis1` (lbm) tick by tick under plain XCS: CPU occupancy only.
fn trace_xcs(config: &ExperimentConfig, ticks: u64, permit: f64) -> TimeSeries {
    let _ = permit;
    let hv_config = config.hypervisor_config().with_history();
    let mut hv = xen_hypervisor(config.machine(), hv_config);
    hv.add_vm_with(
        VmConfig::new("vsen1").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    let dis = hv
        .add_vm_with(
            VmConfig::new("vdis1").pinned_to(vec![DISRUPTOR_CORE]),
            spec_workload(config, SpecApp::Lbm, 2),
        )
        .expect("valid VM");
    hv.run_ticks(ticks);
    let mut series = TimeSeries::new("vdis1 CPU usage with XCS");
    for sample in hv.history_of(VcpuId::new(dis, 0)) {
        series.push(sample.tick as f64, if sample.scheduled { 1.0 } else { 0.0 });
    }
    series
}

/// Traces `vdis1` tick by tick under KS4Xen: CPU occupancy and pollution
/// quota.
fn trace_ks4xen(config: &ExperimentConfig, ticks: u64, permit: f64) -> (TimeSeries, TimeSeries) {
    let hv_config = config.hypervisor_config().with_history();
    let mut hv = ks4xen_hypervisor(
        config.machine(),
        hv_config,
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    hv.add_vm_with(
        VmConfig::new("vsen1")
            .pinned_to(vec![SENSITIVE_CORE])
            .with_llc_cap(permit),
        spec_workload(config, SpecApp::Gcc, 1),
    )
    .expect("valid VM");
    let dis = hv
        .add_vm_with(
            VmConfig::new("vdis1")
                .pinned_to(vec![DISRUPTOR_CORE])
                .with_llc_cap(permit),
            spec_workload(config, SpecApp::Lbm, 2),
        )
        .expect("valid VM");
    let dis_vcpu = VcpuId::new(dis, 0);
    let mut quota_series = TimeSeries::new("vdis1 pollution quota with KS4Xen");
    for tick in 0..ticks {
        hv.step_tick();
        let quota = hv
            .scheduler()
            .quota(dis_vcpu)
            .map(|q| q.quota())
            .unwrap_or(0.0);
        quota_series.push(tick as f64, quota);
    }
    let mut cpu_series = TimeSeries::new("vdis1 CPU usage with KS4Xen");
    for sample in hv.history_of(dis_vcpu) {
        cpu_series.push(sample.tick as f64, if sample.scheduled { 1.0 } else { 0.0 });
    }
    (cpu_series, quota_series)
}

/// Runs Fig. 5 with a custom trace length in ticks (the paper plots ~70).
pub fn run_with_trace_ticks(config: &ExperimentConfig, trace_ticks: u64) -> Fig5Result {
    let paper_permit = 250_000.0;
    let calibration = calibrate_permits(config);
    let permit = calibration.paper_kilo(250.0);
    let solo = solo_throughput(config, permit);
    let mut normalized_perf = Vec::new();
    let mut punishments = Vec::new();
    for dis in SpecApp::DISRUPTIVE_VMS {
        let outcome = corun_under_ks4xen(config, dis, permit, solo);
        normalized_perf.push((dis, outcome.normalized));
        punishments.push((dis, outcome.sen_punishments, outcome.dis_punishments));
    }
    let cpu_trace_xcs = trace_xcs(config, trace_ticks, permit);
    let (cpu_trace_ks4xen, quota_trace_ks4xen) = trace_ks4xen(config, trace_ticks, permit);
    Fig5Result {
        booked_llc_cap_paper: paper_permit,
        normalized_perf,
        punishments,
        cpu_trace_xcs,
        cpu_trace_ks4xen,
        quota_trace_ks4xen,
    }
}

/// Runs the full Fig. 5 campaign (70-tick traces, like the paper's plots).
pub fn run(config: &ExperimentConfig) -> Fig5Result {
    run_with_trace_ticks(config, 70)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 13,
            warmup_ticks: 3,
            measure_ticks: 9,
            parallel_engine: false,
        }
    }

    #[test]
    fn disruptors_get_punished_more_than_the_sensitive_vm() {
        let config = tiny_config();
        let permit = calibrate_permits(&config).paper_kilo(250.0);
        let solo = solo_throughput(&config, permit);
        let outcome = corun_under_ks4xen(&config, SpecApp::Lbm, permit, solo);
        assert!(
            outcome.dis_punishments >= outcome.sen_punishments,
            "lbm ({}) should be punished at least as much as gcc ({})",
            outcome.dis_punishments,
            outcome.sen_punishments
        );
        assert!(
            outcome.normalized > 0.5,
            "vsen1 should retain most of its performance"
        );
    }

    #[test]
    fn ks4xen_deprives_the_disruptor_of_cpu() {
        let config = tiny_config();
        let permit = calibrate_permits(&config).paper_kilo(250.0);
        let xcs = trace_xcs(&config, 12, permit);
        let (ks4, quota) = trace_ks4xen(&config, 12, permit);
        let xcs_share = xcs.mean();
        let ks4_share = ks4.mean();
        assert!(
            ks4_share < xcs_share,
            "KS4Xen must reduce the polluter's CPU share (XCS {xcs_share:.2} vs KS4Xen {ks4_share:.2})"
        );
        assert_eq!(quota.len(), 12);
    }

    #[test]
    fn table_rendering_mentions_every_disruptor() {
        let result = Fig5Result {
            booked_llc_cap_paper: 250_000.0,
            normalized_perf: vec![(SpecApp::Lbm, 0.98)],
            punishments: vec![(SpecApp::Lbm, 1, 20)],
            cpu_trace_xcs: TimeSeries::new("xcs"),
            cpu_trace_ks4xen: TimeSeries::new("ks4xen"),
            quota_trace_ks4xen: TimeSeries::new("quota"),
        };
        let table = result.to_table();
        assert!(table.contains("lbm"));
        assert!(table.contains("0.98"));
    }
}
