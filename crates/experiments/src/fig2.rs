//! Fig. 2 — Impact of LLC contention explained with LLC misses.
//!
//! The paper zooms in on the first six time slices of `v2rep` (the C2
//! pointer-chase VM, the most penalised type) and plots its LLC misses per
//! tick when running alone, in alternation with, in parallel with, and in
//! both modes with a disruptive VM.
//!
//! Expected shape: alone, misses only occur during the first slice (data
//! loading); alternation shows a zig-zag (the first tick of each slice
//! reloads the lines evicted by the disruptor during the previous slice);
//! parallel execution shows persistently high misses.

use crate::config::ExperimentConfig;
use crate::harness::{ExecutionMode, DISRUPTOR_CORE, SENSITIVE_CORE};
use kyoto_hypervisor::hypervisor::Hypervisor;
use kyoto_hypervisor::vm::{VcpuId, VmConfig};
use kyoto_hypervisor::xen_hypervisor;
use kyoto_metrics::series::TimeSeries;
use kyoto_workloads::category::Category;
use kyoto_workloads::micro::{disruptive, representative};
use serde::{Deserialize, Serialize};

/// The Fig. 2 dataset: one LLC-miss time series per execution mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Tick duration in milliseconds (the x axis unit).
    pub tick_ms: u64,
    /// One series per mode, in the order of [`Fig2Result::MODES`].
    pub series: Vec<TimeSeries>,
}

impl Fig2Result {
    /// The modes plotted, in order.
    pub const MODES: [ExecutionMode; 4] = [
        ExecutionMode::Alone,
        ExecutionMode::Alternative,
        ExecutionMode::Parallel,
        ExecutionMode::Combined,
    ];

    /// The series for a given mode.
    pub fn series_for(&self, mode: ExecutionMode) -> Option<&TimeSeries> {
        let index = Self::MODES.iter().position(|&m| m == mode)?;
        self.series.get(index)
    }

    /// Renders every series as gnuplot-style blocks.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Fig. 2: v2rep LLC misses per tick (1 tick = {} ms, 1 slice = 3 ticks)\n",
            self.tick_ms
        );
        for series in &self.series {
            out.push_str(&series.to_table());
            out.push('\n');
        }
        out
    }
}

fn trace_mode(config: &ExperimentConfig, mode: ExecutionMode, ticks: u64) -> TimeSeries {
    let machine = config.machine();
    let machine_config = machine.config().clone();
    let hv_config = config.hypervisor_config().with_history();
    let mut hv = xen_hypervisor(machine, hv_config);
    let rep_vm = hv
        .add_vm_with(
            VmConfig::new("v2rep").pinned_to(vec![SENSITIVE_CORE]),
            representative(Category::C2, &machine_config, config.seed),
        )
        .expect("valid VM");
    match mode {
        ExecutionMode::Alone => {}
        ExecutionMode::Alternative => {
            hv.add_vm_with(
                VmConfig::new("v2dis").pinned_to(vec![SENSITIVE_CORE]),
                Box::new(disruptive(Category::C2, &machine_config, config.seed + 1)),
            )
            .expect("valid VM");
        }
        ExecutionMode::Parallel => {
            hv.add_vm_with(
                VmConfig::new("v2dis").pinned_to(vec![DISRUPTOR_CORE]),
                Box::new(disruptive(Category::C2, &machine_config, config.seed + 1)),
            )
            .expect("valid VM");
        }
        ExecutionMode::Combined => {
            hv.add_vm_with(
                VmConfig::new("v2dis-alt").pinned_to(vec![SENSITIVE_CORE]),
                Box::new(disruptive(Category::C2, &machine_config, config.seed + 1)),
            )
            .expect("valid VM");
            hv.add_vm_with(
                VmConfig::new("v2dis-par").pinned_to(vec![DISRUPTOR_CORE]),
                Box::new(disruptive(Category::C2, &machine_config, config.seed + 2)),
            )
            .expect("valid VM");
        }
    }
    hv.run_ticks(ticks);
    collect_series(&hv, rep_vm, mode, config.hypervisor_config().tick_ms)
}

fn collect_series<S: kyoto_hypervisor::scheduler::Scheduler>(
    hv: &Hypervisor<S>,
    rep_vm: kyoto_hypervisor::vm::VmId,
    mode: ExecutionMode,
    tick_ms: u64,
) -> TimeSeries {
    let vcpu = VcpuId::new(rep_vm, 0);
    let mut series = TimeSeries::new(mode.label());
    for sample in hv.history_of(vcpu) {
        let time_ms = (sample.tick * tick_ms + tick_ms) as f64;
        series.push(time_ms, sample.pmc_delta.llc_misses as f64);
    }
    series
}

/// Runs the Fig. 2 trace campaign over the first `slices` time slices
/// (the paper plots six).
pub fn run_slices(config: &ExperimentConfig, slices: u64) -> Fig2Result {
    let hv_config = config.hypervisor_config();
    let ticks = slices * u64::from(hv_config.ticks_per_slice);
    let series = Fig2Result::MODES
        .iter()
        .map(|&mode| trace_mode(config, mode, ticks))
        .collect();
    Fig2Result {
        tick_ms: hv_config.tick_ms,
        series,
    }
}

/// Runs the Fig. 2 trace campaign with the paper's six slices.
pub fn run(config: &ExperimentConfig) -> Fig2Result {
    run_slices(config, 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 3,
            warmup_ticks: 0,
            measure_ticks: 0,
            parallel_engine: false,
        }
    }

    #[test]
    fn alone_traces_show_only_cold_misses() {
        let result = run_slices(&tiny_config(), 3);
        let alone = result.series_for(ExecutionMode::Alone).unwrap();
        assert!(!alone.is_empty());
        let values = alone.values();
        let first = values[0];
        let tail_max = values.iter().skip(3).fold(0.0_f64, |a, &b| a.max(b));
        assert!(
            first > tail_max * 2.0 || tail_max == 0.0,
            "after warm-up a lone v2rep should stop missing (first={first}, tail_max={tail_max})"
        );
    }

    #[test]
    fn parallel_traces_show_sustained_misses() {
        let result = run_slices(&tiny_config(), 3);
        let alone = result.series_for(ExecutionMode::Alone).unwrap();
        let parallel = result.series_for(ExecutionMode::Parallel).unwrap();
        // Compare steady-state (skip the loading slice).
        let steady = |s: &TimeSeries| {
            let v = s.values();
            v.iter().skip(3).sum::<f64>() / v.len().saturating_sub(3).max(1) as f64
        };
        assert!(
            steady(parallel) > steady(alone) * 2.0 + 1.0,
            "parallel contention must keep producing misses (alone={}, parallel={})",
            steady(alone),
            steady(parallel)
        );
    }

    #[test]
    fn all_four_modes_are_traced() {
        let result = run_slices(&tiny_config(), 1);
        assert_eq!(result.series.len(), 4);
        for mode in Fig2Result::MODES {
            assert!(result.series_for(mode).is_some());
        }
        assert!(result.to_table().contains("alone"));
    }
}
