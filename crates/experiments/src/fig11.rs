//! Fig. 11 — Socket dedication could be avoided when computing
//! `llc_cap_act`.
//!
//! The second attribution solution of Section 3.3 replays the VM's
//! instructions inside a micro-architectural simulator (McSimA+ in the
//! paper, the per-owner shadow LLC here) instead of dedicating the socket.
//! The figure compares, for the ten Fig. 4 applications, the Equation-1
//! value obtained with socket dedication against the one obtained without it
//! (simulator-based attribution while co-located) and finds them equivalent.

use crate::config::ExperimentConfig;
use crate::harness::{
    measurement_of, spec_workload, warmup_and_measure, DISRUPTOR_CORE, SENSITIVE_CORE,
};
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::{VcpuId, VmConfig};
use kyoto_hypervisor::xen_hypervisor;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// One pair of bars in Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig11Row {
    /// The application.
    pub app: SpecApp,
    /// Equation-1 value obtained with socket dedication (modelled by a solo
    /// run: the socket is entirely the VM's during sampling).
    pub with_dedication: f64,
    /// Equation-1 value obtained without dedication, from simulator-based
    /// attribution while co-located with a disruptor.
    pub without_dedication: f64,
}

impl Fig11Row {
    /// Relative difference (%) between the two measurements.
    pub fn relative_difference_percent(&self) -> f64 {
        if self.with_dedication.abs() < f64::EPSILON {
            0.0
        } else {
            (self.without_dedication - self.with_dedication).abs() / self.with_dedication * 100.0
        }
    }
}

/// The Fig. 11 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// One row per application.
    pub rows: Vec<Fig11Row>,
}

impl Fig11Result {
    /// The row of one application.
    pub fn row_of(&self, app: SpecApp) -> Option<&Fig11Row> {
        self.rows.iter().find(|r| r.app == app)
    }

    /// Renders the comparison.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "Fig. 11: equation-1 values with vs without socket dedication (misses/ms)\n  app        dedication   no dedication   diff%\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<9} {:11.1} {:15.1} {:7.1}\n",
                row.app.name(),
                row.with_dedication,
                row.without_dedication,
                row.relative_difference_percent()
            ));
        }
        out
    }
}

/// Ground truth: the application's Equation-1 value when the socket is
/// dedicated to it (a solo run).
fn dedicated_value(config: &ExperimentConfig, app: SpecApp) -> f64 {
    let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("measured").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "measured").llc_cap_act()
}

/// The application's Equation-1 value estimated by simulator attribution
/// while it shares the LLC with a disruptor.
fn simulator_value(config: &ExperimentConfig, app: SpecApp) -> f64 {
    let mut hv = ks4xen_hypervisor(
        config.machine(),
        config.hypervisor_config(),
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    let measured = hv
        .add_vm_with(
            VmConfig::new("measured").pinned_to(vec![SENSITIVE_CORE]),
            spec_workload(config, app, 1),
        )
        .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("disruptor").pinned_to(vec![DISRUPTOR_CORE]),
        spec_workload(config, SpecApp::Blockie, 2),
    )
    .expect("valid VM");
    hv.run_ticks(config.total_ticks());
    hv.scheduler()
        .measured_llc_cap(VcpuId::new(measured, 0))
        .unwrap_or(0.0)
}

/// Runs Fig. 11 restricted to `apps`.
pub fn run_with_apps(config: &ExperimentConfig, apps: &[SpecApp]) -> Fig11Result {
    let rows = apps
        .iter()
        .map(|&app| Fig11Row {
            app,
            with_dedication: dedicated_value(config, app),
            without_dedication: simulator_value(config, app),
        })
        .collect();
    Fig11Result { rows }
}

/// Runs Fig. 11 with the paper's ten applications.
pub fn run(config: &ExperimentConfig) -> Fig11Result {
    run_with_apps(config, &SpecApp::FIG4_APPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 31,
            warmup_ticks: 3,
            measure_ticks: 8,
            parallel_engine: false,
        }
    }

    #[test]
    fn simulator_attribution_tracks_the_dedicated_measurement() {
        let config = tiny_config();
        let result = run_with_apps(&config, &[SpecApp::Lbm, SpecApp::Hmmer]);
        let lbm = result.row_of(SpecApp::Lbm).unwrap();
        let hmmer = result.row_of(SpecApp::Hmmer).unwrap();
        // The heavy polluter must still look like a heavy polluter without
        // dedication, and the quiet VM must still look quiet.
        assert!(lbm.without_dedication > hmmer.without_dedication * 5.0);
        assert!(lbm.with_dedication > hmmer.with_dedication * 5.0);
        // And the simulator estimate should stay in the same ballpark as the
        // dedicated measurement for the polluter.
        assert!(
            lbm.relative_difference_percent() < 75.0,
            "simulator vs dedicated differ by {:.1}%",
            lbm.relative_difference_percent()
        );
        assert!(result.to_table().contains("lbm"));
    }
}
