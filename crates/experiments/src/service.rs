//! Service scenario: the fleet behind the control-plane front.
//!
//! Every other scenario drives the cluster directly; this one drives it
//! the way production traffic would — through `kyoto-service`'s
//! request/reply front. A deterministic [`RequestTrace`] (seeded `PlaceVm`
//! / `DepartVm` / `QueryTelemetry` streams plus one scripted drain/join
//! maintenance cycle) is replayed through the SLA-aware admission
//! controller over a sweep of **arrival rate × admission policy**, and
//! the per-epoch telemetry stream is what the table renders.
//!
//! The headline comparison: at high arrival rates the **contention-aware**
//! policy refuses (or queues) placements that would push a cell past its
//! pollution budget, holding mean per-cell pollution below the
//! **free-cores** baseline — the service turns the paper's polluters-pay
//! principle into an *admission* decision, not just a scheduling one.
//!
//! The scenario also exercises the restart story on its first sweep
//! point: replay to a mid-trace epoch, take a
//! [`ServiceCheckpoint`](kyoto_service::service::ServiceCheckpoint)
//! (PR 6's deep fleet checkpoint plus the service's queue, ledger and
//! telemetry), finish both the original and the restored copy, and
//! require **byte-identical** telemetry. A mismatch panics the scenario,
//! so the CI determinism gate doubles as a restart-correctness gate.
//!
//! Determinism: the trace is a pure function of `(seed, epoch)`, the
//! admission controller decides from snapshots only, and the telemetry
//! renderer pins field order and float precision — so the rendered output
//! is byte-identical across serial and `--parallel-engine` runs and
//! across `--jobs` fan-out, which `ci/check_determinism.sh` verifies.

use crate::config::ExperimentConfig;
use crate::fleet::{app_salt, FLEET_MIX};
use crate::harness::{calibrate_permits, run_jobs};
use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_service::admission::{AdmissionConfig, AdmissionPolicy};
use kyoto_service::request::{RequestTrace, RequestTraceConfig, ServiceRequest};
use kyoto_service::service::{FleetService, ServiceConfig};
use kyoto_sim::workload::Workload;
use serde::{Deserialize, Serialize};

/// An admission policy in calibration-relative units: the contention
/// limit is expressed as a multiple of the booked permit, and resolved to
/// an absolute [`AdmissionPolicy`] once the sweep is calibrated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Capacity-only admission (the baseline).
    FreeCores,
    /// Contention-gated admission: per-cell pollution budget of
    /// `permit_multiple × permit`.
    Contention {
        /// Budget as a multiple of the simulated permit.
        permit_multiple: f64,
    },
}

impl PolicySpec {
    /// Resolves the spec against the calibrated permit.
    pub fn resolve(&self, permit: f64) -> AdmissionPolicy {
        match *self {
            PolicySpec::FreeCores => AdmissionPolicy::FreeCores,
            PolicySpec::Contention { permit_multiple } => AdmissionPolicy::ContentionAware {
                limit: permit_multiple * permit,
            },
        }
    }

    /// Short label for tables (stable across calibration).
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::FreeCores => "free-cores".to_string(),
            PolicySpec::Contention { permit_multiple } => {
                format!("contention x{permit_multiple:.1}")
            }
        }
    }
}

/// The sweep a service run covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSweep {
    /// Cells (machines) behind the service.
    pub cells: usize,
    /// VMs seeded per cell before the trace starts.
    pub initial_vms_per_cell: usize,
    /// Expected `PlaceVm` requests per epoch — the sweep axis.
    pub place_rates: Vec<f64>,
    /// Expected `DepartVm` requests per epoch (fixed across the sweep).
    pub depart_rate: f64,
    /// Expected `QueryTelemetry` requests per epoch.
    pub query_rate: f64,
    /// Admission policies to compare at every rate.
    pub policies: Vec<PolicySpec>,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Trace length in epochs.
    pub epochs: u64,
    /// Scheduler ticks per epoch.
    pub epoch_ticks: u64,
    /// Epoch at which the last cell starts draining.
    pub drain_epoch: u64,
    /// Epoch at which it rejoins.
    pub join_epoch: u64,
    /// Mid-trace epoch at which the restart check checkpoints the first
    /// sweep point.
    pub restart_epoch: u64,
    /// Seed of the request trace.
    pub seed: u64,
    /// Paper-scale pollution permit (thousands) booked by every VM.
    pub permit_paper_kilo: f64,
}

impl ServiceSweep {
    /// The standard sweep: a 4-cell fleet seeded at 2 VMs per cell,
    /// arrival rates 0.5 / 1.5 / 3.0 against 0.5 departures, free-cores
    /// vs two contention budgets, ten 6-tick epochs with a drain/join
    /// cycle and a restart check at epoch 4.
    pub fn standard() -> Self {
        ServiceSweep {
            cells: 4,
            initial_vms_per_cell: 2,
            place_rates: vec![0.5, 1.5, 3.0],
            depart_rate: 0.5,
            query_rate: 0.25,
            policies: vec![
                PolicySpec::FreeCores,
                PolicySpec::Contention {
                    permit_multiple: 3.0,
                },
                PolicySpec::Contention {
                    permit_multiple: 1.5,
                },
            ],
            queue_capacity: 4,
            epochs: 10,
            epoch_ticks: 6,
            drain_epoch: 3,
            join_epoch: 6,
            restart_epoch: 4,
            seed: 0x5EC7,
            permit_paper_kilo: 250.0,
        }
    }

    /// A small sweep for tests and the CI determinism gate: 3 cells, two
    /// rates, free-cores vs one contention budget, six 4-tick epochs,
    /// restart check at epoch 2.
    pub fn small() -> Self {
        ServiceSweep {
            cells: 3,
            initial_vms_per_cell: 2,
            place_rates: vec![1.0, 2.5],
            depart_rate: 0.5,
            query_rate: 0.25,
            policies: vec![
                PolicySpec::FreeCores,
                PolicySpec::Contention {
                    permit_multiple: 1.5,
                },
            ],
            queue_capacity: 3,
            epochs: 6,
            epoch_ticks: 4,
            drain_epoch: 2,
            join_epoch: 4,
            restart_epoch: 2,
            seed: 0x5EC7,
            permit_paper_kilo: 250.0,
        }
    }

    /// The request trace one sweep point replays.
    fn trace(&self, place_rate: f64) -> RequestTrace {
        let drained = CellId(self.cells - 1);
        RequestTrace::new(
            RequestTraceConfig::new(self.seed, self.epochs)
                .with_place_rate(place_rate)
                .with_depart_rate(self.depart_rate)
                .with_query_rate(self.query_rate)
                .with_scripted(self.drain_epoch, ServiceRequest::DrainCell(drained))
                .with_scripted(self.join_epoch, ServiceRequest::JoinCell(drained)),
        )
    }
}

/// One service sweep point: an arrival rate and an admission policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServicePoint {
    /// Expected `PlaceVm` requests per epoch.
    pub place_rate: f64,
    /// The admission policy spec.
    pub policy: PolicySpec,
    /// Placement requests the trace issued.
    pub requested: u64,
    /// Placements admitted (immediately or from the queue).
    pub admitted: u64,
    /// Of `admitted`, how many waited in the queue first.
    pub admitted_from_queue: u64,
    /// Rejections: no open cell had a free core.
    pub rejected_saturated: u64,
    /// Rejections: every candidate cell over the contention budget.
    pub rejected_contention: u64,
    /// Admission-queue high-water mark.
    pub queue_peak: u64,
    /// Requests still queued when the trace ended.
    pub final_queue_len: u64,
    /// `DepartVm` requests that removed a VM.
    pub departures: u64,
    /// `QueryTelemetry` requests served.
    pub queries: u64,
    /// Planner moves over the run.
    pub migrations: u64,
    /// VMs resident when the trace ended.
    pub final_vms: u64,
    /// Mean per-cell pollution (misses per CPU-ms) over every epoch and
    /// open cell — the quantity the contention gate holds down.
    pub mean_cell_pollution: f64,
    /// Kyoto punishments summed over the fleet's lifetime.
    pub punishments: u64,
}

/// The service dataset: the sweep grid plus the telemetry stream of the
/// first point and the restart-check verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceResult {
    /// Cells behind the service.
    pub cells: usize,
    /// VMs seeded before the trace started.
    pub initial_vms: usize,
    /// Expected departures per epoch.
    pub depart_rate: f64,
    /// Epochs at which the last cell drained / rejoined.
    pub drain_join: (u64, u64),
    /// Paper-scale permit booked by every VM.
    pub permit_paper_kilo: f64,
    /// Epoch of the mid-trace restart check.
    pub restart_epoch: u64,
    /// Every sweep point: rate outer, policy inner.
    pub rows: Vec<ServicePoint>,
    /// Rendered telemetry stream of the first sweep point (the
    /// publish-subscribe record stream, verbatim).
    pub first_point_telemetry: String,
}

impl ServiceResult {
    /// The sweep point for a rate / policy, if present.
    pub fn row(&self, place_rate: f64, policy: PolicySpec) -> Option<&ServicePoint> {
        self.rows
            .iter()
            .find(|r| (r.place_rate - place_rate).abs() < 1e-12 && r.policy == policy)
    }

    /// Renders the sweep table plus the first point's telemetry stream.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Service: arrival-rate x admission-policy sweep ({} cells, {} initial VMs, {:.2} departures/epoch, drain@{} join@{}, {}k permits; restart check @ epoch {})\n",
            self.cells,
            self.initial_vms,
            self.depart_rate,
            self.drain_join.0,
            self.drain_join.1,
            self.permit_paper_kilo,
            self.restart_epoch,
        );
        for row in &self.rows {
            out.push_str(&format!(
                "  rate {:.2}  {:<16}  req {:>2} adm {:>2} (q:{:>2}) rej sat {:>2} cont {:>2}  queue peak {:>2} left {:>2}  dep {:>2} qry {:>2}  mig {:>2}  vms {:>2}  cell-poll {:8.3}/ms  punish {:>5}\n",
                row.place_rate,
                row.policy.label(),
                row.requested,
                row.admitted,
                row.admitted_from_queue,
                row.rejected_saturated,
                row.rejected_contention,
                row.queue_peak,
                row.final_queue_len,
                row.departures,
                row.queries,
                row.migrations,
                row.final_vms,
                row.mean_cell_pollution,
                row.punishments,
            ));
        }
        out.push_str("Telemetry stream of the first sweep point:\n");
        out.push_str(&self.first_point_telemetry);
        out
    }
}

/// Builds the cluster one sweep point wraps.
fn build_cluster(config: &ExperimentConfig, sweep: &ServiceSweep, permit: f64) -> Cluster {
    let cluster_config = ClusterConfig::new(sweep.cells, config.scale)
        .with_epoch_ticks(sweep.epoch_ticks)
        .with_policy(ConsolidationPolicy::PollutionAware)
        .with_parallel_cells(config.parallel_engine)
        .with_hypervisor(config.hypervisor_config())
        .with_strategy(MonitoringStrategy::SimulatorAttribution)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(4)
                .with_polluter_threshold(permit),
        );
    let mut cluster = Cluster::new(cluster_config);
    let initial = sweep.cells * sweep.initial_vms_per_cell;
    for i in 0..initial {
        let app = FLEET_MIX[i % FLEET_MIX.len()];
        cluster
            .add_vm(
                CellId(i / sweep.initial_vms_per_cell),
                VmConfig::new(format!("fvm{i}-{}", app.name())).with_llc_cap(permit),
                Box::new(config.workload(app, app_salt(i))),
            )
            .expect("seeding stays within cell capacity");
    }
    cluster
}

/// Builds the service for one sweep point.
fn build_service(
    config: &ExperimentConfig,
    sweep: &ServiceSweep,
    place_rate: f64,
    policy: PolicySpec,
    permit: f64,
) -> FleetService {
    FleetService::new(
        build_cluster(config, sweep, permit),
        sweep.trace(place_rate),
        ServiceConfig {
            admission: AdmissionConfig {
                policy: policy.resolve(permit),
                queue_capacity: sweep.queue_capacity,
            },
            checkpoint_every: None,
        },
    )
}

/// The spawn function every replay shares: trace arrivals continue the
/// seeded mix, keyed purely by arrival index.
fn spawn_fn(
    config: &ExperimentConfig,
    initial: usize,
    permit: f64,
) -> impl FnMut(u64) -> (VmConfig, Box<dyn Workload>) + '_ {
    move |index: u64| {
        let k = initial + index as usize;
        let app = FLEET_MIX[k % FLEET_MIX.len()];
        (
            VmConfig::new(format!("fvm{k}-{}", app.name())).with_llc_cap(permit),
            Box::new(config.workload(app, app_salt(k))) as Box<dyn Workload>,
        )
    }
}

/// Runs one sweep point: replay the trace to its end and fold the ledger
/// and telemetry into a [`ServicePoint`].
pub fn run_point(
    config: &ExperimentConfig,
    sweep: &ServiceSweep,
    place_rate: f64,
    policy: PolicySpec,
    permit: f64,
) -> ServicePoint {
    let initial = sweep.cells * sweep.initial_vms_per_cell;
    let mut service = build_service(config, sweep, place_rate, policy, permit);
    let mut spawn = spawn_fn(config, initial, permit);
    service
        .run_to_end(&mut spawn)
        .expect("service replay is fault-free");
    service
        .verify_conservation()
        .expect("placed/queued/rejected conservation holds");
    fold_point(place_rate, policy, &service)
}

fn fold_point(place_rate: f64, policy: PolicySpec, service: &FleetService) -> ServicePoint {
    let ledger = *service.ledger();
    let records = service.telemetry().records();
    let mut pollution_sum = 0.0f64;
    let mut pollution_cells = 0usize;
    let mut punishments = 0u64;
    for record in records {
        for cell in &record.cells {
            punishments += cell.punishments;
            if !cell.down {
                pollution_sum += cell.pollution_rate;
                pollution_cells += 1;
            }
        }
    }
    let last = records.last();
    ServicePoint {
        place_rate,
        policy,
        requested: ledger.requested,
        admitted: ledger.admitted,
        admitted_from_queue: ledger.admitted_from_queue,
        rejected_saturated: ledger.rejected_saturated,
        rejected_contention: ledger.rejected_contention,
        queue_peak: ledger.queue_peak,
        final_queue_len: ledger.queue_len,
        departures: ledger.departures_served,
        queries: ledger.queries,
        migrations: service.cluster().total_migrations(),
        final_vms: last.map(|record| record.vms).unwrap_or_default(),
        mean_cell_pollution: if pollution_cells == 0 {
            0.0
        } else {
            pollution_sum / pollution_cells as f64
        },
        punishments,
    }
}

/// Runs the restart check on one sweep point: replay to
/// [`ServiceSweep::restart_epoch`], checkpoint, finish both the original
/// and the restored copy, and demand byte-identical telemetry. Returns
/// the original's rendered telemetry stream.
///
/// # Panics
///
/// When the restored service's telemetry diverges — a broken restart
/// story is a correctness bug, and panicking here makes the CI
/// determinism gate catch it.
pub fn run_restart_check(
    config: &ExperimentConfig,
    sweep: &ServiceSweep,
    place_rate: f64,
    policy: PolicySpec,
    permit: f64,
) -> String {
    let initial = sweep.cells * sweep.initial_vms_per_cell;
    let mut original = build_service(config, sweep, place_rate, policy, permit);
    let mut spawn = spawn_fn(config, initial, permit);
    while original.epoch() < sweep.restart_epoch.min(sweep.epochs) {
        original
            .run_epoch(&mut spawn)
            .expect("service replay is fault-free");
    }
    let checkpoint = original.checkpoint().expect("fleet checkpoints cleanly");
    original
        .run_to_end(&mut spawn)
        .expect("service replay is fault-free");
    let mut restored = FleetService::restore(checkpoint);
    let mut spawn = spawn_fn(config, initial, permit);
    restored
        .run_to_end(&mut spawn)
        .expect("restored replay is fault-free");
    let expected = original.telemetry().render();
    let resumed = restored.telemetry().render();
    assert_eq!(
        expected, resumed,
        "restored service must republish byte-identical telemetry"
    );
    expected
}

/// Runs the full sweep described by `sweep`, with the independent sweep
/// points spread over up to `jobs` scoped worker threads (`jobs <= 1`
/// runs serially; the output is byte-identical either way).
pub fn run_with_sweep_jobs(
    config: &ExperimentConfig,
    sweep: &ServiceSweep,
    jobs: usize,
) -> ServiceResult {
    let permit = calibrate_permits(config).paper_kilo(sweep.permit_paper_kilo);
    let mut specs: Vec<(f64, PolicySpec)> = Vec::new();
    for &rate in &sweep.place_rates {
        for &policy in &sweep.policies {
            specs.push((rate, policy));
        }
    }
    let rows = run_jobs(specs.len(), jobs, |index| {
        let (rate, policy) = specs[index];
        run_point(config, sweep, rate, policy, permit)
    });
    let (first_rate, first_policy) = specs[0];
    let first_point_telemetry = run_restart_check(config, sweep, first_rate, first_policy, permit);
    ServiceResult {
        cells: sweep.cells,
        initial_vms: sweep.cells * sweep.initial_vms_per_cell,
        depart_rate: sweep.depart_rate,
        drain_join: (sweep.drain_epoch, sweep.join_epoch),
        permit_paper_kilo: sweep.permit_paper_kilo,
        restart_epoch: sweep.restart_epoch,
        rows,
        first_point_telemetry,
    }
}

/// Runs the full sweep on the calling thread.
pub fn run_with_sweep(config: &ExperimentConfig, sweep: &ServiceSweep) -> ServiceResult {
    run_with_sweep_jobs(config, sweep, 1)
}

/// Runs the standard service sweep.
pub fn run(config: &ExperimentConfig) -> ServiceResult {
    run_with_sweep(config, &ServiceSweep::standard())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 11,
            warmup_ticks: 2,
            measure_ticks: 5,
            parallel_engine: false,
        }
    }

    #[test]
    fn sweep_covers_every_point_and_renders() {
        let result = run_with_sweep(&tiny_config(), &ServiceSweep::small());
        assert_eq!(result.rows.len(), 4, "2 rates x 2 policies");
        let table = result.to_table();
        assert!(table.contains("free-cores"));
        assert!(table.contains("contention x1.5"));
        assert!(table.contains("Telemetry stream"));
        assert!(table.contains("epoch   0 v1"));
        for row in &result.rows {
            assert_eq!(
                row.requested,
                row.admitted
                    + row.rejected_saturated
                    + row.rejected_contention
                    + row.final_queue_len,
                "conservation in the rendered row: {row:?}"
            );
        }
    }

    #[test]
    fn contention_gate_bites_at_high_arrival_rates() {
        let sweep = ServiceSweep::small();
        let result = run_with_sweep(&tiny_config(), &sweep);
        let top_rate = sweep.place_rates[sweep.place_rates.len() - 1];
        let gated = result
            .row(
                top_rate,
                PolicySpec::Contention {
                    permit_multiple: 1.5,
                },
            )
            .expect("contention row");
        let open = result
            .row(top_rate, PolicySpec::FreeCores)
            .expect("free-cores row");
        assert!(
            gated.rejected_contention + gated.queue_peak > 0,
            "the contention gate must actually defer or refuse something: {gated:?}"
        );
        assert!(
            gated.admitted <= open.admitted,
            "gating can only reduce admissions"
        );
        assert!(
            gated.mean_cell_pollution <= open.mean_cell_pollution + 1e-9,
            "holding placements back must not raise mean cell pollution \
             (gated {:.3} vs open {:.3})",
            gated.mean_cell_pollution,
            open.mean_cell_pollution
        );
    }

    #[test]
    fn runs_are_deterministic_and_parallelism_changes_nothing() {
        let sweep = ServiceSweep::small();
        let serial = run_with_sweep(&tiny_config(), &sweep);
        let rerun = run_with_sweep(&tiny_config(), &sweep);
        assert_eq!(serial, rerun, "same config, same bytes");
        let parallel = run_with_sweep(&tiny_config().with_parallel_engine(true), &sweep);
        assert_eq!(serial, parallel, "cell-parallel epochs are bit-identical");
        let threaded = run_with_sweep_jobs(&tiny_config(), &sweep, 4);
        assert_eq!(serial, threaded, "sweep worker threads change no bytes");
        assert_eq!(serial.to_table(), parallel.to_table());
    }
}
