//! Fig. 9 — Migrating vCPUs could impact VMs which host memory-bound
//! applications.
//!
//! The socket-dedication monitor periodically migrates every vCPU except the
//! sampled one to the other socket of a NUMA machine (PowerEdge R420 in the
//! paper). Migrated vCPUs keep their memory on the original node, so every
//! LLC miss pays the remote-access penalty. The paper measures the resulting
//! overhead for eight SPEC applications and finds that memory-intensive
//! applications (milc, omnetpp, lbm, mcf) pay the most — up to ~12 %.

use crate::config::ExperimentConfig;
use crate::harness::{measurement_of, spec_workload, warmup_and_measure};
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::{MonitoringStrategy, SocketDedicationConfig};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_metrics::degradation::degradation_percent;
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};

/// One bar of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// The measured application.
    pub app: SpecApp,
    /// IPC degradation (%) caused by the periodic socket-dedication
    /// migrations, relative to running without them.
    pub degradation_percent: f64,
}

/// The Fig. 9 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// One row per application.
    pub rows: Vec<Fig9Row>,
}

impl Fig9Result {
    /// The degradation of one application.
    pub fn degradation_of(&self, app: SpecApp) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.app == app)
            .map(|r| r.degradation_percent)
    }

    /// Renders the bars.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("Fig. 9: perf. degradation (%) caused by socket-dedication migrations\n");
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<9} {:6.1}%\n",
                row.app.name(),
                row.degradation_percent
            ));
        }
        out
    }
}

/// The dedication schedule used for the overhead experiment: frequent
/// sampling windows so the migration cost is visible within short runs.
fn dedication_config() -> SocketDedicationConfig {
    SocketDedicationConfig {
        sampling_ticks: 3,
        interval_ticks: 3,
        skip_low_polluters: false,
        skip_when_neighbours_quiet: false,
        ..SocketDedicationConfig::default()
    }
}

fn run_app(config: &ExperimentConfig, app: SpecApp, with_dedication: bool) -> f64 {
    let strategy = if with_dedication {
        MonitoringStrategy::SocketDedication(dedication_config())
    } else {
        MonitoringStrategy::DirectPmc
    };
    let mut hv = ks4xen_hypervisor(config.numa_machine(), config.hypervisor_config(), strategy);
    // The measured application; its memory lives on node 0 (where it starts).
    hv.add_vm_with(
        VmConfig::new("measured").on_numa_node(kyoto_sim::topology::NumaNode(0)),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    // A second, quiet VM shares the machine: its sampling windows are what
    // forces the measured VM to migrate to the other socket.
    hv.add_vm_with(
        VmConfig::new("companion").on_numa_node(kyoto_sim::topology::NumaNode(0)),
        spec_workload(config, SpecApp::Hmmer, 2),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    measurement_of(&measurements, "measured").ipc()
}

/// Runs Fig. 9 restricted to `apps`.
pub fn run_with_apps(config: &ExperimentConfig, apps: &[SpecApp]) -> Fig9Result {
    let rows = apps
        .iter()
        .map(|&app| {
            let baseline = run_app(config, app, false);
            let dedicated = run_app(config, app, true);
            Fig9Row {
                app,
                degradation_percent: degradation_percent(baseline, dedicated),
            }
        })
        .collect();
    Fig9Result { rows }
}

/// Runs Fig. 9 with the paper's eight applications.
pub fn run(config: &ExperimentConfig) -> Fig9Result {
    run_with_apps(config, &SpecApp::FIG9_APPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 23,
            warmup_ticks: 3,
            measure_ticks: 9,
            // Fig. 9 runs the two-socket machine: exercise the hypervisor's
            // socket-parallel engine path in this test.
            parallel_engine: true,
        }
    }

    #[test]
    fn memory_bound_apps_pay_more_than_cpu_bound_apps() {
        let config = tiny_config();
        let result = run_with_apps(&config, &[SpecApp::Lbm, SpecApp::Bzip]);
        let lbm = result.degradation_of(SpecApp::Lbm).unwrap();
        let bzip = result.degradation_of(SpecApp::Bzip).unwrap();
        assert!(
            lbm > bzip,
            "lbm ({lbm:.1}%) should suffer more from remote memory than bzip ({bzip:.1}%)"
        );
        assert!(result.to_table().contains("lbm"));
        assert_eq!(result.degradation_of(SpecApp::Gcc), None);
    }
}
