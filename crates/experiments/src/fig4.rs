//! Fig. 4 — Equation 1 vs raw LLCM: which indicator ranks aggressiveness
//! better?
//!
//! Section 4.2 measures, for ten applications, (a) the *real* aggressiveness
//! of each application (the average degradation it inflicts on every other
//! application when co-run), (b) its raw LLC-miss indicator (misses per
//! instruction window) measured alone, and (c) its Equation-1 indicator
//! (misses per millisecond) measured alone. Kendall's tau against the real
//! aggressiveness ordering decides which indicator is the better `llc_cap`
//! estimator — the paper (and this reproduction) finds Equation 1 wins.

use crate::config::ExperimentConfig;
use crate::harness::{
    measurement_of, spec_workload, warmup_and_measure, Measurement, DISRUPTOR_CORE, SENSITIVE_CORE,
};
use kyoto_core::equation::{llcm_indicator, PAPER_SAMPLING_WINDOW_INSTRUCTIONS};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_metrics::degradation::degradation_percent;
use kyoto_metrics::kendall::{kendall_tau, rank_by_score};
use kyoto_workloads::spec::SpecApp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One row of Fig. 4 (one application).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// The application.
    pub app: SpecApp,
    /// Average degradation (%) it inflicts on the other applications.
    pub avg_aggressivity: f64,
    /// Raw-LLCM indicator measured alone (misses per 100M instructions).
    pub llcm: f64,
    /// Equation-1 indicator measured alone (misses per ms).
    pub equation1: f64,
}

/// The Fig. 4 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One row per application, in descending real-aggressiveness order.
    pub rows: Vec<Fig4Row>,
    /// Applications ordered by measured aggressiveness (the paper's `o1`).
    pub aggressiveness_order: Vec<SpecApp>,
    /// Applications ordered by raw LLCM (the paper's `o2`).
    pub llcm_order: Vec<SpecApp>,
    /// Applications ordered by Equation 1 (the paper's `o3`).
    pub equation1_order: Vec<SpecApp>,
    /// Kendall's tau between the LLCM order and the aggressiveness order.
    pub tau_llcm: f64,
    /// Kendall's tau between the Equation-1 order and the aggressiveness order.
    pub tau_equation1: f64,
}

impl Fig4Result {
    /// Whether Equation 1 ranks closer to reality than raw LLCM — the claim
    /// of Section 4.2.
    pub fn equation1_wins(&self) -> bool {
        self.tau_equation1 >= self.tau_llcm
    }

    /// Renders the dataset.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "Fig. 4: aggressiveness vs indicators (apps sorted by measured aggressiveness)\n  app        avg.aggr.%      LLCM   equation1\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<9} {:10.1} {:10.0} {:10.0}\n",
                row.app.name(),
                row.avg_aggressivity,
                row.llcm,
                row.equation1
            ));
        }
        out.push_str(&format!(
            "  Kendall tau vs aggressiveness: equation1 = {:.3}, LLCM = {:.3}\n",
            self.tau_equation1, self.tau_llcm
        ));
        out
    }
}

struct SoloProfile {
    ipc: f64,
    llcm: f64,
    equation1: f64,
}

fn solo_profile(config: &ExperimentConfig, app: SpecApp) -> SoloProfile {
    let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("solo").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, app, 1),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    let m = measurement_of(&measurements, "solo");
    SoloProfile {
        ipc: m.ipc(),
        llcm: llcm_indicator(
            m.pmc_delta.llc_misses,
            m.pmc_delta.instructions,
            PAPER_SAMPLING_WINDOW_INSTRUCTIONS,
        ),
        equation1: m.llc_cap_act(),
    }
}

fn corun(config: &ExperimentConfig, a: SpecApp, b: SpecApp) -> (Measurement, Measurement) {
    let mut hv = xen_hypervisor(config.machine(), config.hypervisor_config());
    hv.add_vm_with(
        VmConfig::new("a").pinned_to(vec![SENSITIVE_CORE]),
        spec_workload(config, a, 1),
    )
    .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("b").pinned_to(vec![DISRUPTOR_CORE]),
        spec_workload(config, b, 2),
    )
    .expect("valid VM");
    let measurements = warmup_and_measure(&mut hv, config);
    (
        measurement_of(&measurements, "a").clone(),
        measurement_of(&measurements, "b").clone(),
    )
}

/// Runs Fig. 4 restricted to `apps` (the paper uses
/// [`SpecApp::FIG4_APPS`]; tests use a subset to stay fast).
pub fn run_with_apps(config: &ExperimentConfig, apps: &[SpecApp]) -> Fig4Result {
    let solos: HashMap<SpecApp, SoloProfile> = apps
        .iter()
        .map(|&app| (app, solo_profile(config, app)))
        .collect();

    // Pairwise co-runs: app i on the sensitive core, app j on the disruptor
    // core; each run measures the degradation inflicted in both directions.
    let mut inflicted: HashMap<SpecApp, Vec<f64>> = HashMap::new();
    for i in 0..apps.len() {
        for j in (i + 1)..apps.len() {
            let (a, b) = (apps[i], apps[j]);
            let (ma, mb) = corun(config, a, b);
            let deg_of_a = degradation_percent(solos[&a].ipc, ma.ipc());
            let deg_of_b = degradation_percent(solos[&b].ipc, mb.ipc());
            // b inflicted deg_of_a on a, and vice versa.
            inflicted.entry(b).or_default().push(deg_of_a);
            inflicted.entry(a).or_default().push(deg_of_b);
        }
    }

    let mut rows: Vec<Fig4Row> = apps
        .iter()
        .map(|&app| {
            let caused = inflicted.get(&app).cloned().unwrap_or_default();
            let avg = if caused.is_empty() {
                0.0
            } else {
                caused.iter().sum::<f64>() / caused.len() as f64
            };
            Fig4Row {
                app,
                avg_aggressivity: avg,
                llcm: solos[&app].llcm,
                equation1: solos[&app].equation1,
            }
        })
        .collect();

    let aggressiveness_order = rank_by_score(
        &rows
            .iter()
            .map(|r| (r.app, r.avg_aggressivity))
            .collect::<Vec<_>>(),
    );
    let llcm_order = rank_by_score(&rows.iter().map(|r| (r.app, r.llcm)).collect::<Vec<_>>());
    let equation1_order = rank_by_score(
        &rows
            .iter()
            .map(|r| (r.app, r.equation1))
            .collect::<Vec<_>>(),
    );
    let tau_llcm = kendall_tau(&llcm_order, &aggressiveness_order);
    let tau_equation1 = kendall_tau(&equation1_order, &aggressiveness_order);

    rows.sort_by(|a, b| {
        b.avg_aggressivity
            .partial_cmp(&a.avg_aggressivity)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    Fig4Result {
        rows,
        aggressiveness_order,
        llcm_order,
        equation1_order,
        tau_llcm,
        tau_equation1,
    }
}

/// Runs the full Fig. 4 campaign with the paper's ten applications.
pub fn run(config: &ExperimentConfig) -> Fig4Result {
    run_with_apps(config, &SpecApp::FIG4_APPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 256,
            seed: 5,
            warmup_ticks: 2,
            measure_ticks: 5,
            parallel_engine: false,
        }
    }

    #[test]
    fn polluters_are_ranked_more_aggressive_than_cpu_bound_apps() {
        let config = tiny_config();
        let result = run_with_apps(&config, &[SpecApp::Lbm, SpecApp::Gcc, SpecApp::Bzip]);
        let lbm = result.rows.iter().find(|r| r.app == SpecApp::Lbm).unwrap();
        let bzip = result.rows.iter().find(|r| r.app == SpecApp::Bzip).unwrap();
        assert!(
            lbm.avg_aggressivity > bzip.avg_aggressivity,
            "lbm ({:.1}%) must be more aggressive than bzip ({:.1}%)",
            lbm.avg_aggressivity,
            bzip.avg_aggressivity
        );
        assert!(lbm.equation1 > bzip.equation1);
    }

    #[test]
    fn result_orders_contain_every_app() {
        let config = tiny_config();
        let apps = [SpecApp::Lbm, SpecApp::Gcc, SpecApp::Bzip];
        let result = run_with_apps(&config, &apps);
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.aggressiveness_order.len(), 3);
        assert_eq!(result.llcm_order.len(), 3);
        assert_eq!(result.equation1_order.len(), 3);
        assert!(result.to_table().contains("Kendall"));
        assert!(result.tau_equation1 >= -1.0 && result.tau_equation1 <= 1.0);
    }
}
