//! Property-based tests of the metric helpers.

use kyoto_metrics::degradation::{degradation_percent, normalized_performance};
use kyoto_metrics::kendall::{kendall_tau, rank_by_score};
use kyoto_metrics::stats::Summary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kendall's tau is bounded, symmetric in sign under reversal, and equal
    /// to one for identical orderings.
    #[test]
    fn kendall_tau_properties(perm in prop::collection::vec(0u32..50, 2..20)) {
        // Deduplicate to get a valid ordering.
        let mut order: Vec<u32> = perm.clone();
        order.sort_unstable();
        order.dedup();
        prop_assume!(order.len() >= 2);
        let tau_self = kendall_tau(&order, &order);
        prop_assert!((tau_self - 1.0).abs() < 1e-12);
        let reversed: Vec<u32> = order.iter().rev().copied().collect();
        let tau_rev = kendall_tau(&order, &reversed);
        prop_assert!((tau_rev + 1.0).abs() < 1e-12);
        let shuffled: Vec<u32> = order.iter().rev().chain(order.iter()).copied().collect();
        let tau_any = kendall_tau(&order, &shuffled);
        prop_assert!((-1.0..=1.0).contains(&tau_any));
    }

    /// Ranking by score puts higher scores strictly earlier.
    #[test]
    fn rank_by_score_is_descending(scores in prop::collection::vec(-1e6f64..1e6, 1..30)) {
        let items: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
        let ranked = rank_by_score(&items);
        prop_assert_eq!(ranked.len(), items.len());
        for pair in ranked.windows(2) {
            prop_assert!(scores[pair[0]] >= scores[pair[1]]);
        }
    }

    /// Degradation and normalised performance are consistent with each other:
    /// degradation% == (1 - normalised) * 100.
    #[test]
    fn degradation_and_normalisation_agree(solo in 0.001f64..1e9, colocated in 0.0f64..1e9) {
        let degradation = degradation_percent(solo, colocated);
        let normalised = normalized_performance(solo, colocated);
        prop_assert!((degradation - (1.0 - normalised) * 100.0).abs() < 1e-6);
    }

    /// Summary statistics: min <= mean <= max and stddev is never negative.
    #[test]
    fn summary_bounds(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let summary = Summary::of(&values);
        prop_assert_eq!(summary.count, values.len());
        prop_assert!(summary.min <= summary.mean + 1e-9);
        prop_assert!(summary.mean <= summary.max + 1e-9);
        prop_assert!(summary.stddev >= 0.0);
        prop_assert!(summary.range() >= 0.0);
    }
}
