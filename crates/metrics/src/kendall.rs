//! Kendall's tau rank correlation (Lapata 2006), used by Section 4.2 of the
//! paper to decide which pollution indicator (Equation 1 or raw LLCM) orders
//! applications closest to their measured aggressiveness.

use std::collections::HashMap;
use std::hash::Hash;

/// Kendall's tau-a between two orderings of the same items
/// (`+1` identical order, `-1` reversed order).
///
/// Items missing from either ordering are ignored; orderings with fewer than
/// two common items yield `0`.
pub fn kendall_tau<T: Eq + Hash + Clone>(order_a: &[T], order_b: &[T]) -> f64 {
    let pos_a: HashMap<&T, usize> = order_a.iter().enumerate().map(|(i, x)| (x, i)).collect();
    let pos_b: HashMap<&T, usize> = order_b.iter().enumerate().map(|(i, x)| (x, i)).collect();
    let common: Vec<&T> = order_a.iter().filter(|x| pos_b.contains_key(x)).collect();
    let n = common.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let a_cmp = pos_a[common[i]].cmp(&pos_a[common[j]]);
            let b_cmp = pos_b[common[i]].cmp(&pos_b[common[j]]);
            if a_cmp == b_cmp {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Sorts items by a score in descending order (highest score first), the way
/// the paper ranks applications by aggressiveness or indicator value.
/// Ties are broken by the original position for determinism.
pub fn rank_by_score<T: Clone>(items: &[(T, f64)]) -> Vec<T> {
    let mut indexed: Vec<(usize, &(T, f64))> = items.iter().enumerate().collect();
    indexed.sort_by(|(ia, (_, sa)), (ib, (_, sb))| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ia.cmp(ib))
    });
    indexed
        .into_iter()
        .map(|(_, (item, _))| item.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orders_have_tau_one() {
        let order = vec!["a", "b", "c", "d"];
        assert!((kendall_tau(&order, &order) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orders_have_tau_minus_one() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![5, 4, 3, 2, 1];
        assert!((kendall_tau(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_reduces_tau_slightly() {
        let a = vec!["a", "b", "c", "d"];
        let b = vec!["b", "a", "c", "d"];
        let tau = kendall_tau(&a, &b);
        // One discordant pair out of six: tau = (5 - 1) / 6.
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn paper_orderings_rank_equation_1_closer_than_llcm() {
        // The three orders reported in Section 4.2 (o1 = measured
        // aggressiveness, o2 = LLCM, o3 = Equation 1). The paper's claim is
        // tau(o3, o1) > tau(o2, o1); verify it holds for the published data.
        let o1 = vec![
            "blockie", "lbm", "mcf", "soplex", "milc", "omnetpp", "gcc", "xalan", "astar", "bzip",
        ];
        let o2 = vec![
            "milc", "lbm", "soplex", "mcf", "blockie", "gcc", "omnetpp", "xalan", "astar", "bzip",
        ];
        let o3 = vec![
            "lbm", "blockie", "milc", "mcf", "soplex", "gcc", "omnetpp", "xalan", "astar", "bzip",
        ];
        let tau_llcm = kendall_tau(&o2, &o1);
        let tau_eq1 = kendall_tau(&o3, &o1);
        assert!(
            tau_eq1 > tau_llcm,
            "Equation 1 ({tau_eq1:.3}) must order closer to reality than LLCM ({tau_llcm:.3})"
        );
    }

    #[test]
    fn missing_items_are_ignored() {
        let a = vec!["a", "b", "c"];
        let b = vec!["c", "b", "a", "z"];
        let tau = kendall_tau(&a, &b);
        assert!((tau + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        let empty: Vec<&str> = vec![];
        assert_eq!(kendall_tau(&empty, &empty), 0.0);
        assert_eq!(kendall_tau(&["a"], &["a"]), 0.0);
        assert_eq!(kendall_tau(&["a", "b"], &["c", "d"]), 0.0);
    }

    #[test]
    fn rank_by_score_sorts_descending_with_stable_ties() {
        let items = vec![("low", 1.0), ("high", 10.0), ("mid", 5.0), ("tie", 5.0)];
        let ranked = rank_by_score(&items);
        assert_eq!(ranked, vec!["high", "mid", "tie", "low"]);
    }

    #[test]
    fn rank_handles_nan_scores_without_panicking() {
        let items = vec![("a", f64::NAN), ("b", 1.0)];
        let ranked = rank_by_score(&items);
        assert_eq!(ranked.len(), 2);
    }
}
