//! # kyoto-metrics — metrics and statistics for the Kyoto reproduction
//!
//! The paper quantifies its results with a handful of metrics: instructions
//! per cycle (IPC) and cache misses per millisecond (Section 2.2.3),
//! percentage of performance degradation (Fig. 1, Fig. 3, Fig. 9),
//! normalised performance (Fig. 5, Fig. 6), and Kendall's tau to compare
//! aggressiveness orderings (Section 4.2 / Fig. 4). This crate implements
//! them plus the small time-series and summary-statistics helpers the
//! experiment harness uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degradation;
pub mod kendall;
pub mod series;
pub mod stats;

pub use degradation::{degradation_percent, normalized_performance};
pub use kendall::{kendall_tau, rank_by_score};
pub use series::TimeSeries;
pub use stats::Summary;
