//! Performance degradation and normalised performance.
//!
//! Throughout the paper a VM's "performance" is the execution time of a
//! fixed amount of work (SPEC runs), so in the simulation we use throughput
//! (instructions per unit of wall-clock time) as its inverse:
//!
//! * degradation % = `(solo - colocated) / solo * 100` on a throughput
//!   metric (Fig. 1, Fig. 3, Fig. 9);
//! * normalised performance = `colocated / solo` (Fig. 5, Fig. 6), where
//!   `1.0` means the co-located run is as fast as the solo run.

/// Percentage of performance degradation of `colocated` relative to `solo`,
/// both expressed as throughputs (higher is better).
///
/// Returns `0` when the solo throughput is not positive. A negative result
/// means the co-located run was *faster* (within noise).
pub fn degradation_percent(solo_throughput: f64, colocated_throughput: f64) -> f64 {
    if solo_throughput <= 0.0 {
        0.0
    } else {
        (solo_throughput - colocated_throughput) / solo_throughput * 100.0
    }
}

/// Normalised performance of `colocated` relative to `solo`
/// (`1.0` = identical, `0.5` = twice as slow).
///
/// Returns `0` when the solo throughput is not positive.
pub fn normalized_performance(solo_throughput: f64, colocated_throughput: f64) -> f64 {
    if solo_throughput <= 0.0 {
        0.0
    } else {
        colocated_throughput / solo_throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_degradation_when_equal() {
        assert_eq!(degradation_percent(100.0, 100.0), 0.0);
        assert_eq!(normalized_performance(100.0, 100.0), 1.0);
    }

    #[test]
    fn half_throughput_is_fifty_percent_degradation() {
        assert!((degradation_percent(200.0, 100.0) - 50.0).abs() < 1e-12);
        assert!((normalized_performance(200.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedups_are_negative_degradation() {
        assert!(degradation_percent(100.0, 110.0) < 0.0);
        assert!(normalized_performance(100.0, 110.0) > 1.0);
    }

    #[test]
    fn zero_baseline_is_handled() {
        assert_eq!(degradation_percent(0.0, 50.0), 0.0);
        assert_eq!(normalized_performance(0.0, 50.0), 0.0);
        assert_eq!(degradation_percent(-1.0, 50.0), 0.0);
    }
}
