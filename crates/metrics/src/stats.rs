//! Summary statistics (mean, standard deviation, min, max, coefficient of
//! variation) used to report performance predictability: the paper's whole
//! point is to shrink the variance of a sensitive VM's performance across
//! co-location scenarios.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`. Empty input yields an all-zero
    /// summary with `count == 0`.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            stddev: variance.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation (stddev / mean); `0` when the mean is zero.
    /// The paper's "performance predictability" improves as this shrinks.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Peak-to-peak spread (max - min).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.coefficient_of_variation() - 0.4).abs() < 1e-12);
        assert_eq!(s.range(), 7.0);
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn predictability_improves_when_variance_shrinks() {
        let unpredictable = Summary::of(&[1.0, 0.5, 0.9, 0.4]);
        let predictable = Summary::of(&[0.95, 0.97, 0.96, 0.98]);
        assert!(predictable.coefficient_of_variation() < unpredictable.coefficient_of_variation());
    }
}
