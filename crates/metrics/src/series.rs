//! Simple labelled time series, used by the trace figures (Fig. 2, Fig. 5).

use serde::{Deserialize, Serialize};

/// A `(time, value)` series with a label, e.g. "LLC misses per tick, alone".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    label: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, time: f64, value: f64) {
        self.points.push((time, value));
    }

    /// The recorded points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }

    /// Mean of the values (`0` for an empty series).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum value (`0` for an empty series).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Renders the series as a gnuplot-friendly two-column block.
    pub fn to_table(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for (t, v) in &self.points {
            out.push_str(&format!("{t:.3}\t{v:.3}\n"));
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        TimeSeries {
            label: String::from("series"),
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = TimeSeries::new("llcm");
        s.push(0.0, 10.0);
        s.push(1.0, 20.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.points()[1], (1.0, 20.0));
        assert_eq!(s.values(), vec![10.0, 20.0]);
        assert_eq!(s.label(), "llcm");
    }

    #[test]
    fn statistics() {
        let mut s = TimeSeries::new("x");
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        s.extend(vec![(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.max(), 6.0);
    }

    #[test]
    fn collect_and_table_rendering() {
        let s: TimeSeries = vec![(0.0, 1.0), (1.0, 2.0)].into_iter().collect();
        assert_eq!(s.len(), 2);
        let table = s.to_table();
        assert!(table.starts_with("# series\n"));
        assert!(table.contains("0.000\t1.000"));
        assert!(table.contains("1.000\t2.000"));
    }
}
