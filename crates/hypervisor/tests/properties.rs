//! Property-based tests of the scheduler substrates.

use kyoto_hypervisor::cfs::{CfsConfig, CfsScheduler};
use kyoto_hypervisor::credit::{CreditConfig, CreditScheduler};
use kyoto_hypervisor::placement::{place_vms, PlacementPolicy};
use kyoto_hypervisor::scheduler::{Scheduler, TickReport};
use kyoto_hypervisor::vm::{VcpuId, VmConfig, VmId};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig, NumaNode};
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::SpecApp;
use proptest::prelude::*;

fn report(consumed: u64) -> TickReport {
    TickReport {
        consumed_cycles: consumed,
        budget_cycles: 100_000,
        pmc_delta: PmcSet {
            instructions: consumed / 2,
            unhalted_core_cycles: consumed,
            ..PmcSet::default()
        },
        pollution_events: 0,
        shadow_llc_misses: None,
        tick_ms: 10,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The credit scheduler only ever picks one of the offered candidates,
    /// never a capped-out vCPU, and stays deterministic for a given history.
    #[test]
    fn credit_scheduler_picks_valid_runnable_candidates(
        vcpu_count in 1usize..6,
        caps in prop::collection::vec(prop::option::of(10u32..100), 6),
        schedule in prop::collection::vec((0usize..6, 1_000u64..200_000), 1..100),
    ) {
        let config = CreditConfig::new(2, 100_000, 3);
        let mut scheduler = CreditScheduler::new(config);
        let vcpus: Vec<VcpuId> = (0..vcpu_count)
            .map(|i| VcpuId::new(VmId(i as u16 + 1), 0))
            .collect();
        for (i, vcpu) in vcpus.iter().enumerate() {
            let mut vm_config = VmConfig::new(format!("vm{i}"));
            if let Some(cap) = caps[i] {
                vm_config = vm_config.with_cap_percent(cap);
            }
            scheduler.add_vcpu(*vcpu, &vm_config);
        }
        for (tick, &(who, consumed)) in schedule.iter().enumerate() {
            if let Some(chosen) = scheduler.pick_next(CoreId(0), &vcpus) {
                prop_assert!(vcpus.contains(&chosen));
                prop_assert!(!scheduler.is_capped_out(chosen), "picked a capped-out vCPU");
            }
            // Account arbitrary consumption against an arbitrary vCPU.
            let target = vcpus[who % vcpus.len()];
            scheduler.account(target, &report(consumed));
            scheduler.on_tick(tick as u64);
        }
    }

    /// Credit is conserved: after a refill no vCPU holds more than twice its
    /// fair share, and the scheduler always finds someone runnable when no
    /// cap is configured (work conservation).
    #[test]
    fn credit_scheduler_is_work_conserving_without_caps(
        vcpu_count in 1usize..5,
        burns in prop::collection::vec(1_000u64..1_000_000, 1..60),
    ) {
        let config = CreditConfig::new(4, 100_000, 3);
        let mut scheduler = CreditScheduler::new(config);
        let vcpus: Vec<VcpuId> = (0..vcpu_count)
            .map(|i| VcpuId::new(VmId(i as u16 + 1), 0))
            .collect();
        for (i, vcpu) in vcpus.iter().enumerate() {
            scheduler.add_vcpu(*vcpu, &VmConfig::new(format!("vm{i}")));
        }
        for (tick, &burn) in burns.iter().enumerate() {
            let chosen = scheduler.pick_next(CoreId(0), &vcpus);
            prop_assert!(chosen.is_some(), "an uncapped scheduler must always run someone");
            scheduler.account(chosen.unwrap(), &report(burn));
            scheduler.on_tick(tick as u64);
            for vcpu in &vcpus {
                let fair_share = config.capacity_per_slice() as i64;
                prop_assert!(scheduler.remaining_credit(*vcpu) <= fair_share * 2);
            }
        }
    }

    /// CFS fairness: with equal weights and a long alternating schedule, the
    /// vruntime spread between any two vCPUs stays within one tick's worth.
    #[test]
    fn cfs_keeps_equal_weight_tasks_close(rounds in 10usize..200) {
        let mut scheduler = CfsScheduler::new(CfsConfig::new(100_000, 3));
        let a = VcpuId::new(VmId(1), 0);
        let b = VcpuId::new(VmId(2), 0);
        scheduler.add_vcpu(a, &VmConfig::new("a"));
        scheduler.add_vcpu(b, &VmConfig::new("b"));
        for tick in 0..rounds {
            let chosen = scheduler.pick_next(CoreId(0), &[a, b]).unwrap();
            scheduler.account(chosen, &report(100_000));
            scheduler.on_tick(tick as u64);
        }
        let spread = scheduler.vruntime(a).abs_diff(scheduler.vruntime(b));
        // One tick of weight-1024-normalised runtime for weight 256 is 400_000.
        prop_assert!(spread <= 100_000 * 1024 / 256);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `take_vm` → `admit_vm` is a lossless round trip: the extraction
    /// report equals the pre-extraction report bit-for-bit, and the
    /// workloads resume the exact op stream they would have produced had
    /// they never been taken. This is the rollback primitive the fleet
    /// layer's migration-abort recovery relies on.
    #[test]
    fn take_admit_round_trip_preserves_report_and_workload_state(
        app in prop_oneof![
            Just(SpecApp::Gcc), Just(SpecApp::Lbm), Just(SpecApp::Omnetpp),
            Just(SpecApp::Mcf), Just(SpecApp::Soplex), Just(SpecApp::Blockie),
        ],
        seed in 0u64..1_000,
        ticks in 1u64..10,
    ) {
        const SCALE: u64 = 256;
        let build = || {
            kyoto_hypervisor::xen_hypervisor(
                Machine::new(MachineConfig::scaled_paper_machine(SCALE)),
                kyoto_hypervisor::hypervisor::HypervisorConfig::default(),
            )
        };
        let mut source = build();
        let vm = source
            .add_vm_with(
                VmConfig::new("mover").pinned_to(vec![CoreId(0)]),
                Box::new(kyoto_workloads::spec::SpecWorkload::new(app, SCALE, seed)),
            )
            .unwrap();
        source.run_ticks(ticks);

        let before = source.report(vm).unwrap();
        let taken = source.take_vm(vm).unwrap();
        prop_assert_eq!(&taken.report, &before, "extraction must not alter the report");

        // Snapshot the workloads' execution state, then push the pieces
        // through admit_vm → take_vm and compare the op streams.
        let mut snapshots: Vec<Box<dyn Workload>> = taken
            .workloads
            .iter()
            .map(|w| w.try_clone_box().expect("SPEC workloads are cloneable"))
            .collect();
        let mut dest = build();
        let new_id = dest.admit_vm(taken).unwrap();
        let mut retaken = dest.take_vm(new_id).unwrap();
        prop_assert_eq!(retaken.workloads.len(), snapshots.len());
        for (snapshot, survivor) in snapshots.iter_mut().zip(retaken.workloads.iter_mut()) {
            prop_assert_eq!(snapshot.name(), survivor.name());
            prop_assert_eq!(snapshot.working_set_bytes(), survivor.working_set_bytes());
            for _ in 0..2048 {
                prop_assert_eq!(snapshot.next_op(), survivor.next_op());
            }
        }
    }
}

fn arb_placement_policy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::RoundRobin),
        Just(PlacementPolicy::Packed),
        Just(PlacementPolicy::NumaAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement is deterministic (a pure function of policy, machine and
    /// working sets) and always valid: every core exists, every socket
    /// matches its core, and NUMA-aware placements pin memory to the VM's
    /// own socket.
    #[test]
    fn placement_is_deterministic_and_valid(
        policy in arb_placement_policy(),
        sockets in prop_oneof![Just(2usize), Just(4), Just(8)],
        working_sets in prop::collection::vec(1u64..(1 << 24), 1..48),
    ) {
        let machine = MachineConfig::cloud_machine(sockets);
        let a = place_vms(policy, &machine, &working_sets);
        let b = place_vms(policy, &machine, &working_sets);
        prop_assert_eq!(&a, &b, "same inputs must give identical placements");
        prop_assert_eq!(a.len(), working_sets.len());
        for p in &a {
            prop_assert!(p.core.0 < machine.num_cores());
            prop_assert_eq!(machine.socket_of_core(p.core), Some(p.socket));
            match policy {
                PlacementPolicy::NumaAware => {
                    prop_assert_eq!(p.numa_node, Some(NumaNode(p.socket.0)));
                }
                _ => prop_assert_eq!(p.numa_node, None),
            }
        }
    }

    /// Round-robin placement never lets two sockets' VM counts differ by
    /// more than one, and packed placement fills socket `s + 1` only after
    /// socket `s` has a VM on every core.
    #[test]
    fn placement_policies_shape_the_load(
        sockets in prop_oneof![Just(2usize), Just(4), Just(8)],
        vms in 1usize..48,
    ) {
        let machine = MachineConfig::cloud_machine(sockets);
        let working_sets = vec![4096u64; vms];
        let round_robin = place_vms(PlacementPolicy::RoundRobin, &machine, &working_sets);
        let mut counts = vec![0usize; sockets];
        for p in &round_robin {
            counts[p.socket.0] += 1;
        }
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        prop_assert!(spread <= 1, "round-robin keeps socket loads within one VM");

        let packed = place_vms(PlacementPolicy::Packed, &machine, &working_sets);
        let mut counts = vec![0usize; sockets];
        for p in &packed {
            counts[p.socket.0] += 1;
        }
        let per_socket = machine.cores_per_socket;
        for s in 1..sockets {
            if counts[s] > 0 {
                prop_assert!(
                    counts[s - 1] >= counts[s].min(per_socket)
                        || counts[s - 1] >= per_socket,
                    "packed never populates socket {} before filling socket {}",
                    s,
                    s - 1
                );
            }
        }
    }
}
