//! Property-based tests of the Ready/Running/Blocked vCPU lifecycle.
//!
//! A generated population of always-runnable and WFI-style interactive VMs
//! (with arbitrary wake sources) is driven tick by tick while a pure model
//! re-derives what each tick was allowed to do. The checked invariants:
//!
//! 1. every observed state change is a legal transition of the lifecycle
//!    state machine (`VcpuState::legal_transition`, collapsed to the
//!    between-tick states Ready/Blocked);
//! 2. **no lost wakeups** — a Blocked vCPU whose wake source fires is
//!    runnable afterwards (it either ran this very tick or sits Ready);
//! 3. **no spurious wakeups** — a Blocked vCPU whose wake source did not
//!    fire stays Blocked and is never scheduled;
//! 4. blocked vCPUs accrue **zero engine cycles**, and the blocked-tick
//!    accounting matches the model exactly;
//! 5. **work conservation** — every tick schedules
//!    `min(cores, runnable vCPUs)` vCPUs;
//! 6. serial and socket-parallel engines stay **bit-identical** under
//!    blocking, as do checkpoint/restore forks, and a migration round trip
//!    preserves Blocked states and pending wake times.

use kyoto_hypervisor::credit::CreditScheduler;
use kyoto_hypervisor::hypervisor::{Hypervisor, HypervisorConfig};
use kyoto_hypervisor::lifecycle::{VcpuState, WakeSource};
use kyoto_hypervisor::vm::{VcpuId, VmConfig, VmId};
use kyoto_hypervisor::xen_hypervisor;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
use kyoto_sim::workload::{ComputeOnly, Workload};
use kyoto_workloads::interactive::Interactive;
use kyoto_workloads::synthetic::Streaming;
use proptest::prelude::*;

const SCALE: u64 = 256;

fn machine() -> Machine {
    Machine::new(MachineConfig::scaled_paper_machine(SCALE))
}

fn xen(machine: Machine) -> Hypervisor<CreditScheduler> {
    xen_hypervisor(machine, HypervisorConfig::default().with_history())
}

/// Generated VM description: (workload kind, seed, wake kind, wake param).
/// Kind 0 never blocks; kinds 1-2 are interactive (compute / streaming
/// bursts). Wake kind 0 = no source, 1 = periodic timer, 2 = seeded
/// interrupts with rate `param/6`.
type VmSpec = (usize, u64, usize, u64);

fn build_workload(kind: usize, seed: u64) -> Box<dyn Workload> {
    match kind {
        0 => Box::new(ComputeOnly::new(1)),
        1 => Box::new(Interactive::new(ComputeOnly::new(1), 48)),
        _ => Box::new(Interactive::new(Streaming::new(1 << 14, seed), 32)),
    }
}

fn build_wake(kind: usize, param: u64, seed: u64) -> Option<WakeSource> {
    match kind {
        0 => None,
        1 => Some(WakeSource::new(seed).with_timer_period(param)),
        _ => Some(WakeSource::new(seed).with_interrupt_rate(param as f64 / 6.0)),
    }
}

fn add_vms(hv: &mut Hypervisor<CreditScheduler>, specs: &[VmSpec]) -> Vec<(VmId, Option<WakeSource>)> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(kind, seed, wake_kind, wake_param))| {
            let wake = build_wake(wake_kind, wake_param, seed ^ 0xA5A5);
            let mut config = VmConfig::new(format!("vm{i}"));
            if let Some(source) = wake.clone() {
                config = config.with_wake_source(source);
            }
            let vm = hv
                .add_vm_with(config, build_workload(kind, seed))
                .expect("valid VM");
            (vm, wake)
        })
        .collect()
}

/// Drives `ticks` ticks, re-deriving the lifecycle model each tick and
/// asserting invariants 1-5 against the implementation.
fn drive_and_check(
    hv: &mut Hypervisor<CreditScheduler>,
    vms: &[(VmId, Option<WakeSource>)],
    ticks: u64,
) {
    let cores = hv.engine().machine().num_cores() as usize;
    for _ in 0..ticks {
        let tick = hv.current_tick();
        let before: Vec<(VcpuState, u64, bool)> = vms
            .iter()
            .map(|&(vm, ref wake)| {
                let state = hv.vcpu_state(VcpuId::new(vm, 0)).unwrap();
                let clock = hv.wake_clock(vm).unwrap();
                let fires = wake.as_ref().is_some_and(|w| w.fires(clock, 0));
                (state, clock, fires)
            })
            .collect();
        let blocked_before: Vec<u64> = vms
            .iter()
            .map(|&(vm, _)| hv.report(vm).unwrap().ticks_blocked)
            .collect();

        hv.step_tick();

        let runnable = before
            .iter()
            .filter(|&&(state, _, fires)| state == VcpuState::Ready || fires)
            .count();
        let mut scheduled_count = 0usize;
        for (i, &(vm, _)) in vms.iter().enumerate() {
            let vcpu = VcpuId::new(vm, 0);
            let (prev, _, fires) = before[i];
            let next = hv.vcpu_state(vcpu).unwrap();
            let sample = hv
                .history()
                .iter()
                .find(|s| s.tick == tick && s.vcpu == vcpu)
                .expect("history records every vCPU every tick");
            scheduled_count += sample.scheduled as usize;

            // Between ticks only Ready and Blocked exist.
            assert_ne!(next, VcpuState::Running, "Running must not leak out of a tick");
            // 1. Transition legality, with Running inserted when scheduled.
            if sample.scheduled {
                let woke = prev == VcpuState::Blocked;
                assert!(
                    !woke || fires,
                    "vm{i}: a Blocked vCPU ran without its wake source firing"
                );
                assert!(
                    VcpuState::legal_transition(
                        if woke { VcpuState::Ready } else { prev },
                        VcpuState::Running
                    ) && VcpuState::legal_transition(VcpuState::Running, next),
                    "vm{i}: illegal scheduled transition {prev:?}->{next:?}"
                );
            } else {
                match prev {
                    VcpuState::Ready => assert_eq!(
                        next,
                        VcpuState::Ready,
                        "vm{i}: an unscheduled Ready vCPU cannot change state"
                    ),
                    VcpuState::Blocked if fires => assert_eq!(
                        next,
                        VcpuState::Ready,
                        "vm{i}: lost wakeup — the source fired but the vCPU stayed Blocked"
                    ),
                    VcpuState::Blocked => assert_eq!(
                        next,
                        VcpuState::Blocked,
                        "vm{i}: spurious wakeup without a wake event"
                    ),
                    VcpuState::Running => unreachable!(),
                }
            }
            // 4. Zero cycles while blocked + exact blocked accounting.
            if !sample.scheduled {
                assert_eq!(sample.consumed_cycles, 0);
            }
            let blocked_delta = hv.report(vm).unwrap().ticks_blocked - blocked_before[i];
            let model_blocked = (prev == VcpuState::Blocked && !fires) as u64;
            assert_eq!(
                blocked_delta, model_blocked,
                "vm{i}: blocked-tick accounting diverged from the model"
            );
        }
        // 5. Work conservation: no core idles while a runnable vCPU waits.
        assert_eq!(
            scheduled_count,
            runnable.min(cores),
            "tick {tick}: {runnable} runnable vCPUs on {cores} cores"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants 1-5 over arbitrary populations and wake configurations.
    #[test]
    fn lifecycle_invariants_hold_for_arbitrary_populations(
        specs in prop::collection::vec((0usize..3, 1u64..1000, 0usize..3, 1u64..6), 1..6),
        ticks in 1u64..25,
    ) {
        let mut hv = xen(machine());
        let vms = add_vms(&mut hv, &specs);
        drive_and_check(&mut hv, &vms, ticks);
    }

    /// Serial and socket-parallel engines are bit-identical under blocking:
    /// interactive and batch VMs pinned across both sockets of the NUMA
    /// machine produce byte-equal reports (blocked counters included).
    #[test]
    fn serial_and_parallel_engines_agree_under_blocking(
        seed in 1u64..500,
        period in 1u64..6,
        ticks in 1u64..15,
    ) {
        let run = |parallel: bool| {
            let numa = Machine::new(MachineConfig::scaled_paper_numa_machine(SCALE));
            let hconfig = HypervisorConfig::default().with_parallel_engine(parallel);
            let mut hv = xen_hypervisor(numa, hconfig);
            for (i, core) in [0usize, 1, 4, 5].iter().enumerate() {
                let interactive = i % 2 == 0;
                let mut config =
                    VmConfig::new(format!("vm{i}")).pinned_to(vec![CoreId(*core)]);
                let workload: Box<dyn Workload> = if interactive {
                    config = config.with_wake_source(
                        WakeSource::new(seed + i as u64).with_timer_period(period),
                    );
                    Box::new(Interactive::new(
                        Streaming::new(1 << 14, seed + i as u64),
                        32,
                    ))
                } else {
                    Box::new(Streaming::new(1 << 15, seed + i as u64))
                };
                hv.add_vm_with(config, workload).expect("valid VM");
            }
            hv.run_ticks(ticks);
            hv.reports()
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// A checkpoint taken mid-run (VMs asleep or awake) continues
    /// bit-identically: same reports and same lifecycle states.
    #[test]
    fn checkpoint_restore_is_bit_identical_under_blocking(
        specs in prop::collection::vec((0usize..3, 1u64..1000, 0usize..3, 1u64..6), 1..5),
        before in 1u64..12,
        after in 1u64..12,
    ) {
        let mut hv = xen(machine());
        let vms = add_vms(&mut hv, &specs);
        hv.run_ticks(before);
        let mut copy = hv.try_clone().expect("all lifecycle workloads clone");
        hv.run_ticks(after);
        copy.run_ticks(after);
        prop_assert_eq!(hv.reports(), copy.reports());
        for &(vm, _) in &vms {
            let vcpu = VcpuId::new(vm, 0);
            prop_assert_eq!(hv.vcpu_state(vcpu), copy.vcpu_state(vcpu));
            prop_assert_eq!(hv.wake_clock(vm), copy.wake_clock(vm));
        }
    }

    /// A migration round trip preserves the lifecycle exactly: a Blocked VM
    /// arrives Blocked, its wake clock continues, and from then on it is
    /// scheduled on exactly the same ticks as an unmigrated control.
    #[test]
    fn migration_preserves_blocked_state_and_pending_wakes(
        seed in 1u64..500,
        period in 2u64..6,
        before in 1u64..12,
        after in 1u64..14,
    ) {
        let build = || {
            let mut hv = xen(machine());
            let vm = hv
                .add_vm_with(
                    VmConfig::new("svc")
                        .with_wake_source(WakeSource::new(seed).with_timer_period(period)),
                    Box::new(Interactive::new(Streaming::new(1 << 14, seed), 32)),
                )
                .expect("valid VM");
            (hv, vm)
        };
        let (mut control, control_vm) = build();
        let (mut source, source_vm) = build();
        control.run_ticks(before);
        source.run_ticks(before);

        let taken = source.take_vm(source_vm).expect("resident VM");
        prop_assert_eq!(
            &taken.vcpu_states,
            &vec![control.vcpu_state(VcpuId::new(control_vm, 0)).unwrap()],
            "extraction must capture the control's state"
        );
        prop_assert_eq!(taken.wake_clock, before);
        let mut dest = xen(machine());
        let migrated_vm = dest.admit_vm(taken).expect("valid admission");
        prop_assert_eq!(
            dest.vcpu_state(VcpuId::new(migrated_vm, 0)),
            control.vcpu_state(VcpuId::new(control_vm, 0))
        );

        // Tick-by-tick from here the migrated VM wakes and runs in lockstep
        // with the control (cycles differ — its cache arrived cold — but
        // scheduling and lifecycle may not).
        for _ in 0..after {
            let c0 = control.report(control_vm).unwrap().ticks_scheduled;
            let d0 = dest.report(migrated_vm).unwrap().ticks_scheduled;
            control.step_tick();
            dest.step_tick();
            let c1 = control.report(control_vm).unwrap().ticks_scheduled;
            let d1 = dest.report(migrated_vm).unwrap().ticks_scheduled;
            prop_assert_eq!(
                c1 - c0,
                d1 - d0,
                "the migrated VM must run on the same ticks as the control"
            );
            prop_assert_eq!(
                dest.vcpu_state(VcpuId::new(migrated_vm, 0)),
                control.vcpu_state(VcpuId::new(control_vm, 0))
            );
        }
    }
}

/// Regression: the credit scheduler must not charge a Blocked vCPU. After
/// the service parks, its credit only ever moves up (slice refills) — one
/// burned credit would mean the engine ran a sleeping vCPU — it is never
/// capped out, and it keeps UNDER priority, while the busy VM visibly
/// burns credit.
#[test]
fn credit_accounting_freezes_while_a_vcpu_is_blocked() {
    use kyoto_hypervisor::scheduler::{Priority, Scheduler};
    let mut hv = xen(machine());
    let sleepy = hv
        .add_vm_with(
            VmConfig::new("sleepy"),
            Box::new(Interactive::new(ComputeOnly::new(1), 48)),
        )
        .unwrap();
    let busy = hv
        .add_vm_with(VmConfig::new("busy"), Box::new(ComputeOnly::new(1)))
        .unwrap();
    let (sleepy, busy) = (VcpuId::new(sleepy, 0), VcpuId::new(busy, 0));
    hv.step_tick(); // The burst runs, then the vCPU parks.
    assert_eq!(hv.vcpu_state(sleepy), Some(VcpuState::Blocked));
    let mut burned_while_blocked = false;
    let mut busy_ever_burned = false;
    let mut previous = hv.scheduler().remaining_credit(sleepy);
    let mut busy_previous = hv.scheduler().remaining_credit(busy);
    for _ in 0..24 {
        hv.step_tick();
        let credit = hv.scheduler().remaining_credit(sleepy);
        burned_while_blocked |= credit < previous;
        previous = credit;
        let busy_credit = hv.scheduler().remaining_credit(busy);
        busy_ever_burned |= busy_credit < busy_previous;
        busy_previous = busy_credit;
        assert!(!hv.scheduler().is_capped_out(sleepy));
        assert_eq!(hv.scheduler().priority(sleepy), Priority::Under);
    }
    assert!(!burned_while_blocked, "a sleeping vCPU must never burn credit");
    assert!(busy_ever_burned, "the busy vCPU does burn credit (sanity)");
}

/// Regression: CFS vruntime must not advance while a vCPU is Blocked. The
/// sleeping service's clock freezes at its park value — so it does not
/// accumulate an artificial head start or deficit — and it is never
/// throttled, while the busy VM's vruntime keeps climbing.
#[test]
fn cfs_vruntime_freezes_while_a_vcpu_is_blocked() {
    use kyoto_hypervisor::kvm_hypervisor;
    let mut hv = kvm_hypervisor(machine(), HypervisorConfig::default());
    let sleepy = hv
        .add_vm_with(
            VmConfig::new("sleepy"),
            Box::new(Interactive::new(ComputeOnly::new(1), 48)),
        )
        .unwrap();
    let busy = hv
        .add_vm_with(VmConfig::new("busy"), Box::new(ComputeOnly::new(1)))
        .unwrap();
    let (sleepy, busy) = (VcpuId::new(sleepy, 0), VcpuId::new(busy, 0));
    hv.step_tick(); // The burst runs, then the vCPU parks.
    assert_eq!(hv.vcpu_state(sleepy), Some(VcpuState::Blocked));
    let parked_at = hv.scheduler().vruntime(sleepy);
    let busy_start = hv.scheduler().vruntime(busy);
    for _ in 0..24 {
        hv.step_tick();
        assert_eq!(
            hv.scheduler().vruntime(sleepy),
            parked_at,
            "vruntime must not advance during a WFI"
        );
        assert!(!hv.scheduler().is_throttled(sleepy));
    }
    assert!(
        hv.scheduler().vruntime(busy) > busy_start,
        "the busy vCPU's vruntime does advance (sanity)"
    );
}
