//! The hypervisor run loop: binds VMs, a scheduler and the simulated machine.
//!
//! Time advances in fixed ticks (10 ms in Xen). Every tick the hypervisor
//! asks the scheduler to place runnable vCPUs on cores, runs the chosen
//! vCPUs for one tick on the simulated machine (which is where LLC
//! contention physically happens), then feeds the per-vCPU execution reports
//! back into the scheduler for accounting.

use crate::lifecycle::VcpuState;
use crate::scheduler::{Scheduler, TickReport};
use crate::vm::{VcpuId, VmConfig, VmId, VmReport};
use kyoto_sim::engine::{ExecSlot, SimEngine};
use kyoto_sim::pmc::{PmcSet, VirtualPmu};
use kyoto_sim::topology::{CoreId, Machine};
use kyoto_sim::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Errors raised by the hypervisor API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HypervisorError {
    /// `add_vm` was called with a number of workloads different from the
    /// configured vCPU count.
    WorkloadCountMismatch {
        /// Configured vCPUs.
        expected: usize,
        /// Provided workloads.
        provided: usize,
    },
    /// A VM configuration pins a vCPU to a core that does not exist.
    InvalidPinning {
        /// The offending core index.
        core: usize,
    },
    /// The referenced VM does not exist.
    UnknownVm {
        /// The VM id.
        vm: VmId,
    },
    /// A vCPU's workload does not support state cloning
    /// ([`Workload::try_clone_box`] returned `None`), so the hypervisor
    /// cannot be checkpointed.
    UncloneableWorkload {
        /// The vCPU whose workload refused to clone.
        vcpu: VcpuId,
    },
}

impl fmt::Display for HypervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypervisorError::WorkloadCountMismatch { expected, provided } => write!(
                f,
                "expected {expected} workloads (one per vCPU) but {provided} were provided"
            ),
            HypervisorError::InvalidPinning { core } => {
                write!(f, "vCPU pinned to non-existent core {core}")
            }
            HypervisorError::UnknownVm { vm } => write!(f, "unknown VM {vm}"),
            HypervisorError::UncloneableWorkload { vcpu } => {
                write!(f, "workload of vCPU {vcpu:?} does not support cloning")
            }
        }
    }
}

impl Error for HypervisorError {}

/// Timing configuration of the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HypervisorConfig {
    /// Tick duration in milliseconds (Xen: 10 ms).
    pub tick_ms: u64,
    /// Ticks per scheduler time slice (Xen: 3, i.e. a 30 ms slice).
    pub ticks_per_slice: u32,
    /// Record a per-vCPU, per-tick history (needed by the trace figures,
    /// Fig. 2 and Fig. 5; costs memory on long runs).
    pub record_history: bool,
    /// Execute each tick through [`SimEngine::run_slots_parallel`], running
    /// every socket's vCPUs on its own thread. Simulation results are
    /// bit-identical to the serial engine (the parallel path preserves the
    /// per-socket op order exactly); only wall-clock time changes, so this
    /// is purely a throughput switch for multi-socket scenarios.
    pub parallel_engine: bool,
}

impl Default for HypervisorConfig {
    fn default() -> Self {
        HypervisorConfig {
            tick_ms: 10,
            ticks_per_slice: 3,
            record_history: false,
            parallel_engine: false,
        }
    }
}

impl HypervisorConfig {
    /// Enables per-tick history recording.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Sets the tick duration in milliseconds.
    pub fn with_tick_ms(mut self, tick_ms: u64) -> Self {
        self.tick_ms = tick_ms.max(1);
        self
    }

    /// Enables or disables socket-parallel engine execution
    /// (see [`HypervisorConfig::parallel_engine`]).
    pub fn with_parallel_engine(mut self, parallel: bool) -> Self {
        self.parallel_engine = parallel;
        self
    }
}

/// The pieces [`Hypervisor::take_vm`] extracts for a live migration.
pub struct TakenVm {
    /// The VM's configuration (pinning and all — the control plane
    /// re-places it before re-adding).
    pub config: VmConfig,
    /// The per-vCPU workloads, execution state intact.
    pub workloads: Vec<Box<dyn Workload>>,
    /// The VM's final execution report on the source hypervisor.
    pub report: VmReport,
    /// Cache lines (all levels) the extraction invalidated at the source —
    /// the warm state the VM must rebuild wherever it lands.
    pub flushed_lines: u64,
    /// Per-vCPU lifecycle states at extraction time. Extraction happens
    /// between ticks, so each entry is Ready or Blocked — a Blocked vCPU
    /// stays Blocked across the migration and only wakes when the VM's wake
    /// source fires at the destination.
    pub vcpu_states: Vec<VcpuState>,
    /// The VM-local wake clock at extraction time. Unlike the report
    /// counters (which restart per residency), the wake clock travels with
    /// the VM so its wake-event stream continues bit-identically.
    pub wake_clock: u64,
}

impl TakenVm {
    /// Deep-copies the extracted VM, workload execution state included, or
    /// `None` when a workload does not support cloning
    /// (see [`Workload::try_clone_box`]). Used to checkpoint VMs that are
    /// in flight between hypervisors.
    pub fn try_clone(&self) -> Option<TakenVm> {
        let workloads = self
            .workloads
            .iter()
            .map(|w| w.try_clone_box())
            .collect::<Option<Vec<_>>>()?;
        Some(TakenVm {
            config: self.config.clone(),
            workloads,
            report: self.report.clone(),
            flushed_lines: self.flushed_lines,
            vcpu_states: self.vcpu_states.clone(),
            wake_clock: self.wake_clock,
        })
    }
}

/// One row of the per-tick execution history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickSample {
    /// Tick index (0-based).
    pub tick: u64,
    /// The vCPU this sample describes.
    pub vcpu: VcpuId,
    /// Whether the vCPU was scheduled during the tick.
    pub scheduled: bool,
    /// Cycles consumed during the tick (0 when not scheduled).
    pub consumed_cycles: u64,
    /// Counter delta of the tick (all-zero when not scheduled).
    pub pmc_delta: PmcSet,
}

struct VcpuRuntime {
    id: VcpuId,
    workload: Box<dyn Workload>,
    pmcs: PmcSet,
    cycles_run: u64,
    ticks_scheduled: u64,
    state: VcpuState,
    ticks_blocked: u64,
    blocked_cycles: u64,
}

impl VcpuRuntime {
    fn try_clone(&self) -> Result<VcpuRuntime, HypervisorError> {
        let workload = self
            .workload
            .try_clone_box()
            .ok_or(HypervisorError::UncloneableWorkload { vcpu: self.id })?;
        Ok(VcpuRuntime {
            id: self.id,
            workload,
            pmcs: self.pmcs,
            cycles_run: self.cycles_run,
            ticks_scheduled: self.ticks_scheduled,
            state: self.state,
            ticks_blocked: self.ticks_blocked,
            blocked_cycles: self.blocked_cycles,
        })
    }
}

struct VmRuntime {
    id: VmId,
    config: VmConfig,
    vcpus: Vec<VcpuRuntime>,
    ticks_elapsed: u64,
    /// VM-local tick counter the wake source is keyed on. Unlike
    /// `ticks_elapsed` it survives `take_vm`/`admit_vm`, so wake events keep
    /// their schedule across migrations.
    wake_clock: u64,
}

impl VmRuntime {
    fn try_clone(&self) -> Result<VmRuntime, HypervisorError> {
        Ok(VmRuntime {
            id: self.id,
            config: self.config.clone(),
            vcpus: self
                .vcpus
                .iter()
                .map(VcpuRuntime::try_clone)
                .collect::<Result<Vec<_>, _>>()?,
            ticks_elapsed: self.ticks_elapsed,
            wake_clock: self.wake_clock,
        })
    }
}

/// The hypervisor: VMs + a scheduler + the simulated machine.
pub struct Hypervisor<S: Scheduler> {
    engine: SimEngine,
    scheduler: S,
    config: HypervisorConfig,
    vms: Vec<VmRuntime>,
    next_vm_id: u16,
    tick: u64,
    pmu: VirtualPmu,
    history: Vec<TickSample>,
    /// Divides the per-tick cycle budget; 1 for a healthy machine. The fleet
    /// layer raises it to model a degraded (slowed-down) cell.
    budget_divisor: u64,
}

impl<S: Scheduler> fmt::Debug for Hypervisor<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypervisor")
            .field("scheduler", &self.scheduler.name())
            .field("vms", &self.vms.len())
            .field("tick", &self.tick)
            .finish()
    }
}

impl<S: Scheduler> Hypervisor<S> {
    /// Creates a hypervisor managing `machine` with `scheduler`.
    pub fn new(machine: Machine, scheduler: S, config: HypervisorConfig) -> Self {
        Hypervisor {
            engine: SimEngine::new(machine),
            scheduler,
            config,
            vms: Vec::new(),
            next_vm_id: 1,
            tick: 0,
            pmu: VirtualPmu::new(),
            history: Vec::new(),
            budget_divisor: 1,
        }
    }

    /// The hypervisor's timing configuration.
    pub fn config(&self) -> HypervisorConfig {
        self.config
    }

    /// Cycle budget of one tick on one core, for a healthy machine
    /// (divisor 1).
    pub fn cycles_per_tick(&self) -> u64 {
        self.engine.machine().config().freq_khz * self.config.tick_ms
    }

    /// The effective per-tick cycle budget after degradation: the nominal
    /// budget divided by [`Hypervisor::cycle_budget_divisor`], floored at
    /// one cycle so a degraded machine still makes progress.
    pub fn effective_cycles_per_tick(&self) -> u64 {
        (self.cycles_per_tick() / self.budget_divisor).max(1)
    }

    /// The current cycle-budget divisor (1 = healthy).
    pub fn cycle_budget_divisor(&self) -> u64 {
        self.budget_divisor
    }

    /// Degrades (or restores) the machine's per-tick cycle budget: every
    /// tick runs with `1/divisor` of the nominal cycles. Models a slowed-down
    /// host (thermal throttling, a failing disk stalling dom0, a noisy
    /// co-tenant outside the simulation). `divisor` is clamped to at least 1;
    /// pass 1 to restore full speed.
    pub fn set_cycle_budget_divisor(&mut self, divisor: u64) {
        self.budget_divisor = divisor.max(1);
    }

    /// The underlying simulation engine.
    pub fn engine(&self) -> &SimEngine {
        &self.engine
    }

    /// Mutable access to the underlying simulation engine (e.g. to enable
    /// shadow attribution before starting a run).
    pub fn engine_mut(&mut self) -> &mut SimEngine {
        &mut self.engine
    }

    /// The scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the scheduler (e.g. to reconfigure a Kyoto permit).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// The virtualised PMU (the perfctr-xen stand-in).
    pub fn pmu(&self) -> &VirtualPmu {
        &self.pmu
    }

    /// Elapsed ticks since construction.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Elapsed simulated milliseconds since construction.
    pub fn elapsed_ms(&self) -> u64 {
        self.tick * self.config.tick_ms
    }

    /// Recorded per-tick history (empty unless
    /// [`HypervisorConfig::record_history`] is set).
    pub fn history(&self) -> &[TickSample] {
        &self.history
    }

    /// Creates a VM with one workload per vCPU and registers its vCPUs with
    /// the scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`HypervisorError::WorkloadCountMismatch`] when the number of
    /// workloads differs from `config.vcpus`, and
    /// [`HypervisorError::InvalidPinning`] when a pinned core does not exist.
    pub fn add_vm(
        &mut self,
        config: VmConfig,
        workloads: Vec<Box<dyn Workload>>,
    ) -> Result<VmId, HypervisorError> {
        if workloads.len() != config.vcpus {
            return Err(HypervisorError::WorkloadCountMismatch {
                expected: config.vcpus,
                provided: workloads.len(),
            });
        }
        if let Some(pinning) = &config.pinning {
            let num_cores = self.engine.machine().num_cores();
            if let Some(core) = pinning.iter().find(|c| c.0 >= num_cores) {
                return Err(HypervisorError::InvalidPinning { core: core.0 });
            }
        }
        let vm_id = VmId(self.next_vm_id);
        self.next_vm_id += 1;
        // Pre-size per-owner cache counters so the simulation hot path never
        // grows them while this VM runs.
        self.engine.machine_mut().register_owner(vm_id.0);
        let mut vcpus = Vec::with_capacity(workloads.len());
        for (index, workload) in workloads.into_iter().enumerate() {
            let vcpu_id = VcpuId::new(vm_id, index as u32);
            self.scheduler.add_vcpu(vcpu_id, &config);
            self.pmu.register(vcpu_id.as_key());
            vcpus.push(VcpuRuntime {
                id: vcpu_id,
                workload,
                pmcs: PmcSet::default(),
                cycles_run: 0,
                ticks_scheduled: 0,
                state: VcpuState::Ready,
                ticks_blocked: 0,
                blocked_cycles: 0,
            });
        }
        self.vms.push(VmRuntime {
            id: vm_id,
            config,
            vcpus,
            ticks_elapsed: 0,
            wake_clock: 0,
        });
        Ok(vm_id)
    }

    /// Convenience wrapper for single-vCPU VMs (the common case in the
    /// paper's experiments).
    ///
    /// # Errors
    ///
    /// Same as [`Hypervisor::add_vm`].
    pub fn add_vm_with(
        &mut self,
        config: VmConfig,
        workload: Box<dyn Workload>,
    ) -> Result<VmId, HypervisorError> {
        self.add_vm(config.with_vcpus(1), vec![workload])
    }

    /// Destroys a VM: unregisters its vCPUs and flushes its cache lines.
    ///
    /// # Errors
    ///
    /// Returns [`HypervisorError::UnknownVm`] when the VM does not exist.
    pub fn remove_vm(&mut self, vm: VmId) -> Result<(), HypervisorError> {
        self.take_vm(vm).map(drop)
    }

    /// Removes a VM like [`Hypervisor::remove_vm`] but hands its pieces back
    /// instead of dropping them: the configuration, the per-vCPU workloads
    /// (with their execution state intact) and the final execution report.
    ///
    /// This is the extraction half of a live migration: a control plane
    /// re-adds the returned config and workloads to another hypervisor, where
    /// the VM arrives with a *cold* cache (its lines were flushed here and
    /// nothing travels with it), so the post-migration warm-up penalty
    /// emerges from the simulation itself.
    ///
    /// # Errors
    ///
    /// Returns [`HypervisorError::UnknownVm`] when the VM does not exist.
    pub fn take_vm(&mut self, vm: VmId) -> Result<TakenVm, HypervisorError> {
        let Some(pos) = self.vms.iter().position(|v| v.id == vm) else {
            return Err(HypervisorError::UnknownVm { vm });
        };
        let report = self.report(vm).expect("VM exists");
        let runtime = self.vms.remove(pos);
        let mut workloads = Vec::with_capacity(runtime.vcpus.len());
        let mut vcpu_states = Vec::with_capacity(runtime.vcpus.len());
        for vcpu in runtime.vcpus {
            self.scheduler.remove_vcpu(vcpu.id);
            self.pmu.unregister(vcpu.id.as_key());
            self.engine.clear_op_buffer(vcpu.id.as_key());
            vcpu_states.push(vcpu.state);
            workloads.push(vcpu.workload);
        }
        let flushed_lines = self.engine.machine_mut().flush_owner(vm.0);
        if let Some(shadow) = self.engine.shadow_mut() {
            shadow.remove_owner(vm.0)
        }
        Ok(TakenVm {
            config: runtime.config,
            workloads,
            report,
            flushed_lines,
            vcpu_states,
            wake_clock: runtime.wake_clock,
        })
    }

    /// Admits the pieces a [`Hypervisor::take_vm`] on another hypervisor
    /// extracted — the arrival half of a live migration, mirroring the
    /// extraction half. The workloads resume exactly where they stopped;
    /// nothing of the VM's cache footprint arrives with them, so the first
    /// post-admission ticks re-fetch the working set through a cold cache.
    /// The lifecycle payload is restored too: a vCPU that was Blocked at the
    /// source arrives Blocked here, and the VM's wake clock continues where
    /// it stopped, so pending wake events fire at the same VM-local tick
    /// they would have fired at without the migration.
    ///
    /// The source-side report and flushed-line count travel inside `taken`
    /// for the control plane's bookkeeping but play no role here.
    ///
    /// # Errors
    ///
    /// Same as [`Hypervisor::add_vm`] (the configuration's pinning must be
    /// valid on *this* machine — re-place before admitting when topologies
    /// differ).
    pub fn admit_vm(&mut self, taken: TakenVm) -> Result<VmId, HypervisorError> {
        let TakenVm {
            config,
            workloads,
            vcpu_states,
            wake_clock,
            ..
        } = taken;
        let vm_id = self.add_vm(config, workloads)?;
        let vm = self.vms.last_mut().expect("add_vm just pushed this VM");
        debug_assert_eq!(vm.id, vm_id);
        vm.wake_clock = wake_clock;
        for (vcpu, state) in vm.vcpus.iter_mut().zip(vcpu_states) {
            vcpu.state = state;
            if !state.is_runnable() {
                self.scheduler.set_runnable(vcpu.id, false);
            }
        }
        Ok(vm_id)
    }

    /// The ids of every VM currently managed, in creation order.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.iter().map(|v| v.id).collect()
    }

    /// Looks a VM up by its configured name.
    pub fn vm_by_name(&self, name: &str) -> Option<VmId> {
        self.vms
            .iter()
            .find(|v| v.config.name == name)
            .map(|v| v.id)
    }

    /// Runs the machine for `ticks` scheduler ticks.
    pub fn run_ticks(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step_tick();
        }
    }

    /// Runs the machine for `ms` simulated milliseconds (rounded down to
    /// whole ticks, at least one).
    pub fn run_ms(&mut self, ms: u64) {
        let ticks = (ms / self.config.tick_ms).max(1);
        self.run_ticks(ticks);
    }

    /// Executes a single scheduler tick.
    pub fn step_tick(&mut self) {
        let cycles_per_tick = self.effective_cycles_per_tick();
        let tick = self.tick;
        let tick_ms = self.config.tick_ms;
        let record_history = self.config.record_history;
        let parallel_engine = self.config.parallel_engine;

        // Phase 0: wake delivery. Blocked vCPUs whose VM's wake source fires
        // at the current VM-local wake clock become Ready *before* placement,
        // so a woken vCPU can be picked this very tick. Wake events are a
        // pure function of (source, wake clock, vCPU index) — see
        // [`crate::lifecycle::WakeSource`] — so this phase is deterministic
        // and independent of scheduling history.
        let wake_trace_on = self.engine.trace().is_enabled();
        let wake_ts = if wake_trace_on {
            self.engine.elapsed_cycles()
        } else {
            0
        };
        for vm in self.vms.iter_mut() {
            let Some(source) = vm.config.wake_source.as_ref() else {
                continue;
            };
            let wake_clock = vm.wake_clock;
            for vcpu in vm.vcpus.iter_mut() {
                if vcpu.state == VcpuState::Blocked
                    && source.fires(wake_clock, vcpu.id.index as usize)
                {
                    vcpu.state = VcpuState::Ready;
                    vcpu.workload.on_wake();
                    self.scheduler.set_runnable(vcpu.id, true);
                    if wake_trace_on {
                        self.engine.trace_mut().instant_with(
                            "hv",
                            "vm.wake",
                            wake_ts,
                            format!("vm={} vcpu={}", vcpu.id.vm.0, vcpu.id.index),
                        );
                    }
                }
            }
        }

        // Phase 1: placement. Ask the scheduler, core by core, which vCPU
        // runs next. A vCPU runs on at most one core per tick. Blocked
        // vCPUs are filtered out here: the scheduler only ever sees
        // runnable candidates.
        let cores: Vec<CoreId> = self.engine.machine().cores().collect();
        let mut placed: HashSet<VcpuId> = HashSet::new();
        let mut assignment: Vec<(CoreId, VcpuId)> = Vec::new();
        for &core in &cores {
            let candidates: Vec<VcpuId> = self
                .vms
                .iter()
                .flat_map(|vm| {
                    let config = &vm.config;
                    vm.vcpus.iter().filter_map(move |vcpu| {
                        let allowed = match config.pinned_core(vcpu.id.index) {
                            Some(pinned) => pinned == core,
                            None => true,
                        };
                        (allowed && vcpu.state.is_runnable()).then_some(vcpu.id)
                    })
                })
                .filter(|vcpu| !placed.contains(vcpu))
                .collect();
            if let Some(chosen) = self.scheduler.pick_next(core, &candidates) {
                placed.insert(chosen);
                assignment.push((core, chosen));
            }
        }

        // Phase 2: execution. Build one slot per placed vCPU and let the
        // engine interleave them over the shared machine.
        let Hypervisor {
            engine,
            scheduler,
            vms,
            pmu,
            history,
            ..
        } = self;

        // Scheduler decisions become trace instants on the `hv` track,
        // timestamped at the engine's simulated clock *before* the tick's
        // execution (the instant marks when the decision was made). One
        // branch when tracing is off.
        let trace_on = engine.trace().is_enabled();
        if trace_on {
            let ts = engine.elapsed_cycles();
            for (core, vcpu) in &assignment {
                engine.trace_mut().instant_with(
                    "hv",
                    "hv.pick",
                    ts,
                    format!("core={} vm={} vcpu={}", core.0, vcpu.vm.0, vcpu.index),
                );
            }
            engine
                .trace_mut()
                .counter_add("hv.picks", assignment.len() as u64);
        }

        let shadow_before: Vec<Option<u64>> = assignment
            .iter()
            .map(|(_, vcpu)| engine.shadow().map(|s| s.solo_misses(vcpu.vm.0)))
            .collect();

        let mut slots: Vec<ExecSlot<'_>> = Vec::with_capacity(assignment.len());
        let mut slot_vcpus: Vec<VcpuId> = Vec::with_capacity(assignment.len());
        for vm in vms.iter_mut() {
            let vm_id = vm.id;
            let numa_node = vm.config.numa_node;
            for vcpu in vm.vcpus.iter_mut() {
                if let Some((core, _)) = assignment.iter().find(|(_, v)| *v == vcpu.id) {
                    vcpu.state = VcpuState::Running;
                    let overrides = scheduler.overrides(vcpu.id);
                    // The vCPU key identifies the op stream across ticks so
                    // the engine's batched op buffers follow the vCPU even
                    // when it migrates between cores.
                    let mut slot = ExecSlot::new(*core, vm_id.0, vcpu.workload.as_mut())
                        .with_tag(vcpu.id.as_key())
                        .with_force_remote(overrides.force_remote);
                    if let Some(node) = numa_node {
                        slot = slot.with_data_node(node);
                    }
                    slot_vcpus.push(vcpu.id);
                    slots.push(slot);
                }
            }
        }
        let reports = if parallel_engine {
            engine.run_slots_parallel(&mut slots, cycles_per_tick)
        } else {
            engine.run_slots(&mut slots, cycles_per_tick)
        };
        drop(slots);

        // Phase 3: accounting.
        let mut scheduled_info: Vec<(VcpuId, TickReport)> = Vec::with_capacity(reports.len());
        for (i, vcpu_id) in slot_vcpus.iter().enumerate() {
            let report = &reports[i];
            let shadow_delta = match (
                shadow_before[assignment
                    .iter()
                    .position(|(_, v)| v == vcpu_id)
                    .unwrap_or(i)],
                engine.shadow(),
            ) {
                (Some(before), Some(shadow)) => {
                    Some(shadow.solo_misses(vcpu_id.vm.0).saturating_sub(before))
                }
                _ => None,
            };
            let tick_report = TickReport {
                consumed_cycles: report.consumed_cycles,
                budget_cycles: cycles_per_tick,
                pmc_delta: report.pmc_delta,
                pollution_events: report.pollution_events,
                shadow_llc_misses: shadow_delta,
                tick_ms,
            };
            scheduled_info.push((*vcpu_id, tick_report));
        }

        for (vcpu_id, tick_report) in &scheduled_info {
            let punishments_before = if trace_on {
                scheduler.punishments(*vcpu_id)
            } else {
                0
            };
            scheduler.account(*vcpu_id, tick_report);
            pmu.record_for(vcpu_id.as_key(), tick_report.pmc_delta);
            if trace_on {
                // Punishment decisions (Kyoto descheduling) surface as
                // instants with the per-tick delta of the scheduler's
                // cumulative punishment count.
                let delta = scheduler
                    .punishments(*vcpu_id)
                    .saturating_sub(punishments_before);
                if delta > 0 {
                    let ts = engine.elapsed_cycles();
                    engine.trace_mut().instant_with(
                        "hv",
                        "hv.punish",
                        ts,
                        format!("vm={} vcpu={} n={}", vcpu_id.vm.0, vcpu_id.index, delta),
                    );
                    engine.trace_mut().counter_add("hv.punishments", delta);
                }
            }
        }

        let end_ts = if trace_on { engine.elapsed_cycles() } else { 0 };
        for vm in vms.iter_mut() {
            vm.ticks_elapsed += 1;
            let mut vm_blocked_cycles = 0u64;
            for vcpu in vm.vcpus.iter_mut() {
                let scheduled = scheduled_info.iter().find(|(v, _)| *v == vcpu.id);
                if let Some((_, tick_report)) = scheduled {
                    vcpu.pmcs += tick_report.pmc_delta;
                    vcpu.cycles_run += tick_report.consumed_cycles;
                    vcpu.ticks_scheduled += 1;
                }
                if record_history {
                    history.push(TickSample {
                        tick,
                        vcpu: vcpu.id,
                        scheduled: scheduled.is_some(),
                        consumed_cycles: scheduled.map(|(_, r)| r.consumed_cycles).unwrap_or(0),
                        pmc_delta: scheduled.map(|(_, r)| r.pmc_delta).unwrap_or_default(),
                    });
                }
                // Lifecycle epilogue. A vCPU that ran this tick either
                // blocks (the workload executed a WFI) or is preempted back
                // to Ready — the tick boundary always ends its quantum. A
                // vCPU that stayed Blocked through the whole tick accrues
                // blocked time but is never charged cycles: the engine
                // never saw it.
                if vcpu.state == VcpuState::Running {
                    if vcpu.workload.wants_block() {
                        vcpu.state = VcpuState::Blocked;
                        scheduler.set_runnable(vcpu.id, false);
                        if trace_on {
                            engine.trace_mut().instant_with(
                                "hv",
                                "vm.block",
                                end_ts,
                                format!("vm={} vcpu={}", vcpu.id.vm.0, vcpu.id.index),
                            );
                        }
                    } else {
                        vcpu.state = VcpuState::Ready;
                    }
                } else if vcpu.state == VcpuState::Blocked {
                    vcpu.ticks_blocked += 1;
                    vcpu.blocked_cycles += cycles_per_tick;
                    vm_blocked_cycles += cycles_per_tick;
                }
            }
            if trace_on && vm_blocked_cycles > 0 {
                engine
                    .trace_mut()
                    .counter_add(&format!("vm{}.blocked_cycles", vm.id.0), vm_blocked_cycles);
            }
            vm.wake_clock += 1;
        }

        scheduler.on_tick(tick);
        self.tick += 1;
    }

    /// The current lifecycle state of a vCPU, or `None` for an unknown id.
    /// Between ticks this is always `Ready` or `Blocked` (`Running` only
    /// exists inside [`Hypervisor::step_tick`]).
    pub fn vcpu_state(&self, vcpu: VcpuId) -> Option<VcpuState> {
        self.vms
            .iter()
            .find(|v| v.id == vcpu.vm)?
            .vcpus
            .iter()
            .find(|v| v.id == vcpu)
            .map(|v| v.state)
    }

    /// The VM-local wake clock (ticks since the VM was first created,
    /// surviving migration), or `None` for an unknown VM.
    pub fn wake_clock(&self, vm: VmId) -> Option<u64> {
        self.vms.iter().find(|v| v.id == vm).map(|v| v.wake_clock)
    }

    /// The execution report of one VM.
    pub fn report(&self, vm: VmId) -> Option<VmReport> {
        let runtime = self.vms.iter().find(|v| v.id == vm)?;
        let mut pmcs = PmcSet::default();
        let mut cycles_run = 0;
        let mut ticks_scheduled = 0;
        let mut punishments = 0;
        let mut ticks_blocked = 0;
        let mut blocked_cycles = 0;
        for vcpu in &runtime.vcpus {
            pmcs += vcpu.pmcs;
            cycles_run += vcpu.cycles_run;
            ticks_scheduled += vcpu.ticks_scheduled;
            punishments += self.scheduler.punishments(vcpu.id);
            ticks_blocked += vcpu.ticks_blocked;
            blocked_cycles += vcpu.blocked_cycles;
        }
        Some(VmReport {
            vm,
            name: runtime.config.name.clone(),
            pmcs,
            cycles_run,
            ticks_scheduled,
            ticks_elapsed: runtime.ticks_elapsed,
            punishments,
            ticks_blocked,
            blocked_cycles,
        })
    }

    /// Execution reports of every VM, in creation order.
    pub fn reports(&self) -> Vec<VmReport> {
        self.vms
            .iter()
            .filter_map(|vm| self.report(vm.id))
            .collect()
    }

    /// The per-tick history restricted to one vCPU.
    pub fn history_of(&self, vcpu: VcpuId) -> Vec<TickSample> {
        self.history
            .iter()
            .copied()
            .filter(|sample| sample.vcpu == vcpu)
            .collect()
    }
}

impl<S: Scheduler + Clone> Hypervisor<S> {
    /// Deep-copies the hypervisor — machine state, scheduler, VMs and their
    /// workloads' execution progress. The copy continues bit-identically to
    /// the original, which is the foundation of fleet checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`HypervisorError::UncloneableWorkload`] when a resident
    /// workload does not implement [`Workload::try_clone_box`].
    pub fn try_clone(&self) -> Result<Hypervisor<S>, HypervisorError> {
        Ok(Hypervisor {
            engine: self.engine.clone(),
            scheduler: self.scheduler.clone(),
            config: self.config,
            vms: self
                .vms
                .iter()
                .map(VmRuntime::try_clone)
                .collect::<Result<Vec<_>, _>>()?,
            next_vm_id: self.next_vm_id,
            tick: self.tick,
            pmu: self.pmu.clone(),
            history: self.history.clone(),
            budget_divisor: self.budget_divisor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credit::{CreditConfig, CreditScheduler};
    use crate::pisces::PiscesScheduler;
    use kyoto_sim::topology::MachineConfig;
    use kyoto_sim::workload::ComputeOnly;
    use kyoto_workloads::spec::{SpecApp, SpecWorkload};
    use kyoto_workloads::synthetic::Streaming;

    const SCALE: u64 = 64;

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled_paper_machine(SCALE))
    }

    fn xen_hypervisor(machine: Machine) -> Hypervisor<CreditScheduler> {
        let hconfig = HypervisorConfig::default();
        let cycles_per_tick = machine.config().freq_khz * hconfig.tick_ms;
        let scheduler = CreditScheduler::new(CreditConfig::new(
            machine.num_cores(),
            cycles_per_tick,
            hconfig.ticks_per_slice,
        ));
        Hypervisor::new(machine, scheduler, hconfig)
    }

    #[test]
    fn add_vm_validates_workload_count_and_pinning() {
        let mut hv = xen_hypervisor(machine());
        let err = hv
            .add_vm(
                VmConfig::new("x").with_vcpus(2),
                vec![Box::new(ComputeOnly::new(1))],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            HypervisorError::WorkloadCountMismatch {
                expected: 2,
                provided: 1
            }
        ));
        let err = hv
            .add_vm_with(
                VmConfig::new("y").pinned_to(vec![CoreId(99)]),
                Box::new(ComputeOnly::new(1)),
            )
            .unwrap_err();
        assert!(matches!(err, HypervisorError::InvalidPinning { core: 99 }));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn vm_ids_are_unique_and_lookup_by_name_works() {
        let mut hv = xen_hypervisor(machine());
        let a = hv
            .add_vm_with(VmConfig::new("gcc"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        let b = hv
            .add_vm_with(VmConfig::new("lbm"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(hv.vm_by_name("gcc"), Some(a));
        assert_eq!(hv.vm_by_name("nope"), None);
        assert_eq!(hv.vm_ids(), vec![a, b]);
    }

    #[test]
    fn a_single_vm_gets_the_whole_machine() {
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(VmConfig::new("solo"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        hv.run_ticks(6);
        let report = hv.report(vm).unwrap();
        assert_eq!(report.ticks_elapsed, 6);
        assert_eq!(report.ticks_scheduled, 6, "a lone VM should run every tick");
        assert!((report.ipc() - 1.0).abs() < 1e-9);
        assert!(report.cycles_run >= 6 * hv.cycles_per_tick());
    }

    #[test]
    fn unknown_vm_report_is_none_and_remove_errors() {
        let mut hv = xen_hypervisor(machine());
        assert!(hv.report(VmId(42)).is_none());
        assert!(matches!(
            hv.remove_vm(VmId(42)),
            Err(HypervisorError::UnknownVm { .. })
        ));
    }

    #[test]
    fn pinned_vms_share_a_core_in_alternation() {
        let mut hv = xen_hypervisor(machine());
        let a = hv
            .add_vm_with(
                VmConfig::new("a").pinned_to(vec![CoreId(0)]),
                Box::new(ComputeOnly::new(1)),
            )
            .unwrap();
        let b = hv
            .add_vm_with(
                VmConfig::new("b").pinned_to(vec![CoreId(0)]),
                Box::new(ComputeOnly::new(1)),
            )
            .unwrap();
        hv.run_ticks(30);
        let ra = hv.report(a).unwrap();
        let rb = hv.report(b).unwrap();
        // Both share core 0: each runs roughly half of the ticks.
        assert_eq!(ra.ticks_scheduled + rb.ticks_scheduled, 30);
        assert!(
            ra.ticks_scheduled >= 12 && ra.ticks_scheduled <= 18,
            "{}",
            ra.ticks_scheduled
        );
        assert!(
            rb.ticks_scheduled >= 12 && rb.ticks_scheduled <= 18,
            "{}",
            rb.ticks_scheduled
        );
    }

    #[test]
    fn unpinned_vms_spread_across_cores() {
        let mut hv = xen_hypervisor(machine());
        let mut vms = Vec::new();
        for i in 0..4 {
            vms.push(
                hv.add_vm_with(
                    VmConfig::new(format!("vm{i}")),
                    Box::new(ComputeOnly::new(1)),
                )
                .unwrap(),
            );
        }
        hv.run_ticks(10);
        for vm in vms {
            let report = hv.report(vm).unwrap();
            assert_eq!(
                report.ticks_scheduled, 10,
                "4 VMs on 4 cores should all run every tick"
            );
        }
    }

    #[test]
    fn caps_limit_cpu_share() {
        let mut hv = xen_hypervisor(machine());
        let capped = hv
            .add_vm_with(
                VmConfig::new("capped").with_cap_percent(30),
                Box::new(ComputeOnly::new(1)),
            )
            .unwrap();
        hv.run_ticks(60);
        let report = hv.report(capped).unwrap();
        let share = report.cpu_share();
        assert!(
            share < 0.5,
            "a 30% cap must keep CPU share well below 1.0, got {share}"
        );
        assert!(
            share > 0.1,
            "the capped VM must still make progress, got {share}"
        );
    }

    #[test]
    fn history_records_every_vcpu_every_tick_when_enabled() {
        let m = machine();
        let hconfig = HypervisorConfig::default().with_history();
        let cycles_per_tick = m.config().freq_khz * hconfig.tick_ms;
        let scheduler = CreditScheduler::new(CreditConfig::new(
            m.num_cores(),
            cycles_per_tick,
            hconfig.ticks_per_slice,
        ));
        let mut hv = Hypervisor::new(m, scheduler, hconfig);
        let a = hv
            .add_vm_with(VmConfig::new("a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        hv.add_vm_with(VmConfig::new("b"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        hv.run_ticks(5);
        assert_eq!(hv.history().len(), 10, "2 vCPUs x 5 ticks");
        let a_history = hv.history_of(VcpuId::new(a, 0));
        assert_eq!(a_history.len(), 5);
        assert!(a_history.iter().all(|s| s.scheduled));
    }

    #[test]
    fn contention_emerges_between_parallel_vms() {
        // A gcc-like sensitive VM co-located with an lbm-like disruptor on
        // the same socket runs slower than alone: the core phenomenon of the
        // paper (Section 2.2), emerging from the shared LLC model.
        let solo_ipc = {
            let mut hv = xen_hypervisor(machine());
            let vm = hv
                .add_vm_with(
                    VmConfig::new("gcc").pinned_to(vec![CoreId(0)]),
                    Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, 1)),
                )
                .unwrap();
            hv.run_ticks(30);
            hv.report(vm).unwrap().ipc()
        };
        let contended_ipc = {
            let mut hv = xen_hypervisor(machine());
            let vm = hv
                .add_vm_with(
                    VmConfig::new("gcc").pinned_to(vec![CoreId(0)]),
                    Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, 1)),
                )
                .unwrap();
            hv.add_vm_with(
                VmConfig::new("lbm").pinned_to(vec![CoreId(1)]),
                Box::new(SpecWorkload::new(SpecApp::Lbm, SCALE, 2)),
            )
            .unwrap();
            hv.run_ticks(30);
            hv.report(vm).unwrap().ipc()
        };
        assert!(
            contended_ipc < solo_ipc * 0.95,
            "LLC contention should degrade the sensitive VM (solo {solo_ipc:.3}, contended {contended_ipc:.3})"
        );
    }

    #[test]
    fn remove_vm_releases_cache_and_scheduler_state() {
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(
                VmConfig::new("victim"),
                Box::new(Streaming::new(1 << 20, 1)),
            )
            .unwrap();
        hv.run_ticks(3);
        assert!(hv.report(vm).is_some());
        hv.remove_vm(vm).unwrap();
        assert!(hv.report(vm).is_none());
        assert_eq!(
            hv.engine()
                .machine()
                .llc_occupancy_of(kyoto_sim::topology::SocketId(0), vm.0),
            0
        );
    }

    #[test]
    fn take_vm_returns_config_workloads_and_report() {
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(
                VmConfig::new("mover").pinned_to(vec![CoreId(0)]),
                Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, 7)),
            )
            .unwrap();
        hv.run_ticks(5);
        let taken = hv.take_vm(vm).unwrap();
        assert_eq!(taken.config.name, "mover");
        assert_eq!(taken.workloads.len(), 1);
        assert_eq!(taken.report.ticks_elapsed, 5);
        assert!(taken.report.pmcs.instructions > 0);
        assert!(
            taken.flushed_lines > 0,
            "a VM that ran for 5 ticks has warm cache state to drop"
        );
        assert!(hv.report(vm).is_none());
        assert_eq!(
            hv.engine()
                .machine()
                .llc_occupancy_of(kyoto_sim::topology::SocketId(0), vm.0),
            0,
            "extraction flushes the source cache"
        );
        // The extracted pieces can be admitted to another hypervisor and the
        // workload keeps executing (its state travels; its cache does not).
        let mut dest = xen_hypervisor(machine());
        let new = dest.admit_vm(taken).unwrap();
        dest.run_ticks(3);
        let report = dest.report(new).unwrap();
        assert_eq!(report.name, "mover");
        assert!(report.pmcs.instructions > 0);
    }

    #[test]
    fn admit_vm_rejects_invalid_pinning_on_the_new_machine() {
        // A VM pinned to core 3 of the 4-core paper machine cannot be
        // admitted onto a smaller machine without re-placement.
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(
                VmConfig::new("pinned").pinned_to(vec![CoreId(3)]),
                Box::new(ComputeOnly::new(1)),
            )
            .unwrap();
        hv.run_ticks(2);
        let taken = hv.take_vm(vm).unwrap();
        let small = MachineConfig::scaled_paper_machine(SCALE).with_cores_per_socket(2);
        let mut dest = xen_hypervisor(Machine::new(small));
        assert!(matches!(
            dest.admit_vm(taken),
            Err(HypervisorError::InvalidPinning { core: 3 })
        ));
    }

    #[test]
    fn pisces_hypervisor_runs_enclaves_in_parallel() {
        let m = machine();
        let scheduler = PiscesScheduler::new(m.num_cores());
        let mut hv = Hypervisor::new(m, scheduler, HypervisorConfig::default());
        let a = hv
            .add_vm_with(VmConfig::new("hpc-a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        let b = hv
            .add_vm_with(VmConfig::new("hpc-b"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        hv.run_ticks(10);
        assert_eq!(hv.report(a).unwrap().ticks_scheduled, 10);
        assert_eq!(hv.report(b).unwrap().ticks_scheduled, 10);
    }

    #[test]
    fn parallel_engine_ticks_match_the_serial_engine() {
        // Same VMs on the two-socket machine, one hypervisor running the
        // serial engine and one the socket-parallel engine: every VM report
        // (PMCs included) must be identical, because the parallel path
        // preserves per-socket op order exactly.
        let run = |parallel: bool| {
            let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(SCALE));
            let hconfig = HypervisorConfig::default().with_parallel_engine(parallel);
            let cycles_per_tick = machine.config().freq_khz * hconfig.tick_ms;
            let scheduler = CreditScheduler::new(CreditConfig::new(
                machine.num_cores(),
                cycles_per_tick,
                hconfig.ticks_per_slice,
            ));
            let mut hv = Hypervisor::new(machine, scheduler, hconfig);
            hv.engine_mut().enable_shadow_attribution().unwrap();
            for (i, core) in [0usize, 1, 4, 5].iter().enumerate() {
                hv.add_vm_with(
                    VmConfig::new(format!("vm{i}")).pinned_to(vec![CoreId(*core)]),
                    Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, i as u64)),
                )
                .unwrap();
            }
            hv.run_ticks(8);
            let reports: Vec<VmReport> = hv.reports();
            let shadow: Vec<u64> = hv
                .vm_ids()
                .iter()
                .map(|vm| hv.engine().shadow().unwrap().solo_misses(vm.0))
                .collect();
            (reports, shadow)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn budget_divisor_degrades_and_restores_throughput() {
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(VmConfig::new("slowpoke"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        assert_eq!(hv.effective_cycles_per_tick(), hv.cycles_per_tick());
        hv.run_ticks(4);
        let healthy = hv.report(vm).unwrap().cycles_run;

        hv.set_cycle_budget_divisor(4);
        assert_eq!(hv.cycle_budget_divisor(), 4);
        assert_eq!(hv.effective_cycles_per_tick(), hv.cycles_per_tick() / 4);
        hv.run_ticks(4);
        let degraded = hv.report(vm).unwrap().cycles_run - healthy;
        assert!(
            degraded < healthy / 2,
            "a /4 budget must at least halve per-window cycles ({degraded} vs {healthy})"
        );

        hv.set_cycle_budget_divisor(0); // clamps to 1 — full speed again
        assert_eq!(hv.cycle_budget_divisor(), 1);
        hv.run_ticks(4);
        let restored = hv.report(vm).unwrap().cycles_run - healthy - degraded;
        assert!(restored >= healthy, "{restored} vs {healthy}");
    }

    #[test]
    fn try_clone_continues_bit_identically() {
        let mut hv = xen_hypervisor(machine());
        for (i, app) in [SpecApp::Gcc, SpecApp::Lbm].iter().enumerate() {
            hv.add_vm_with(
                VmConfig::new(format!("vm{i}")).pinned_to(vec![CoreId(i)]),
                Box::new(SpecWorkload::new(*app, SCALE, i as u64)),
            )
            .unwrap();
        }
        hv.run_ticks(5);
        let mut copy = hv.try_clone().unwrap();
        assert_eq!(copy.current_tick(), hv.current_tick());
        assert_eq!(copy.reports(), hv.reports());
        hv.run_ticks(7);
        copy.run_ticks(7);
        assert_eq!(
            copy.reports(),
            hv.reports(),
            "a clone must continue exactly like the original"
        );
        // Divergence after the fork stays confined to the copy.
        copy.run_ticks(1);
        assert_ne!(copy.reports(), hv.reports());
    }

    #[test]
    fn try_clone_refuses_uncloneable_workloads() {
        struct Opaque;
        impl Workload for Opaque {
            fn next_op(&mut self) -> kyoto_sim::workload::Op {
                kyoto_sim::workload::Op::Compute { cycles: 1 }
            }
            fn name(&self) -> &str {
                "opaque"
            }
            fn working_set_bytes(&self) -> u64 {
                0
            }
        }
        let mut hv = xen_hypervisor(machine());
        hv.add_vm_with(VmConfig::new("opaque"), Box::new(Opaque))
            .unwrap();
        assert!(matches!(
            hv.try_clone(),
            Err(HypervisorError::UncloneableWorkload { .. })
        ));
    }

    /// A WFI-style workload: emits `burst_ops` compute ops, then asks to
    /// block until woken (each wake grants a fresh burst). With bursts below
    /// the engine's fetch chunk the whole burst drains during the first
    /// scheduled tick, so the vCPU runs exactly one tick per wake.
    #[derive(Clone)]
    struct Wfi {
        burst_ops: u32,
        remaining: u32,
    }

    impl Wfi {
        fn new(burst_ops: u32) -> Self {
            Wfi {
                burst_ops,
                remaining: burst_ops,
            }
        }
    }

    impl Workload for Wfi {
        fn next_op(&mut self) -> kyoto_sim::workload::Op {
            self.remaining = self.remaining.saturating_sub(1);
            kyoto_sim::workload::Op::Compute { cycles: 1 }
        }
        fn name(&self) -> &str {
            "wfi"
        }
        fn working_set_bytes(&self) -> u64 {
            0
        }
        fn wants_block(&self) -> bool {
            self.remaining == 0
        }
        fn on_wake(&mut self) {
            self.remaining = self.burst_ops;
        }
        fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
            Some(Box::new(self.clone()))
        }
    }

    #[test]
    fn a_wfi_vm_without_wake_source_sleeps_forever() {
        use crate::lifecycle::VcpuState;
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(VmConfig::new("sleepy"), Box::new(Wfi::new(8)))
            .unwrap();
        hv.run_ticks(10);
        let report = hv.report(vm).unwrap();
        assert_eq!(hv.vcpu_state(VcpuId::new(vm, 0)), Some(VcpuState::Blocked));
        assert_eq!(report.ticks_scheduled, 1, "one burst, then WFI with no wakes");
        assert_eq!(report.ticks_blocked, 9);
        assert_eq!(report.ticks_elapsed, 10);
        assert!((report.blocked_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(
            report.blocked_cycles,
            9 * hv.cycles_per_tick(),
            "blocked ticks are tracked but never charged"
        );
        assert!(
            report.cycles_run <= hv.cycles_per_tick(),
            "a blocked vCPU accrues zero engine cycles"
        );
    }

    #[test]
    fn periodic_wakes_run_one_tick_per_period() {
        use crate::lifecycle::WakeSource;
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(
                VmConfig::new("interactive")
                    .with_wake_source(WakeSource::new(1).with_timer_period(4)),
                Box::new(Wfi::new(8)),
            )
            .unwrap();
        hv.run_ticks(16);
        let report = hv.report(vm).unwrap();
        // Runs at wake-clock 0 (initially Ready), then at every periodic
        // wake: ticks 4, 8 and 12.
        assert_eq!(report.ticks_scheduled, 4);
        assert_eq!(report.ticks_blocked, 12);
    }

    #[test]
    fn a_blocked_vcpu_frees_its_core_for_others() {
        use crate::lifecycle::WakeSource;
        let mut hv = xen_hypervisor(machine());
        let sleepy = hv
            .add_vm_with(
                VmConfig::new("sleepy")
                    .pinned_to(vec![CoreId(0)])
                    .with_wake_source(WakeSource::new(1).with_timer_period(5)),
                Box::new(Wfi::new(8)),
            )
            .unwrap();
        let busy = hv
            .add_vm_with(
                VmConfig::new("busy").pinned_to(vec![CoreId(0)]),
                Box::new(ComputeOnly::new(1)),
            )
            .unwrap();
        hv.run_ticks(20);
        let rs = hv.report(sleepy).unwrap();
        let rb = hv.report(busy).unwrap();
        assert_eq!(
            rs.ticks_scheduled + rb.ticks_scheduled,
            20,
            "core 0 never idles while a runnable vCPU exists"
        );
        assert!(rs.ticks_scheduled >= 1);
        assert!(
            rb.ticks_scheduled > 10,
            "the busy VM must get the core whenever its neighbour sleeps, got {}",
            rb.ticks_scheduled
        );
    }

    #[test]
    fn migration_preserves_blocked_state_and_wake_clock() {
        use crate::lifecycle::{VcpuState, WakeSource};
        let mut hv = xen_hypervisor(machine());
        let vm = hv
            .add_vm_with(
                VmConfig::new("mig").with_wake_source(WakeSource::new(2).with_timer(10)),
                Box::new(Wfi::new(8)),
            )
            .unwrap();
        hv.run_ticks(5); // runs tick 0, blocks, sleeps ticks 1..4
        let taken = hv.take_vm(vm).unwrap();
        assert_eq!(taken.vcpu_states, vec![VcpuState::Blocked]);
        assert_eq!(taken.wake_clock, 5);

        let mut dest = xen_hypervisor(machine());
        let new = dest.admit_vm(taken).unwrap();
        assert_eq!(dest.vcpu_state(VcpuId::new(new, 0)), Some(VcpuState::Blocked));
        assert_eq!(dest.wake_clock(new), Some(5));
        dest.run_ticks(5); // wake clock 5..9: the tick-10 timer is still pending
        assert_eq!(dest.vcpu_state(VcpuId::new(new, 0)), Some(VcpuState::Blocked));
        assert_eq!(dest.report(new).unwrap().ticks_scheduled, 0);
        dest.run_ticks(1); // wake clock 10: the timer fires at its original VM-local tick
        assert_eq!(dest.report(new).unwrap().ticks_scheduled, 1);
    }

    #[test]
    fn elapsed_time_advances_with_ticks() {
        let mut hv = xen_hypervisor(machine());
        hv.add_vm_with(VmConfig::new("a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        hv.run_ms(100);
        assert_eq!(hv.current_tick(), 10);
        assert_eq!(hv.elapsed_ms(), 100);
    }
}
