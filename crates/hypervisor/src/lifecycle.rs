//! The vCPU lifecycle: Ready/Running/Blocked states and deterministic wake
//! events.
//!
//! Every vCPU today starts Ready and stays runnable forever unless its
//! workload asks to block ([`kyoto_sim::workload::Workload::wants_block`],
//! WFI-style). A Blocked vCPU is invisible to the scheduler (the hypervisor
//! filters it out of `pick_next` candidate lists), occupies no engine slot
//! cycles, and wakes only when its VM's [`WakeSource`] fires — a seeded
//! interrupt stream plus scripted timers, evaluated on the VM's private
//! wake clock.
//!
//! # Determinism
//!
//! The wake stream is **stateless**: whether a wake event fires at VM-local
//! tick `t` for vCPU `i` is a pure function of `(seed, t, i)` — each tick
//! derives its own RNG via SplitMix64 golden-ratio mixing, the same
//! discipline as the cluster's `EventSchedule` and the service layer's
//! `RequestTrace`. No draw depends on how many draws other ticks made, on
//! scheduling order, or on how often the source is queried, so wake times
//! survive checkpoint/restore and migration bit-identically. The clock the
//! source is keyed on is the VM's *wake clock*, which travels with the VM
//! across `take_vm`/`admit_vm` (unlike `ticks_elapsed`, which restarts on
//! the destination so per-residency accounting stays local).

use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The scheduling state of a vCPU.
///
/// `Running` only exists inside a tick: the hypervisor moves picked vCPUs
/// Ready→Running for the tick's execution phase and back to Ready (timer
/// preemption — every tick ends the quantum) or on to Blocked (the workload
/// asked to sleep) before the tick closes. Between ticks a vCPU is
/// therefore always Ready or Blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcpuState {
    /// Runnable: visible to the scheduler, waiting for (or holding) a core.
    Ready,
    /// Executing on a core during the current tick.
    Running,
    /// Asleep (WFI): invisible to the scheduler, charged zero cycles, woken
    /// only by its VM's [`WakeSource`].
    Blocked,
}

impl VcpuState {
    /// Whether a vCPU in this state may appear in a `pick_next` candidate
    /// list.
    pub fn is_runnable(self) -> bool {
        matches!(self, VcpuState::Ready)
    }

    /// Whether `from → to` is a legal lifecycle transition (staying put is
    /// always legal). The legal moves are Ready→Running (picked),
    /// Running→Ready (timer preemption), Running→Blocked (WFI) and
    /// Blocked→Ready (wake event) — notably *not* Ready→Blocked (only a
    /// running workload can execute a block) or Blocked→Running (a woken
    /// vCPU must pass through the scheduler). The lifecycle property
    /// harness checks every observed transition against this table.
    pub fn legal_transition(from: VcpuState, to: VcpuState) -> bool {
        use VcpuState::*;
        matches!(
            (from, to),
            (Ready, Ready)
                | (Ready, Running)
                | (Running, Ready)
                | (Running, Running)
                | (Running, Blocked)
                | (Blocked, Blocked)
                | (Blocked, Ready)
        )
    }
}

/// SplitMix64 golden-ratio increment, the per-tick seed mixer shared with
/// the cluster's event/fault schedules.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic wake-event source for one VM's vCPUs: a seeded
/// interrupt stream (expected `interrupt_rate` wakes per tick, fractional
/// rates realised probabilistically but deterministically per tick) plus
/// scripted one-shot timers and an optional periodic timer.
///
/// Attached to a VM via
/// [`VmConfig::with_wake_source`](crate::vm::VmConfig::with_wake_source),
/// it travels with the VM's configuration through migration, checkpointing
/// and the whole cluster control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WakeSource {
    /// Seed of the interrupt stream.
    pub seed: u64,
    /// Probability (clamped to `[0, 1]`) that a wake interrupt arrives for
    /// a given vCPU in a given tick.
    pub interrupt_rate: f64,
    /// Scripted one-shot timer ticks (VM-local wake clock): a wake fires
    /// for every vCPU at exactly these ticks.
    pub timers: Vec<u64>,
    /// Periodic timer: a wake fires every `period` ticks (`0` disables it).
    pub timer_period: u64,
}

impl WakeSource {
    /// A source with the given interrupt seed and no events configured.
    pub fn new(seed: u64) -> Self {
        WakeSource {
            seed,
            interrupt_rate: 0.0,
            timers: Vec::new(),
            timer_period: 0,
        }
    }

    /// Sets the per-tick wake-interrupt probability (clamped to `[0, 1]`).
    pub fn with_interrupt_rate(mut self, rate: f64) -> Self {
        self.interrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Scripts a one-shot timer wake at the given VM-local tick.
    pub fn with_timer(mut self, tick: u64) -> Self {
        self.timers.push(tick);
        self
    }

    /// Sets a periodic timer: a wake every `period` ticks (0 disables).
    pub fn with_timer_period(mut self, period: u64) -> Self {
        self.timer_period = period;
        self
    }

    /// Whether a wake event fires for `vcpu_index` at VM-local tick
    /// `wake_clock`. Pure: the answer depends only on
    /// `(config, wake_clock, vcpu_index)`, never on query order or history.
    pub fn fires(&self, wake_clock: u64, vcpu_index: usize) -> bool {
        if self.timers.contains(&wake_clock) {
            return true;
        }
        if self.timer_period > 0 && wake_clock > 0 && wake_clock.is_multiple_of(self.timer_period) {
            return true;
        }
        if self.interrupt_rate <= 0.0 {
            return false;
        }
        if self.interrupt_rate >= 1.0 {
            return true;
        }
        // Per-tick RNG (golden-ratio mixing), advanced past the draws of
        // lower vCPU indices so sibling vCPUs wake independently.
        let mut rng = SmallRng::seed_from_u64(self.seed ^ wake_clock.wrapping_mul(GOLDEN));
        for _ in 0..vcpu_index {
            rng.next_u64();
        }
        rng.gen_bool(self.interrupt_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_table_matches_the_state_diagram() {
        use VcpuState::*;
        assert!(Ready.is_runnable());
        assert!(!Running.is_runnable());
        assert!(!Blocked.is_runnable());
        for (from, to, legal) in [
            (Ready, Running, true),
            (Running, Ready, true),
            (Running, Blocked, true),
            (Blocked, Ready, true),
            (Ready, Blocked, false),
            (Blocked, Running, false),
        ] {
            assert_eq!(VcpuState::legal_transition(from, to), legal, "{from:?}→{to:?}");
        }
        for state in [Ready, Running, Blocked] {
            assert!(VcpuState::legal_transition(state, state));
        }
    }

    #[test]
    fn wake_streams_are_pure_per_tick() {
        let source = WakeSource::new(7).with_interrupt_rate(0.4);
        for tick in 0..64 {
            for vcpu in 0..4 {
                assert_eq!(
                    source.fires(tick, vcpu),
                    source.fires(tick, vcpu),
                    "tick {tick} vcpu {vcpu} must be pure"
                );
            }
        }
    }

    #[test]
    fn ticks_are_independent_of_query_order() {
        let source = WakeSource::new(99).with_interrupt_rate(0.3);
        let forward: Vec<bool> = (0..64).map(|t| source.fires(t, 0)).collect();
        let backward: Vec<bool> = (0..64).rev().map(|t| source.fires(t, 0)).collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn sibling_vcpus_draw_independent_interrupts() {
        let source = WakeSource::new(3).with_interrupt_rate(0.5);
        let a: Vec<bool> = (0..256).map(|t| source.fires(t, 0)).collect();
        let b: Vec<bool> = (0..256).map(|t| source.fires(t, 1)).collect();
        assert_ne!(a, b, "vCPU 0 and 1 must not share one interrupt stream");
    }

    #[test]
    fn interrupt_rates_average_out() {
        let source = WakeSource::new(11).with_interrupt_rate(0.25);
        let fired = (0..4000).filter(|&t| source.fires(t, 0)).count();
        let rate = fired as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn extreme_rates_are_exact() {
        let silent = WakeSource::new(1);
        let always = WakeSource::new(1).with_interrupt_rate(5.0); // clamps to 1.0
        for tick in 0..64 {
            assert!(!silent.fires(tick, 0));
            assert!(always.fires(tick, 0));
        }
    }

    #[test]
    fn timers_fire_for_every_vcpu_at_their_tick() {
        let source = WakeSource::new(0).with_timer(5).with_timer_period(8);
        for vcpu in 0..3 {
            assert!(source.fires(5, vcpu), "one-shot timer at tick 5");
            assert!(source.fires(8, vcpu), "periodic timer at tick 8");
            assert!(source.fires(16, vcpu), "periodic timer at tick 16");
            assert!(!source.fires(0, vcpu), "period never fires at tick 0");
            assert!(!source.fires(7, vcpu));
        }
    }
}
