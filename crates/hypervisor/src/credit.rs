//! The Xen credit scheduler (XCS), the substrate KS4Xen extends.
//!
//! Semantics follow Section 3.2 of the paper and Cherkasova et al.'s
//! description of the Xen credit scheduler:
//!
//! * every VM (vCPU) is configured with a credit *weight* and an optional
//!   *cap*;
//! * a running vCPU burns credit proportional to the CPU time it consumes;
//! * a vCPU whose remaining credit is positive has priority `UNDER`, one
//!   whose credit is exhausted has priority `OVER` and only runs when no
//!   `UNDER` vCPU is runnable (work-conserving);
//! * every accounting period (a 30 ms time slice, i.e. three 10 ms ticks)
//!   credits are redistributed proportionally to weights;
//! * a capped vCPU stops running for the rest of the slice once it has
//!   consumed its cap share, even if the machine is otherwise idle.

use crate::scheduler::{Priority, Scheduler, TickReport};
use crate::vm::{VcpuId, VmConfig};
use kyoto_sim::topology::CoreId;
use std::collections::BTreeMap;

/// Timing parameters of the credit scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditConfig {
    /// Number of physical cores whose capacity is distributed as credit.
    pub num_cores: usize,
    /// Cycle budget of one tick on one core.
    pub cycles_per_tick: u64,
    /// Ticks per accounting slice (Xen: 3 ticks of 10 ms = 30 ms).
    pub ticks_per_slice: u32,
}

impl CreditConfig {
    /// Creates a configuration; values are clamped to at least 1.
    pub fn new(num_cores: usize, cycles_per_tick: u64, ticks_per_slice: u32) -> Self {
        CreditConfig {
            num_cores: num_cores.max(1),
            cycles_per_tick: cycles_per_tick.max(1),
            ticks_per_slice: ticks_per_slice.max(1),
        }
    }

    /// Cycle budget of one slice on one core.
    pub fn cycles_per_slice(&self) -> u64 {
        self.cycles_per_tick * u64::from(self.ticks_per_slice)
    }

    /// Total machine capacity distributed as credit per slice.
    pub fn capacity_per_slice(&self) -> u64 {
        self.cycles_per_slice() * self.num_cores as u64
    }
}

#[derive(Debug, Clone)]
struct VcpuState {
    weight: u32,
    cap_percent: Option<u32>,
    remain_credit: i64,
    window_consumed: u64,
    last_picked: u64,
}

/// The Xen credit scheduler.
#[derive(Debug, Clone)]
pub struct CreditScheduler {
    config: CreditConfig,
    vcpus: BTreeMap<VcpuId, VcpuState>,
    pick_clock: u64,
}

impl CreditScheduler {
    /// Creates an empty credit scheduler.
    pub fn new(config: CreditConfig) -> Self {
        CreditScheduler {
            config,
            vcpus: BTreeMap::new(),
            pick_clock: 0,
        }
    }

    /// The scheduler's timing configuration.
    pub fn config(&self) -> CreditConfig {
        self.config
    }

    /// Remaining credit of a vCPU (cycles); `0` for unknown vCPUs.
    pub fn remaining_credit(&self, vcpu: VcpuId) -> i64 {
        self.vcpus.get(&vcpu).map(|s| s.remain_credit).unwrap_or(0)
    }

    /// Whether a vCPU has hit its cap for the current slice.
    pub fn is_capped_out(&self, vcpu: VcpuId) -> bool {
        self.vcpus
            .get(&vcpu)
            .map(|s| Self::capped_out(&self.config, s))
            .unwrap_or(false)
    }

    fn capped_out(config: &CreditConfig, state: &VcpuState) -> bool {
        match state.cap_percent {
            None => false,
            Some(cap) => {
                let allowance = config.cycles_per_slice() * u64::from(cap) / 100;
                state.window_consumed >= allowance
            }
        }
    }

    /// Registered vCPUs, in ascending id order (the map is a `BTreeMap`
    /// precisely so this listing — and every credit-refill fold below — is
    /// deterministic; see the kyoto-lint `nondet-iter` rule).
    pub fn vcpus(&self) -> impl Iterator<Item = VcpuId> + '_ {
        self.vcpus.keys().copied()
    }

    fn refill_credits(&mut self) {
        let total_weight: u64 = self.vcpus.values().map(|s| u64::from(s.weight)).sum();
        if total_weight == 0 {
            return;
        }
        let capacity = self.config.capacity_per_slice();
        for state in self.vcpus.values_mut() {
            let share =
                (capacity as u128 * u128::from(state.weight) / u128::from(total_weight)) as i64;
            // Credit accumulation is capped (like Xen) so an idle VM cannot
            // hoard unbounded credit and then monopolise the machine.
            state.remain_credit = (state.remain_credit + share).min(share.saturating_mul(2));
            state.window_consumed = 0;
        }
    }
}

impl Scheduler for CreditScheduler {
    fn add_vcpu(&mut self, vcpu: VcpuId, config: &VmConfig) {
        // A new vCPU starts with one slice worth of fair-share credit so it
        // can run immediately.
        let state = VcpuState {
            weight: config.weight.max(1),
            cap_percent: config.cap_percent,
            remain_credit: self.config.cycles_per_slice() as i64,
            window_consumed: 0,
            last_picked: 0,
        };
        self.vcpus.insert(vcpu, state);
    }

    fn remove_vcpu(&mut self, vcpu: VcpuId) {
        self.vcpus.remove(&vcpu);
    }

    fn pick_next(&mut self, _core: CoreId, candidates: &[VcpuId]) -> Option<VcpuId> {
        self.pick_clock += 1;
        let mut best: Option<(Priority, u64, u64, VcpuId)> = None;
        for &vcpu in candidates {
            let Some(state) = self.vcpus.get(&vcpu) else {
                continue;
            };
            if Self::capped_out(&self.config, state) {
                continue;
            }
            let priority = if state.remain_credit > 0 {
                Priority::Under
            } else {
                Priority::Over
            };
            // Order: UNDER before OVER, then least recently picked, then
            // stable key for determinism.
            let rank = (priority, state.last_picked, vcpu.as_key(), vcpu);
            let better = match &best {
                None => true,
                Some((bp, blp, bkey, _)) => {
                    (priority_rank(priority), state.last_picked, vcpu.as_key())
                        < (priority_rank(*bp), *blp, *bkey)
                }
            };
            if better {
                best = Some(rank);
            }
        }
        let chosen = best.map(|(_, _, _, vcpu)| vcpu);
        if let Some(vcpu) = chosen {
            if let Some(state) = self.vcpus.get_mut(&vcpu) {
                state.last_picked = self.pick_clock;
            }
        }
        chosen
    }

    fn account(&mut self, vcpu: VcpuId, report: &TickReport) {
        if let Some(state) = self.vcpus.get_mut(&vcpu) {
            state.remain_credit -= report.consumed_cycles as i64;
            state.window_consumed += report.consumed_cycles;
        }
    }

    fn on_tick(&mut self, tick: u64) {
        if (tick + 1).is_multiple_of(u64::from(self.config.ticks_per_slice)) {
            self.refill_credits();
        }
    }

    fn priority(&self, vcpu: VcpuId) -> Priority {
        match self.vcpus.get(&vcpu) {
            Some(state) if state.remain_credit > 0 => Priority::Under,
            _ => Priority::Over,
        }
    }

    fn name(&self) -> &'static str {
        "xcs"
    }
}

fn priority_rank(priority: Priority) -> u8 {
    match priority {
        Priority::Under => 0,
        Priority::Over => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;
    use kyoto_sim::pmc::PmcSet;

    fn vcpu(vm: u16) -> VcpuId {
        VcpuId::new(VmId(vm), 0)
    }

    fn report(consumed: u64, budget: u64) -> TickReport {
        TickReport {
            consumed_cycles: consumed,
            budget_cycles: budget,
            pmc_delta: PmcSet::default(),
            pollution_events: 0,
            shadow_llc_misses: None,
            tick_ms: 10,
        }
    }

    fn scheduler() -> CreditScheduler {
        CreditScheduler::new(CreditConfig::new(4, 100_000, 3))
    }

    #[test]
    fn new_vcpus_start_under_and_runnable() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        assert_eq!(s.priority(vcpu(1)), Priority::Under);
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), Some(vcpu(1)));
    }

    #[test]
    fn unknown_vcpus_are_over_and_never_picked() {
        let mut s = scheduler();
        assert_eq!(s.priority(vcpu(9)), Priority::Over);
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(9)]), None);
    }

    #[test]
    fn burning_credit_flips_priority_to_over() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        // Consume far more than one slice of credit.
        s.account(vcpu(1), &report(10_000_000, 100_000));
        assert_eq!(s.priority(vcpu(1)), Priority::Over);
        assert!(s.remaining_credit(vcpu(1)) < 0);
    }

    #[test]
    fn refill_restores_under_priority() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.account(vcpu(1), &report(400_000, 100_000));
        assert_eq!(s.priority(vcpu(1)), Priority::Over);
        // Slice boundary at tick 2 (ticks 0,1,2 form the first slice).
        s.on_tick(0);
        s.on_tick(1);
        assert_eq!(s.priority(vcpu(1)), Priority::Over);
        s.on_tick(2);
        // Sole vCPU: gets the whole 4-core capacity (1.2M cycles) as credit.
        assert_eq!(s.priority(vcpu(1)), Priority::Under);
    }

    #[test]
    fn under_vcpus_are_preferred_over_over_vcpus() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        s.account(vcpu(1), &report(10_000_000, 100_000)); // vm1 goes OVER
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]), Some(vcpu(2)));
    }

    #[test]
    fn over_vcpus_still_run_when_nothing_else_is_runnable() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.account(vcpu(1), &report(10_000_000, 100_000));
        assert_eq!(s.priority(vcpu(1)), Priority::Over);
        // Work-conserving: the only candidate runs even though it is OVER.
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), Some(vcpu(1)));
    }

    #[test]
    fn round_robin_between_equal_vcpus() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        let first = s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]).unwrap();
        let second = s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]).unwrap();
        assert_ne!(first, second, "equal-credit vCPUs should alternate");
    }

    #[test]
    fn capped_vcpu_stops_after_its_allowance() {
        let mut s = scheduler();
        // 25 % cap of a 300k-cycle slice = 75k cycles per slice.
        s.add_vcpu(vcpu(1), &VmConfig::new("a").with_cap_percent(25));
        assert!(!s.is_capped_out(vcpu(1)));
        s.account(vcpu(1), &report(80_000, 100_000));
        assert!(s.is_capped_out(vcpu(1)));
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), None);
        // The cap window resets at the slice boundary.
        s.on_tick(2);
        assert!(!s.is_capped_out(vcpu(1)));
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), Some(vcpu(1)));
    }

    #[test]
    fn weights_bias_credit_distribution() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("heavy").with_weight(512));
        s.add_vcpu(vcpu(2), &VmConfig::new("light").with_weight(256));
        // Drain both, then refill.
        s.account(vcpu(1), &report(300_000, 100_000));
        s.account(vcpu(2), &report(300_000, 100_000));
        s.on_tick(2);
        let heavy = s.remaining_credit(vcpu(1));
        let light = s.remaining_credit(vcpu(2));
        assert!(
            heavy > light,
            "heavier weight should receive more credit ({heavy} vs {light})"
        );
    }

    #[test]
    fn credit_accumulation_is_bounded() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("idle"));
        // An idle vCPU over many slices must not accumulate unbounded credit.
        for tick in 0..300 {
            s.on_tick(tick);
        }
        let credit = s.remaining_credit(vcpu(1));
        let one_slice_full_share = s.config().capacity_per_slice() as i64;
        assert!(credit <= one_slice_full_share * 2);
    }

    #[test]
    fn remove_vcpu_forgets_state() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.remove_vcpu(vcpu(1));
        assert_eq!(s.vcpus().count(), 0);
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), None);
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(scheduler().name(), "xcs");
    }

    #[test]
    fn vcpu_listing_is_sorted_regardless_of_registration_order() {
        let mut s = scheduler();
        for vm in [9u16, 2, 7, 1] {
            s.add_vcpu(vcpu(vm), &VmConfig::new("a"));
        }
        let expected: Vec<VcpuId> = [1u16, 2, 7, 9].into_iter().map(vcpu).collect();
        assert_eq!(s.vcpus().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn accounting_is_independent_of_registration_order() {
        // Two schedulers with the same vCPU population registered in
        // different orders must agree on every credit balance after
        // identical charge/refill histories (pinned by the BTreeMap state;
        // a hash-ordered refill fold could round shares differently).
        let weights = [(1u16, 64u32), (2, 256), (3, 512), (4, 128)];
        let mut forward = scheduler();
        for &(vm, weight) in &weights {
            forward.add_vcpu(vcpu(vm), &VmConfig::new("a").with_weight(weight));
        }
        let mut reverse = scheduler();
        for &(vm, weight) in weights.iter().rev() {
            reverse.add_vcpu(vcpu(vm), &VmConfig::new("a").with_weight(weight));
        }
        for tick in 0..12u64 {
            for &(vm, weight) in &weights {
                let charge = report(u64::from(weight) * 100, 100_000);
                forward.account(vcpu(vm), &charge);
                reverse.account(vcpu(vm), &charge);
            }
            forward.on_tick(tick);
            reverse.on_tick(tick);
        }
        for &(vm, _) in &weights {
            assert_eq!(
                forward.remaining_credit(vcpu(vm)),
                reverse.remaining_credit(vcpu(vm)),
                "vcpu {vm} diverged on registration order"
            );
        }
    }
}
