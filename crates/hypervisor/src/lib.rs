//! # kyoto-hypervisor — virtualisation substrate for the Kyoto reproduction
//!
//! The paper implements Kyoto as a scheduler extension inside three
//! virtualisation systems: Xen (credit scheduler), KVM/Linux (CFS) and the
//! Pisces co-kernel. This crate provides those substrates as faithful,
//! self-contained models plus the hypervisor run loop that drives VMs on the
//! simulated machine of `kyoto-sim`:
//!
//! * [`vm`] — VM/vCPU identifiers, configuration (weight, cap, pollution
//!   permit, pinning) and execution reports;
//! * [`scheduler`] — the [`scheduler::Scheduler`] trait every scheduler
//!   implements, and that the Kyoto schedulers of `kyoto-core` wrap;
//! * [`lifecycle`] — the Ready/Running/Blocked vCPU state machine and the
//!   deterministic [`lifecycle::WakeSource`] that wakes sleeping vCPUs;
//! * [`credit`] — the Xen credit scheduler (XCS, Section 3.2 of the paper);
//! * [`cfs`] — a simplified Linux CFS (the KVM substrate);
//! * [`pisces`] — a Pisces-like static core partitioner (the HPC co-kernel
//!   substrate, Fig. 7);
//! * [`placement`] — VM-to-socket placement policies for the cloud-scale
//!   consolidation scenarios (round-robin / packed / NUMA-aware);
//! * [`hypervisor`] — the tick-based run loop binding machine, scheduler and
//!   VMs together.
//!
//! # Example: two VMs time-sharing a core under the Xen credit scheduler
//!
//! ```
//! use kyoto_hypervisor::credit::{CreditConfig, CreditScheduler};
//! use kyoto_hypervisor::hypervisor::{Hypervisor, HypervisorConfig};
//! use kyoto_hypervisor::vm::VmConfig;
//! use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
//! use kyoto_sim::workload::ComputeOnly;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = Machine::new(MachineConfig::scaled_paper_machine(64));
//! let config = HypervisorConfig::default();
//! let scheduler = CreditScheduler::new(CreditConfig::new(
//!     machine.num_cores(),
//!     machine.config().freq_khz * config.tick_ms,
//!     config.ticks_per_slice,
//! ));
//! let mut hypervisor = Hypervisor::new(machine, scheduler, config);
//! let a = hypervisor.add_vm_with(
//!     VmConfig::new("a").pinned_to(vec![CoreId(0)]),
//!     Box::new(ComputeOnly::new(1)),
//! )?;
//! hypervisor.add_vm_with(
//!     VmConfig::new("b").pinned_to(vec![CoreId(0)]),
//!     Box::new(ComputeOnly::new(1)),
//! )?;
//! hypervisor.run_ms(300);
//! let report = hypervisor.report(a).expect("vm exists");
//! assert!(report.cpu_share() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfs;
pub mod credit;
pub mod hypervisor;
pub mod lifecycle;
pub mod pisces;
pub mod placement;
pub mod scheduler;
pub mod vm;

pub use cfs::{CfsConfig, CfsScheduler};
pub use credit::{CreditConfig, CreditScheduler};
pub use hypervisor::{Hypervisor, HypervisorConfig, HypervisorError, TakenVm, TickSample};
pub use lifecycle::{VcpuState, WakeSource};
pub use pisces::PiscesScheduler;
pub use placement::{place_vms, Placement, PlacementPolicy};
pub use scheduler::{ExecOverrides, Priority, Scheduler, TickReport};
pub use vm::{VcpuId, VmConfig, VmId, VmReport};

/// Builds a Xen-like hypervisor (credit scheduler) for `machine` with the
/// given timing configuration — the baseline system of the paper's
/// evaluation.
pub fn xen_hypervisor(
    machine: kyoto_sim::topology::Machine,
    config: HypervisorConfig,
) -> Hypervisor<CreditScheduler> {
    let scheduler = CreditScheduler::new(CreditConfig::new(
        machine.num_cores(),
        machine.config().freq_khz * config.tick_ms,
        config.ticks_per_slice,
    ));
    Hypervisor::new(machine, scheduler, config)
}

/// Builds a KVM-like hypervisor (CFS) for `machine`.
pub fn kvm_hypervisor(
    machine: kyoto_sim::topology::Machine,
    config: HypervisorConfig,
) -> Hypervisor<CfsScheduler> {
    let scheduler = CfsScheduler::new(CfsConfig::new(
        machine.config().freq_khz * config.tick_ms,
        config.ticks_per_slice,
    ));
    Hypervisor::new(machine, scheduler, config)
}

/// Builds a Pisces-like partitioned system for `machine`.
pub fn pisces_system(
    machine: kyoto_sim::topology::Machine,
    config: HypervisorConfig,
) -> Hypervisor<PiscesScheduler> {
    let scheduler = PiscesScheduler::new(machine.num_cores());
    Hypervisor::new(machine, scheduler, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_sim::topology::{Machine, MachineConfig};
    use kyoto_sim::workload::ComputeOnly;

    #[test]
    fn convenience_constructors_wire_the_right_schedulers() {
        let machine = || Machine::new(MachineConfig::scaled_paper_machine(64));
        let config = HypervisorConfig::default();
        assert_eq!(xen_hypervisor(machine(), config).scheduler().name(), "xcs");
        assert_eq!(kvm_hypervisor(machine(), config).scheduler().name(), "cfs");
        assert_eq!(
            pisces_system(machine(), config).scheduler().name(),
            "pisces"
        );
    }

    #[test]
    fn all_three_systems_run_a_vm() {
        let config = HypervisorConfig::default();
        let machine = || Machine::new(MachineConfig::scaled_paper_machine(64));
        let mut xen = xen_hypervisor(machine(), config);
        let mut kvm = kvm_hypervisor(machine(), config);
        let mut pisces = pisces_system(machine(), config);
        let x = xen
            .add_vm_with(VmConfig::new("a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        let k = kvm
            .add_vm_with(VmConfig::new("a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        let p = pisces
            .add_vm_with(VmConfig::new("a"), Box::new(ComputeOnly::new(1)))
            .unwrap();
        xen.run_ticks(3);
        kvm.run_ticks(3);
        pisces.run_ticks(3);
        assert!(xen.report(x).unwrap().pmcs.instructions > 0);
        assert!(kvm.report(k).unwrap().pmcs.instructions > 0);
        assert!(pisces.report(p).unwrap().pmcs.instructions > 0);
    }
}
