//! The scheduler abstraction shared by XCS, CFS, Pisces and the Kyoto
//! schedulers built on top of them.
//!
//! The hypervisor drives the machine in fixed ticks (10 ms in Xen). At every
//! tick it asks the scheduler, core by core, which runnable vCPU to place
//! next, runs the chosen vCPUs for one tick on the simulated machine, and
//! feeds the per-vCPU execution report back into the scheduler for
//! accounting. Schedulers are purely reactive state machines, which is what
//! makes the Kyoto extension (`kyoto-core`) a thin wrapper: it only adds the
//! pollution-quota bookkeeping and an extra "cannot run" condition.

use crate::vm::{VcpuId, VmConfig};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::topology::CoreId;
use serde::{Deserialize, Serialize};

/// Scheduling priority of a vCPU, following the Xen credit scheduler's
/// terminology: `UNDER` vCPUs still have credit (or quota) left and may run,
/// `OVER` vCPUs have exhausted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// The vCPU has remaining credit and is eligible to run.
    Under,
    /// The vCPU has exhausted its credit; it only runs when no `UNDER` vCPU
    /// is runnable (work-conserving behaviour).
    Over,
}

/// Per-tick execution report handed to [`Scheduler::account`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickReport {
    /// Cycles the vCPU actually consumed during the tick.
    pub consumed_cycles: u64,
    /// The tick's cycle budget (what a fully used tick would consume).
    pub budget_cycles: u64,
    /// Performance-counter delta of the tick (the perfctr-xen sample).
    pub pmc_delta: PmcSet,
    /// LLC fills by this vCPU that evicted another owner's line.
    pub pollution_events: u64,
    /// Solo LLC misses estimated by the simulator-based attribution for this
    /// tick, when shadow attribution is enabled on the engine.
    pub shadow_llc_misses: Option<u64>,
    /// Duration of the tick in milliseconds.
    pub tick_ms: u64,
}

/// Execution-environment overrides a scheduler may impose on a vCPU.
///
/// The Kyoto socket-dedication monitor uses this to model vCPUs temporarily
/// migrated to the other socket during a sampling window: their memory stays
/// behind, so their LLC misses pay the remote-memory latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOverrides {
    /// Charge remote-memory latency for every LLC miss of this vCPU.
    pub force_remote: bool,
}

/// A vCPU scheduler.
///
/// Implementations must be deterministic: given the same sequence of calls
/// they must take the same decisions, so experiments are reproducible.
pub trait Scheduler {
    /// Registers a vCPU with its VM configuration.
    fn add_vcpu(&mut self, vcpu: VcpuId, config: &VmConfig);

    /// Removes a vCPU (VM destroyed).
    fn remove_vcpu(&mut self, vcpu: VcpuId);

    /// Chooses which of `candidates` should run on `core` for the next tick.
    ///
    /// `candidates` only contains *runnable* vCPUs: the hypervisor filters
    /// out Blocked vCPUs (see `kyoto_hypervisor::lifecycle::VcpuState`) in
    /// addition to pinning constraints and vCPUs already placed on another
    /// core this tick. A scheduler therefore never sees — and must never
    /// return — a sleeping vCPU. Returning `None` leaves the core idle.
    fn pick_next(&mut self, core: CoreId, candidates: &[VcpuId]) -> Option<VcpuId>;

    /// Feeds the execution report of the tick back for accounting (credit
    /// burn, quota debit, ...).
    fn account(&mut self, vcpu: VcpuId, report: &TickReport);

    /// Notifies the scheduler that tick `tick` has completed on every core.
    /// Periodic work (credit refill, quota earn) happens here.
    fn on_tick(&mut self, tick: u64);

    /// Current priority of a vCPU.
    fn priority(&self, vcpu: VcpuId) -> Priority;

    /// How many times the scheduler punished this vCPU (forced it to
    /// priority `OVER` because its measured pollution exceeded its permit).
    /// Non-Kyoto schedulers never punish and return `0`.
    fn punishments(&self, vcpu: VcpuId) -> u64 {
        let _ = vcpu;
        0
    }

    /// Execution-environment overrides for a vCPU (see [`ExecOverrides`]).
    fn overrides(&self, vcpu: VcpuId) -> ExecOverrides {
        let _ = vcpu;
        ExecOverrides::default()
    }

    /// Notifies the scheduler that `vcpu` became runnable (`true`, woken
    /// from Blocked) or unrunnable (`false`, blocked). Most schedulers can
    /// ignore this — a Blocked vCPU simply stops appearing in `pick_next`
    /// candidate lists — but schedulers with out-of-band sampling (the Kyoto
    /// dedication sampler) use it to avoid targeting sleeping vCPUs.
    fn set_runnable(&mut self, vcpu: VcpuId, runnable: bool) {
        let _ = (vcpu, runnable);
    }

    /// Short name used in reports ("xcs", "ks4xen", "cfs", ...).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    /// A scheduler that always picks the first candidate; used to check the
    /// trait's default methods.
    struct FirstComeScheduler;

    impl Scheduler for FirstComeScheduler {
        fn add_vcpu(&mut self, _vcpu: VcpuId, _config: &VmConfig) {}
        fn remove_vcpu(&mut self, _vcpu: VcpuId) {}
        fn pick_next(&mut self, _core: CoreId, candidates: &[VcpuId]) -> Option<VcpuId> {
            candidates.first().copied()
        }
        fn account(&mut self, _vcpu: VcpuId, _report: &TickReport) {}
        fn on_tick(&mut self, _tick: u64) {}
        fn priority(&self, _vcpu: VcpuId) -> Priority {
            Priority::Under
        }
        fn name(&self) -> &'static str {
            "first-come"
        }
    }

    #[test]
    fn default_trait_methods() {
        let mut scheduler = FirstComeScheduler;
        let vcpu = VcpuId::new(VmId(1), 0);
        assert_eq!(scheduler.punishments(vcpu), 0);
        assert_eq!(scheduler.overrides(vcpu), ExecOverrides::default());
        assert!(!scheduler.overrides(vcpu).force_remote);
        // set_runnable is a default no-op; it must at least be callable.
        scheduler.set_runnable(vcpu, false);
        scheduler.set_runnable(vcpu, true);
    }

    #[test]
    fn object_safety() {
        // The trait must stay object-safe: the hypervisor stores `Box<dyn Scheduler>`
        // in some experiment drivers.
        let mut boxed: Box<dyn Scheduler> = Box::new(FirstComeScheduler);
        let vcpu = VcpuId::new(VmId(1), 0);
        assert_eq!(boxed.pick_next(CoreId(0), &[vcpu]), Some(vcpu));
        assert_eq!(boxed.name(), "first-come");
    }
}
