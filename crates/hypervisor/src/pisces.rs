//! A Pisces-like co-kernel partition (Ouyang et al., HPDC 2015), the
//! substrate of the paper's KS4Pisces prototype.
//!
//! Pisces achieves performance isolation for HPC applications by giving each
//! *enclave* (a lightweight co-kernel running one application/VM) exclusive
//! control of its assigned cores and memory: there is no hypervisor-level
//! time sharing at all, so the interference caused by shared virtualisation
//! components disappears. Crucially for the paper (Fig. 8), the last-level
//! cache is still shared between enclaves of the same socket, so LLC
//! contention persists — which is exactly what KS4Pisces then mitigates.
//!
//! The scheduler below models that architecture: every vCPU is statically
//! assigned a dedicated core at registration time and always runs on it;
//! cores are never time-shared between enclaves.

use crate::scheduler::{Priority, Scheduler, TickReport};
use crate::vm::{VcpuId, VmConfig};
use kyoto_sim::topology::CoreId;
use std::collections::HashMap;

/// A static core-partitioning scheduler modelling the Pisces co-kernel.
#[derive(Debug, Clone)]
pub struct PiscesScheduler {
    num_cores: usize,
    /// core -> enclave vCPU owning it.
    assignments: HashMap<usize, VcpuId>,
    /// vCPU -> core it owns.
    placements: HashMap<VcpuId, CoreId>,
    /// vCPUs that could not get a dedicated core (machine over-committed).
    unplaced: Vec<VcpuId>,
}

impl PiscesScheduler {
    /// Creates a partitioning scheduler for a machine with `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        PiscesScheduler {
            num_cores: num_cores.max(1),
            assignments: HashMap::new(),
            placements: HashMap::new(),
            unplaced: Vec::new(),
        }
    }

    /// The core an enclave vCPU owns, if it received one.
    pub fn core_of(&self, vcpu: VcpuId) -> Option<CoreId> {
        self.placements.get(&vcpu).copied()
    }

    /// vCPUs that could not be given a dedicated core. Pisces refuses to
    /// over-commit; such enclaves simply never run, and the caller should
    /// treat their presence as a provisioning error.
    pub fn unplaced(&self) -> &[VcpuId] {
        &self.unplaced
    }

    fn first_free_core(&self, preferred: Option<CoreId>) -> Option<usize> {
        if let Some(core) = preferred {
            if core.0 < self.num_cores && !self.assignments.contains_key(&core.0) {
                return Some(core.0);
            }
        }
        (0..self.num_cores).find(|core| !self.assignments.contains_key(core))
    }
}

impl Scheduler for PiscesScheduler {
    fn add_vcpu(&mut self, vcpu: VcpuId, config: &VmConfig) {
        let preferred = config.pinned_core(vcpu.index);
        match self.first_free_core(preferred) {
            Some(core) => {
                self.assignments.insert(core, vcpu);
                self.placements.insert(vcpu, CoreId(core));
            }
            None => self.unplaced.push(vcpu),
        }
    }

    fn remove_vcpu(&mut self, vcpu: VcpuId) {
        if let Some(core) = self.placements.remove(&vcpu) {
            self.assignments.remove(&core.0);
        }
        self.unplaced.retain(|&v| v != vcpu);
    }

    fn pick_next(&mut self, core: CoreId, candidates: &[VcpuId]) -> Option<VcpuId> {
        // A core only ever runs the enclave that owns it.
        let owner = self.assignments.get(&core.0)?;
        candidates.contains(owner).then_some(*owner)
    }

    fn account(&mut self, _vcpu: VcpuId, _report: &TickReport) {
        // Enclaves own their cores outright: no credit or bandwidth
        // accounting is performed.
    }

    fn on_tick(&mut self, _tick: u64) {}

    fn priority(&self, vcpu: VcpuId) -> Priority {
        if self.placements.contains_key(&vcpu) {
            Priority::Under
        } else {
            Priority::Over
        }
    }

    fn name(&self) -> &'static str {
        "pisces"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    fn vcpu(vm: u16) -> VcpuId {
        VcpuId::new(VmId(vm), 0)
    }

    #[test]
    fn each_enclave_gets_a_dedicated_core() {
        let mut s = PiscesScheduler::new(4);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        let c1 = s.core_of(vcpu(1)).unwrap();
        let c2 = s.core_of(vcpu(2)).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn pinning_is_honoured_when_free() {
        let mut s = PiscesScheduler::new(4);
        s.add_vcpu(vcpu(1), &VmConfig::new("a").pinned_to(vec![CoreId(2)]));
        assert_eq!(s.core_of(vcpu(1)), Some(CoreId(2)));
        // A second enclave asking for the same core falls back to a free one.
        s.add_vcpu(vcpu(2), &VmConfig::new("b").pinned_to(vec![CoreId(2)]));
        assert_ne!(s.core_of(vcpu(2)), Some(CoreId(2)));
    }

    #[test]
    fn cores_are_never_time_shared() {
        let mut s = PiscesScheduler::new(2);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        let c1 = s.core_of(vcpu(1)).unwrap();
        // Even if both are offered as candidates, the core only runs its owner.
        assert_eq!(s.pick_next(c1, &[vcpu(1), vcpu(2)]), Some(vcpu(1)));
        let c2 = s.core_of(vcpu(2)).unwrap();
        assert_eq!(s.pick_next(c2, &[vcpu(1), vcpu(2)]), Some(vcpu(2)));
    }

    #[test]
    fn overcommit_is_refused() {
        let mut s = PiscesScheduler::new(1);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        assert_eq!(s.unplaced(), &[vcpu(2)]);
        assert_eq!(s.priority(vcpu(2)), Priority::Over);
        assert_eq!(s.priority(vcpu(1)), Priority::Under);
        // The unplaced enclave never runs anywhere.
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(2)]), None);
    }

    #[test]
    fn removing_an_enclave_frees_its_core() {
        let mut s = PiscesScheduler::new(1);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.remove_vcpu(vcpu(1));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        assert_eq!(s.core_of(vcpu(2)), Some(CoreId(0)));
    }

    #[test]
    fn idle_cores_stay_idle() {
        let mut s = PiscesScheduler::new(4);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        assert_eq!(s.pick_next(CoreId(3), &[vcpu(1)]), None);
        assert_eq!(s.name(), "pisces");
    }
}
