//! Virtual machines and virtual CPUs.
//!
//! The paper's VMs are simple: each one runs a single application and is
//! configured with a computing capacity (the credit scheduler's weight/cap)
//! plus — with Kyoto — a booked LLC pollution permit (`llc_cap`). This module
//! provides the configuration and runtime bookkeeping shared by every
//! scheduler implementation.

use crate::lifecycle::WakeSource;
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::topology::{CoreId, NumaNode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a VM. The numeric value doubles as the cache-line owner tag
/// used by `kyoto-sim`, so it must fit in 16 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u16);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Identifier of a virtual CPU: a VM plus the vCPU index inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcpuId {
    /// Owning VM.
    pub vm: VmId,
    /// Index of the vCPU within the VM.
    pub index: u32,
}

impl VcpuId {
    /// Creates a vCPU id.
    pub fn new(vm: VmId, index: u32) -> Self {
        VcpuId { vm, index }
    }

    /// A stable numeric key (used as PMC context id).
    pub fn as_key(&self) -> u64 {
        (u64::from(self.vm.0) << 32) | u64::from(self.index)
    }
}

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.v{}", self.vm, self.index)
    }
}

/// Static configuration of a VM, set at instantiation time by the cloud user
/// (weight, cap, pollution permit) and the provider (placement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Human-readable name (typically the hosted application).
    pub name: String,
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Credit-scheduler weight (Xen's default is 256).
    pub weight: u32,
    /// Optional cap on the CPU share of *each* vCPU, in percent of one core
    /// (Xen's `cap` parameter). `None` means uncapped.
    pub cap_percent: Option<u32>,
    /// Booked LLC pollution permit in LLC misses per millisecond of CPU time
    /// — the new VM parameter introduced by the paper. `None` means the VM
    /// did not book a permit (legacy behaviour, never punished).
    pub llc_cap: Option<f64>,
    /// Cores each vCPU may run on. vCPU `i` is restricted to
    /// `pinning[i % pinning.len()]`. `None` lets a vCPU run anywhere.
    pub pinning: Option<Vec<CoreId>>,
    /// NUMA node holding the VM's memory. `None` means "local to wherever
    /// the vCPU runs".
    pub numa_node: Option<NumaNode>,
    /// Wake-event source for vCPUs that block (WFI-style sleeping
    /// workloads). `None` means no wake events are ever injected — fine for
    /// workloads that never block (the default for every built-in model).
    pub wake_source: Option<WakeSource>,
}

impl VmConfig {
    /// Creates a single-vCPU VM with default weight and no cap, permit or
    /// pinning — the configuration used by most of the paper's experiments.
    pub fn new(name: impl Into<String>) -> Self {
        VmConfig {
            name: name.into(),
            vcpus: 1,
            weight: 256,
            cap_percent: None,
            llc_cap: None,
            pinning: None,
            numa_node: None,
            wake_source: None,
        }
    }

    /// Sets the number of vCPUs.
    pub fn with_vcpus(mut self, vcpus: usize) -> Self {
        self.vcpus = vcpus.max(1);
        self
    }

    /// Sets the credit weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Caps each vCPU at `percent` of one core (as Fig. 3 does when varying
    /// the disruptor's computing power).
    pub fn with_cap_percent(mut self, percent: u32) -> Self {
        self.cap_percent = Some(percent.clamp(1, 100));
        self
    }

    /// Books an LLC pollution permit of `llc_cap` misses per millisecond of
    /// CPU time (the paper writes `250k·v` for `llc_cap = 250_000`).
    pub fn with_llc_cap(mut self, llc_cap: f64) -> Self {
        self.llc_cap = Some(llc_cap.max(0.0));
        self
    }

    /// Pins the VM's vCPUs to `cores` (vCPU `i` goes to `cores[i % len]`).
    pub fn pinned_to(mut self, cores: Vec<CoreId>) -> Self {
        if !cores.is_empty() {
            self.pinning = Some(cores);
        }
        self
    }

    /// Places the VM's memory on `node`.
    pub fn on_numa_node(mut self, node: NumaNode) -> Self {
        self.numa_node = Some(node);
        self
    }

    /// Attaches a deterministic wake-event source for blocking workloads
    /// (see [`WakeSource`]).
    pub fn with_wake_source(mut self, source: WakeSource) -> Self {
        self.wake_source = Some(source);
        self
    }

    /// The core vCPU `index` is pinned to, if any.
    pub fn pinned_core(&self, index: u32) -> Option<CoreId> {
        self.pinning
            .as_ref()
            .map(|cores| cores[index as usize % cores.len()])
    }
}

/// Aggregated execution report of one VM, produced by the hypervisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmReport {
    /// The VM.
    pub vm: VmId,
    /// Its configured name.
    pub name: String,
    /// Cumulative performance counters over all its vCPUs.
    pub pmcs: PmcSet,
    /// Total cycles its vCPUs were scheduled for.
    pub cycles_run: u64,
    /// Total scheduling ticks during which at least one vCPU ran.
    pub ticks_scheduled: u64,
    /// Total ticks elapsed while the VM existed.
    pub ticks_elapsed: u64,
    /// Times the scheduler punished the VM (Kyoto schedulers only).
    pub punishments: u64,
    /// Total vCPU-ticks spent Blocked (summed over all vCPUs).
    pub ticks_blocked: u64,
    /// Cycles of engine budget the VM's vCPUs slept through while Blocked.
    /// These cycles were *not* executed or charged; the counter exists so
    /// traces and snapshots can report how much CPU time blocking saved.
    pub blocked_cycles: u64,
}

impl VmReport {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        self.pmcs.ipc()
    }

    /// Measured pollution in LLC misses per millisecond of CPU time, i.e.
    /// the quantity Equation 1 estimates (using the actual cycles consumed).
    pub fn llc_misses_per_cpu_ms(&self, freq_khz: u64) -> f64 {
        if self.pmcs.unhalted_core_cycles == 0 {
            0.0
        } else {
            self.pmcs.llc_misses as f64 * freq_khz as f64 / self.pmcs.unhalted_core_cycles as f64
        }
    }

    /// Fraction of elapsed ticks during which the VM was scheduled.
    pub fn cpu_share(&self) -> f64 {
        if self.ticks_elapsed == 0 {
            0.0
        } else {
            self.ticks_scheduled as f64 / self.ticks_elapsed as f64
        }
    }

    /// Throughput proxy: instructions retired per elapsed tick. The paper's
    /// "performance" of a VM (execution time of a fixed amount of work) is
    /// inversely proportional to this value.
    pub fn instructions_per_tick(&self) -> f64 {
        if self.ticks_elapsed == 0 {
            0.0
        } else {
            self.pmcs.instructions as f64 / self.ticks_elapsed as f64
        }
    }

    /// Fraction of vCPU-ticks the VM spent Blocked (asleep). For the
    /// single-vCPU VMs of the paper's experiments this is simply the share
    /// of elapsed ticks during which the VM slept.
    pub fn blocked_fraction(&self) -> f64 {
        let vcpu_ticks = self.ticks_elapsed;
        if vcpu_ticks == 0 {
            0.0
        } else {
            self.ticks_blocked as f64 / vcpu_ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_paper_setup() {
        let config = VmConfig::new("gcc");
        assert_eq!(config.vcpus, 1);
        assert_eq!(config.weight, 256);
        assert_eq!(config.cap_percent, None);
        assert_eq!(config.llc_cap, None);
        assert_eq!(config.pinned_core(0), None);
        assert_eq!(config.wake_source, None);
    }

    #[test]
    fn builder_clamps_inputs() {
        let config = VmConfig::new("x")
            .with_vcpus(0)
            .with_weight(0)
            .with_cap_percent(500)
            .with_llc_cap(-3.0);
        assert_eq!(config.vcpus, 1);
        assert_eq!(config.weight, 1);
        assert_eq!(config.cap_percent, Some(100));
        assert_eq!(config.llc_cap, Some(0.0));
    }

    #[test]
    fn pinning_wraps_around_vcpu_index() {
        let config = VmConfig::new("x")
            .with_vcpus(4)
            .pinned_to(vec![CoreId(1), CoreId(2)]);
        assert_eq!(config.pinned_core(0), Some(CoreId(1)));
        assert_eq!(config.pinned_core(1), Some(CoreId(2)));
        assert_eq!(config.pinned_core(2), Some(CoreId(1)));
        let unpinned = VmConfig::new("y").pinned_to(vec![]);
        assert_eq!(unpinned.pinned_core(0), None);
    }

    #[test]
    fn vcpu_keys_are_unique_and_displayable() {
        let a = VcpuId::new(VmId(1), 0);
        let b = VcpuId::new(VmId(1), 1);
        let c = VcpuId::new(VmId(2), 0);
        assert_ne!(a.as_key(), b.as_key());
        assert_ne!(a.as_key(), c.as_key());
        assert_eq!(a.to_string(), "vm1.v0");
        assert_eq!(VmId(3).to_string(), "vm3");
    }

    #[test]
    fn report_metrics() {
        let report = VmReport {
            vm: VmId(1),
            name: "gcc".into(),
            pmcs: PmcSet {
                instructions: 1000,
                unhalted_core_cycles: 2000,
                llc_misses: 100,
                ..PmcSet::default()
            },
            cycles_run: 2000,
            ticks_scheduled: 5,
            ticks_elapsed: 10,
            punishments: 0,
            ticks_blocked: 4,
            blocked_cycles: 800,
        };
        assert!((report.ipc() - 0.5).abs() < 1e-12);
        assert!((report.cpu_share() - 0.5).abs() < 1e-12);
        assert!((report.instructions_per_tick() - 100.0).abs() < 1e-12);
        // 100 misses over 2000 cycles at 1000 kHz (cycles/ms) = 50 misses/ms.
        assert!((report.llc_misses_per_cpu_ms(1000) - 50.0).abs() < 1e-12);
        assert!((report.blocked_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_report_metrics_are_zero() {
        let report = VmReport {
            vm: VmId(1),
            name: "idle".into(),
            pmcs: PmcSet::default(),
            cycles_run: 0,
            ticks_scheduled: 0,
            ticks_elapsed: 0,
            punishments: 0,
            ticks_blocked: 0,
            blocked_cycles: 0,
        };
        assert_eq!(report.ipc(), 0.0);
        assert_eq!(report.cpu_share(), 0.0);
        assert_eq!(report.llc_misses_per_cpu_ms(1000), 0.0);
        assert_eq!(report.instructions_per_tick(), 0.0);
        assert_eq!(report.blocked_fraction(), 0.0);
    }
}
