//! A simplified Linux CFS (Completely Fair Scheduler), the substrate of the
//! paper's KS4Linux prototype (KVM runs VMs as ordinary Linux threads
//! scheduled by CFS).
//!
//! Each vCPU accumulates *virtual runtime* inversely proportional to its
//! weight; the scheduler always runs the candidate with the smallest virtual
//! runtime. An optional bandwidth cap (the CFS quota/period mechanism) limits
//! how much CPU a vCPU may consume per accounting window, which is what the
//! Kyoto extension uses as its punishment lever on Linux.

use crate::scheduler::{Priority, Scheduler, TickReport};
use crate::vm::{VcpuId, VmConfig};
use kyoto_sim::topology::CoreId;
use std::collections::BTreeMap;

/// Default CFS weight corresponding to nice 0 (Linux's `NICE_0_LOAD`).
pub const NICE_0_WEIGHT: u32 = 1024;

/// Timing parameters of the fair scheduler's bandwidth control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfsConfig {
    /// Cycle budget of one tick on one core.
    pub cycles_per_tick: u64,
    /// Ticks per bandwidth-accounting period.
    pub ticks_per_period: u32,
}

impl CfsConfig {
    /// Creates a configuration; values are clamped to at least 1.
    pub fn new(cycles_per_tick: u64, ticks_per_period: u32) -> Self {
        CfsConfig {
            cycles_per_tick: cycles_per_tick.max(1),
            ticks_per_period: ticks_per_period.max(1),
        }
    }

    /// Cycle budget of one accounting period on one core.
    pub fn cycles_per_period(&self) -> u64 {
        self.cycles_per_tick * u64::from(self.ticks_per_period)
    }
}

#[derive(Debug, Clone)]
struct VcpuState {
    weight: u32,
    cap_percent: Option<u32>,
    vruntime: u128,
    window_consumed: u64,
}

/// A weighted-fair vCPU scheduler modelled on Linux CFS.
#[derive(Debug, Clone)]
pub struct CfsScheduler {
    config: CfsConfig,
    vcpus: BTreeMap<VcpuId, VcpuState>,
}

impl CfsScheduler {
    /// Creates an empty fair scheduler.
    pub fn new(config: CfsConfig) -> Self {
        CfsScheduler {
            config,
            vcpus: BTreeMap::new(),
        }
    }

    /// The scheduler's timing configuration.
    pub fn config(&self) -> CfsConfig {
        self.config
    }

    /// Virtual runtime of a vCPU (weighted cycles); `0` for unknown vCPUs.
    pub fn vruntime(&self, vcpu: VcpuId) -> u128 {
        self.vcpus.get(&vcpu).map(|s| s.vruntime).unwrap_or(0)
    }

    /// Whether a vCPU exhausted its bandwidth for the current period.
    pub fn is_throttled(&self, vcpu: VcpuId) -> bool {
        self.vcpus
            .get(&vcpu)
            .map(|s| Self::throttled(&self.config, s))
            .unwrap_or(false)
    }

    fn throttled(config: &CfsConfig, state: &VcpuState) -> bool {
        match state.cap_percent {
            None => false,
            Some(cap) => {
                let allowance = config.cycles_per_period() * u64::from(cap) / 100;
                state.window_consumed >= allowance
            }
        }
    }

    fn min_vruntime(&self) -> u128 {
        self.vcpus.values().map(|s| s.vruntime).min().unwrap_or(0)
    }
}

impl Scheduler for CfsScheduler {
    fn add_vcpu(&mut self, vcpu: VcpuId, config: &VmConfig) {
        // New tasks start at the current minimum vruntime so they neither
        // starve nor monopolise the CPU (CFS places them at min_vruntime).
        let start = self.min_vruntime();
        self.vcpus.insert(
            vcpu,
            VcpuState {
                weight: config.weight.max(1),
                cap_percent: config.cap_percent,
                vruntime: start,
                window_consumed: 0,
            },
        );
    }

    fn remove_vcpu(&mut self, vcpu: VcpuId) {
        self.vcpus.remove(&vcpu);
    }

    fn pick_next(&mut self, _core: CoreId, candidates: &[VcpuId]) -> Option<VcpuId> {
        candidates
            .iter()
            .filter_map(|&vcpu| {
                let state = self.vcpus.get(&vcpu)?;
                if Self::throttled(&self.config, state) {
                    None
                } else {
                    Some((state.vruntime, vcpu.as_key(), vcpu))
                }
            })
            .min()
            .map(|(_, _, vcpu)| vcpu)
    }

    fn account(&mut self, vcpu: VcpuId, report: &TickReport) {
        if let Some(state) = self.vcpus.get_mut(&vcpu) {
            // vruntime advances by consumed * NICE_0_LOAD / weight, exactly
            // like CFS's weighted virtual time.
            state.vruntime += u128::from(report.consumed_cycles) * u128::from(NICE_0_WEIGHT)
                / u128::from(state.weight);
            state.window_consumed += report.consumed_cycles;
        }
    }

    fn on_tick(&mut self, tick: u64) {
        if (tick + 1).is_multiple_of(u64::from(self.config.ticks_per_period)) {
            for state in self.vcpus.values_mut() {
                state.window_consumed = 0;
            }
        }
    }

    fn priority(&self, vcpu: VcpuId) -> Priority {
        if self.is_throttled(vcpu) {
            Priority::Over
        } else {
            Priority::Under
        }
    }

    fn name(&self) -> &'static str {
        "cfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;
    use kyoto_sim::pmc::PmcSet;

    fn vcpu(vm: u16) -> VcpuId {
        VcpuId::new(VmId(vm), 0)
    }

    fn report(consumed: u64) -> TickReport {
        TickReport {
            consumed_cycles: consumed,
            budget_cycles: 100_000,
            pmc_delta: PmcSet::default(),
            pollution_events: 0,
            shadow_llc_misses: None,
            tick_ms: 10,
        }
    }

    fn scheduler() -> CfsScheduler {
        CfsScheduler::new(CfsConfig::new(100_000, 3))
    }

    #[test]
    fn picks_the_smallest_vruntime() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        s.account(vcpu(1), &report(100_000));
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]), Some(vcpu(2)));
    }

    #[test]
    fn weights_slow_down_vruntime_growth() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("heavy").with_weight(2048));
        s.add_vcpu(vcpu(2), &VmConfig::new("light").with_weight(1024));
        s.account(vcpu(1), &report(100_000));
        s.account(vcpu(2), &report(100_000));
        assert!(s.vruntime(vcpu(1)) < s.vruntime(vcpu(2)));
    }

    #[test]
    fn alternates_between_equal_tasks() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10 {
            let chosen = s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]).unwrap();
            s.account(chosen, &report(100_000));
            *counts.entry(chosen).or_insert(0) += 1;
        }
        assert_eq!(counts[&vcpu(1)], 5);
        assert_eq!(counts[&vcpu(2)], 5);
    }

    #[test]
    fn new_tasks_start_at_min_vruntime() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.account(vcpu(1), &report(1_000_000));
        s.add_vcpu(vcpu(2), &VmConfig::new("late"));
        // The latecomer starts at the current minimum vruntime (vm1's value):
        // it is neither infinitely favoured nor starved.
        assert_eq!(s.vruntime(vcpu(2)), s.vruntime(vcpu(1)));
        // Once vm1 runs a little more, the latecomer is preferred.
        s.account(vcpu(1), &report(10_000));
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]), Some(vcpu(2)));
    }

    #[test]
    fn cap_throttles_within_a_period_and_resets() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a").with_cap_percent(50));
        s.account(vcpu(1), &report(200_000)); // > 50% of 300k
        assert!(s.is_throttled(vcpu(1)));
        assert_eq!(s.priority(vcpu(1)), Priority::Over);
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), None);
        s.on_tick(2);
        assert!(!s.is_throttled(vcpu(1)));
        assert_eq!(s.priority(vcpu(1)), Priority::Under);
    }

    #[test]
    fn unknown_vcpus_are_never_picked() {
        let mut s = scheduler();
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(7)]), None);
        assert!(!s.is_throttled(vcpu(7)));
    }

    #[test]
    fn remove_and_name() {
        let mut s = scheduler();
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.remove_vcpu(vcpu(1));
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), None);
        assert_eq!(s.name(), "cfs");
    }

    #[test]
    fn vruntime_is_independent_of_registration_order() {
        // Same population, different registration order: vruntimes and pick
        // decisions must agree after identical histories (pinned by the
        // BTreeMap state map — min_vruntime and the period-reset walk fold
        // over it).
        let vms = [(4u16, 512u32), (1, 64), (3, 256), (2, 128)];
        let mut forward = scheduler();
        for &(vm, weight) in &vms {
            forward.add_vcpu(vcpu(vm), &VmConfig::new("a").with_weight(weight));
        }
        let mut reverse = scheduler();
        for &(vm, weight) in vms.iter().rev() {
            reverse.add_vcpu(vcpu(vm), &VmConfig::new("a").with_weight(weight));
        }
        let all: Vec<VcpuId> = vms.iter().map(|&(vm, _)| vcpu(vm)).collect();
        for tick in 0..9u64 {
            for &(vm, weight) in &vms {
                let charge = report(u64::from(weight) * 50);
                forward.account(vcpu(vm), &charge);
                reverse.account(vcpu(vm), &charge);
            }
            forward.on_tick(tick);
            reverse.on_tick(tick);
            assert_eq!(
                forward.pick_next(CoreId(0), &all),
                reverse.pick_next(CoreId(0), &all)
            );
        }
        for &(vm, _) in &vms {
            assert_eq!(forward.vruntime(vcpu(vm)), reverse.vruntime(vcpu(vm)));
        }
    }
}
