//! VM-to-socket placement policies for consolidation scenarios.
//!
//! The paper's experiments pin every VM by hand because the testbed has one
//! socket. A cloud-scale consolidation run (the `cloudscale` scenario in
//! `kyoto-experiments`) instead places dozens of VMs across an N-socket
//! machine, and *where* they land decides which LLCs they contend for.
//! [`PlacementPolicy`] captures the three classic strategies; the planner
//! produces ordinary pinnings and NUMA nodes, so placement flows through the
//! scheduler's pinning filter and `Machine::route` exactly like a hand-built
//! scenario — no side channel into the engine.

use crate::vm::VmConfig;
use kyoto_sim::topology::{CoreId, MachineConfig, NumaNode, SocketId};
use serde::{Deserialize, Serialize};

/// How a consolidation scenario spreads VMs over the machine's sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// VM `i` lands on socket `i % sockets`, cores within a socket are
    /// filled round-robin. Memory follows the vCPU (always local), the
    /// default of schedulers that balance load but ignore topology.
    RoundRobin,
    /// Sockets are filled one after the other: a VM only spills to the next
    /// socket once every core of the current one is occupied, and once every
    /// core of the machine is occupied the fill wraps around (VMs then
    /// time-share cores). Models consolidation-first packing.
    Packed,
    /// Greedy NUMA-aware balancing: each VM goes to the socket with the
    /// smallest total working-set load so far, and its memory is pinned to
    /// that node. Models a topology-aware provider placing by memory
    /// footprint.
    NumaAware,
}

impl PlacementPolicy {
    /// Every policy, in display order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::Packed,
        PlacementPolicy::NumaAware,
    ];

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::NumaAware => "numa-aware",
        }
    }
}

/// Where one (single-vCPU) VM ends up: the core it is pinned to, the socket
/// that core belongs to, and the NUMA node its memory is placed on (`None`
/// means "local to wherever the vCPU runs", the hypervisor default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Socket the VM's core belongs to.
    pub socket: SocketId,
    /// Core the VM's vCPU is pinned to.
    pub core: CoreId,
    /// Explicit memory node, if the policy pins memory.
    pub numa_node: Option<NumaNode>,
}

impl Placement {
    /// Applies this placement to a VM configuration (pinning + NUMA node).
    pub fn apply(&self, config: VmConfig) -> VmConfig {
        let config = config.pinned_to(vec![self.core]);
        match self.numa_node {
            Some(node) => config.on_numa_node(node),
            None => config,
        }
    }
}

/// Computes the placement of `working_sets.len()` single-vCPU VMs on
/// `machine` under `policy`. `working_sets[i]` is the working-set size in
/// bytes of VM `i` (only [`PlacementPolicy::NumaAware`] reads it).
///
/// The plan is a pure function of its inputs — two calls with the same
/// arguments return identical placements (a property test pins this) — and
/// every returned core exists on the machine.
pub fn place_vms(
    policy: PlacementPolicy,
    machine: &MachineConfig,
    working_sets: &[u64],
) -> Vec<Placement> {
    let sockets = machine.sockets;
    let cores_per_socket = machine.cores_per_socket;
    let mut placements = Vec::with_capacity(working_sets.len());
    match policy {
        PlacementPolicy::RoundRobin => {
            // Per-socket arrival counters fill the socket's cores in order.
            let mut arrivals = vec![0usize; sockets];
            for i in 0..working_sets.len() {
                let socket = SocketId(i % sockets);
                let core = machine
                    .core_on(socket, arrivals[socket.0] % cores_per_socket)
                    .expect("socket and core index in range");
                arrivals[socket.0] += 1;
                placements.push(Placement {
                    socket,
                    core,
                    numa_node: None,
                });
            }
        }
        PlacementPolicy::Packed => {
            for i in 0..working_sets.len() {
                let slot = i % (sockets * cores_per_socket);
                let socket = SocketId(slot / cores_per_socket);
                let core = machine
                    .core_on(socket, slot % cores_per_socket)
                    .expect("socket and core index in range");
                placements.push(Placement {
                    socket,
                    core,
                    numa_node: None,
                });
            }
        }
        PlacementPolicy::NumaAware => {
            let mut load = vec![0u64; sockets];
            let mut occupancy = vec![0usize; sockets];
            for &working_set in working_sets {
                let socket = SocketId(
                    (0..sockets)
                        .min_by_key(|&s| (load[s], s))
                        .expect("at least one socket"),
                );
                let core = machine
                    .core_on(socket, occupancy[socket.0] % cores_per_socket)
                    .expect("socket and core index in range");
                load[socket.0] += working_set;
                occupancy[socket.0] += 1;
                placements.push(Placement {
                    socket,
                    core,
                    numa_node: Some(NumaNode(socket.0)),
                });
            }
        }
    }
    placements
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::cloud_machine(4)
    }

    #[test]
    fn round_robin_cycles_sockets() {
        let placements = place_vms(PlacementPolicy::RoundRobin, &machine(), &[1; 8]);
        let sockets: Vec<usize> = placements.iter().map(|p| p.socket.0).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(placements.iter().all(|p| p.numa_node.is_none()));
        // Two VMs on the same socket occupy different cores.
        assert_ne!(placements[0].core, placements[4].core);
    }

    #[test]
    fn packed_fills_a_socket_before_spilling() {
        let config = machine();
        let placements = place_vms(PlacementPolicy::Packed, &config, &[1; 10]);
        let sockets: Vec<usize> = placements.iter().map(|p| p.socket.0).collect();
        // 4 cores per socket: the first four VMs fill socket 0, the next
        // four fill socket 1, the last two start socket 2.
        assert_eq!(sockets, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        // Wrap-around: VM 16 lands back on socket 0 core 0 (time-sharing).
        let wrapped = place_vms(PlacementPolicy::Packed, &config, &[1; 17]);
        assert_eq!(wrapped[16].socket, SocketId(0));
        assert_eq!(wrapped[16].core, wrapped[0].core);
    }

    #[test]
    fn numa_aware_balances_by_working_set_and_pins_memory() {
        // One huge VM followed by small ones: the small ones must all avoid
        // the huge VM's socket until the load evens out.
        let placements = place_vms(
            PlacementPolicy::NumaAware,
            &machine(),
            &[1000, 10, 10, 10, 10],
        );
        assert_eq!(placements[0].socket, SocketId(0));
        for p in &placements[1..] {
            assert_ne!(p.socket, SocketId(0), "small VMs avoid the loaded socket");
        }
        for p in placements {
            assert_eq!(p.numa_node, Some(NumaNode(p.socket.0)));
        }
    }

    #[test]
    fn placements_always_reference_existing_cores() {
        let config = machine();
        for policy in PlacementPolicy::ALL {
            for count in [1usize, 7, 33] {
                let sets: Vec<u64> = (0..count as u64).map(|i| (i + 1) * 4096).collect();
                for p in place_vms(policy, &config, &sets) {
                    assert!(p.core.0 < config.num_cores());
                    assert_eq!(config.socket_of_core(p.core), Some(p.socket));
                }
            }
        }
    }

    #[test]
    fn apply_sets_pinning_and_numa_node() {
        let placement = Placement {
            socket: SocketId(1),
            core: CoreId(5),
            numa_node: Some(NumaNode(1)),
        };
        let config = placement.apply(VmConfig::new("vm"));
        assert_eq!(config.pinned_core(0), Some(CoreId(5)));
        assert_eq!(config.numa_node, Some(NumaNode(1)));
        let local = Placement {
            numa_node: None,
            ..placement
        };
        assert_eq!(local.apply(VmConfig::new("vm")).numa_node, None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PlacementPolicy::RoundRobin.label(), "round-robin");
        assert_eq!(PlacementPolicy::Packed.label(), "packed");
        assert_eq!(PlacementPolicy::NumaAware.label(), "numa-aware");
        assert_eq!(PlacementPolicy::ALL.len(), 3);
    }
}
