//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * LLC replacement policy (LRU vs BIP vs DIP vs Random) under the Fig. 1
//!   parallel-contention scenario — quantifies how much of the contention is
//!   a property of the replacement policy;
//! * pollution-monitoring strategy (direct PMCs vs socket dedication vs
//!   simulator attribution) under the Fig. 5 scenario — quantifies the cost
//!   of accurate attribution;
//! * scheduler tick length — quantifies the cost of finer-grained
//!   scheduling/monitoring (the knob swept in Fig. 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kyoto_bench::bench_config;
use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::{MonitoringStrategy, SocketDedicationConfig};
use kyoto_hypervisor::hypervisor::HypervisorConfig;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_hypervisor::xen_hypervisor;
use kyoto_sim::replacement::ReplacementPolicy;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use std::time::Duration;

const TICKS: u64 = 8;

fn contention_run(policy: ReplacementPolicy, scale: u64) -> f64 {
    let machine_config = MachineConfig::scaled_paper_machine(scale).with_llc_policy(policy);
    let mut hv = xen_hypervisor(Machine::new(machine_config), HypervisorConfig::default());
    let sensitive = hv
        .add_vm_with(
            VmConfig::new("gcc").pinned_to(vec![CoreId(0)]),
            Box::new(SpecWorkload::new(SpecApp::Gcc, scale, 1)),
        )
        .expect("valid VM");
    hv.add_vm_with(
        VmConfig::new("lbm").pinned_to(vec![CoreId(1)]),
        Box::new(SpecWorkload::new(SpecApp::Lbm, scale, 2)),
    )
    .expect("valid VM");
    hv.run_ticks(TICKS);
    hv.report(sensitive).expect("vm exists").ipc()
}

fn kyoto_run(strategy: MonitoringStrategy, scale: u64) -> u64 {
    let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(scale));
    let mut hv = ks4xen_hypervisor(machine, HypervisorConfig::default(), strategy);
    if matches!(strategy, MonitoringStrategy::SimulatorAttribution) {
        hv.engine_mut()
            .enable_shadow_attribution()
            .expect("valid LLC geometry");
    }
    let permit = 500.0 / (scale as f64 / 128.0);
    hv.add_vm_with(
        VmConfig::new("gcc").with_llc_cap(permit),
        Box::new(SpecWorkload::new(SpecApp::Gcc, scale, 1)),
    )
    .expect("valid VM");
    let dis = hv
        .add_vm_with(
            VmConfig::new("lbm").with_llc_cap(permit),
            Box::new(SpecWorkload::new(SpecApp::Lbm, scale, 2)),
        )
        .expect("valid VM");
    hv.run_ticks(TICKS);
    hv.report(dis).expect("vm exists").punishments
}

fn tick_length_run(tick_ms: u64, scale: u64) -> f64 {
    let machine = Machine::new(MachineConfig::scaled_paper_machine(scale));
    let config = HypervisorConfig::default().with_tick_ms(tick_ms);
    let mut hv = xen_hypervisor(machine, config);
    let vm = hv
        .add_vm_with(
            VmConfig::new("povray").pinned_to(vec![CoreId(0)]),
            Box::new(SpecWorkload::new(SpecApp::Povray, scale, 1)),
        )
        .expect("valid VM");
    hv.run_ms(80);
    hv.report(vm).expect("vm exists").ipc()
}

fn bench_replacement_policies(c: &mut Criterion) {
    let scale = bench_config().scale;
    let mut group = c.benchmark_group("ablation_replacement_policy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Bip,
        ReplacementPolicy::Dip,
        ReplacementPolicy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| b.iter(|| contention_run(policy, scale)),
        );
    }
    group.finish();
}

fn bench_monitoring_strategies(c: &mut Criterion) {
    let scale = bench_config().scale;
    let mut group = c.benchmark_group("ablation_monitoring_strategy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let strategies = [
        ("direct-pmc", MonitoringStrategy::DirectPmc),
        (
            "socket-dedication",
            MonitoringStrategy::SocketDedication(SocketDedicationConfig::default()),
        ),
        ("simulator", MonitoringStrategy::SimulatorAttribution),
    ];
    for (name, strategy) in strategies {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &strategy,
            |b, &strategy| b.iter(|| kyoto_run(strategy, scale)),
        );
    }
    group.finish();
}

fn bench_tick_length(c: &mut Criterion) {
    let scale = bench_config().scale;
    let mut group = c.benchmark_group("ablation_tick_length");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for tick_ms in [2u64, 5, 10, 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tick_ms),
            &tick_ms,
            |b, &tick_ms| b.iter(|| tick_length_run(tick_ms, scale)),
        );
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_replacement_policies,
    bench_monitoring_strategies,
    bench_tick_length
);
criterion_main!(ablations);
