//! Micro-benchmarks of the simulation substrate itself: cache lookups,
//! hierarchy walks, engine throughput, workload generation and scheduler
//! decisions. These bound how much simulated time the figure benches can
//! afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kyoto_hypervisor::credit::{CreditConfig, CreditScheduler};
use kyoto_hypervisor::scheduler::Scheduler;
use kyoto_hypervisor::vm::{VcpuId, VmConfig, VmId};
use kyoto_sim::cache::{Cache, CacheConfig};
use kyoto_sim::engine::{ExecSlot, SimEngine};
use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
use kyoto_sim::workload::Workload;
use kyoto_workloads::micro::PointerChase;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use std::time::Duration;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_cache");
    group.throughput(Throughput::Elements(10_000));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("llc_lookup_hit_heavy", |b| {
        let mut cache = Cache::new(CacheConfig::new(640 * 1024, 20, 64)).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                cache.access((i % 4096) * 64, 1);
                i += 1;
            }
        })
    });
    group.bench_function("llc_lookup_miss_heavy", |b| {
        let mut cache = Cache::new(CacheConfig::new(640 * 1024, 20, 64)).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                cache.access(i * 64, (i % 4) as u16 + 1);
                i += 1;
            }
        })
    });
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_engine");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    for slots in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("run_slots_100k_cycles", slots),
            &slots,
            |b, &slots| {
                let machine = Machine::new(MachineConfig::scaled_paper_machine(64));
                let mut engine = SimEngine::new(machine);
                let mut workloads: Vec<SpecWorkload> = (0..slots)
                    .map(|i| SpecWorkload::new(SpecApp::Gcc, 64, i as u64))
                    .collect();
                b.iter(|| {
                    let mut slot_refs: Vec<ExecSlot<'_>> = workloads
                        .iter_mut()
                        .enumerate()
                        .map(|(i, w)| ExecSlot::new(CoreId(i), i as u16 + 1, w))
                        .collect();
                    engine.run_slots(&mut slot_refs, 100_000)
                })
            },
        );
        // The per-op baseline the batched path is measured against (the two
        // are bit-identical in results; see the engine equivalence tests).
        group.bench_with_input(
            BenchmarkId::new("run_slots_reference_100k_cycles", slots),
            &slots,
            |b, &slots| {
                let machine = Machine::new(MachineConfig::scaled_paper_machine(64));
                let mut engine = SimEngine::new(machine);
                let mut workloads: Vec<SpecWorkload> = (0..slots)
                    .map(|i| SpecWorkload::new(SpecApp::Gcc, 64, i as u64))
                    .collect();
                b.iter(|| {
                    let mut slot_refs: Vec<ExecSlot<'_>> = workloads
                        .iter_mut()
                        .enumerate()
                        .map(|(i, w)| ExecSlot::new(CoreId(i), i as u16 + 1, w))
                        .collect();
                    engine.run_slots_reference(&mut slot_refs, 100_000)
                })
            },
        );
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_workloads");
    group.throughput(Throughput::Elements(100_000));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("pointer_chase_ops", |b| {
        let mut chase = PointerChase::new(1 << 20, 1);
        b.iter(|| {
            for _ in 0..100_000 {
                criterion::black_box(chase.next_op());
            }
        })
    });
    group.bench_function("spec_lbm_ops", |b| {
        let mut lbm = SpecWorkload::new(SpecApp::Lbm, 64, 1);
        b.iter(|| {
            for _ in 0..100_000 {
                criterion::black_box(lbm.next_op());
            }
        })
    });
    group.finish();
}

fn bench_scheduler_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_scheduler");
    group.throughput(Throughput::Elements(10_000));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("credit_pick_next_16_vcpus", |b| {
        let mut scheduler = CreditScheduler::new(CreditConfig::new(4, 100_000, 3));
        let vcpus: Vec<VcpuId> = (0..16)
            .map(|i| VcpuId::new(VmId(i as u16 + 1), 0))
            .collect();
        for (i, vcpu) in vcpus.iter().enumerate() {
            scheduler.add_vcpu(*vcpu, &VmConfig::new(format!("vm{i}")));
        }
        b.iter(|| {
            for core in 0..10_000 {
                criterion::black_box(scheduler.pick_next(CoreId(core % 4), &vcpus));
            }
        })
    });
    group.finish();
}

criterion_group!(
    substrate,
    bench_cache_access,
    bench_engine_throughput,
    bench_workload_generation,
    bench_scheduler_decisions
);
criterion_main!(substrate);
