//! Criterion benches: one group per table/figure of the paper.
//!
//! Each bench measures the end-to-end generation of the corresponding
//! figure's dataset at the (small) bench fidelity, so `cargo bench` both
//! regenerates every result and tracks the cost of doing so.

use criterion::{criterion_group, criterion_main, Criterion};
use kyoto_bench::bench_config;
use kyoto_experiments::{
    fig1, fig10, fig11, fig12, fig2, fig3, fig4, fig5, fig6, fig8, fig9, tables,
};
use kyoto_workloads::spec::SpecApp;
use std::time::Duration;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group
}

fn bench_tables(c: &mut Criterion) {
    let mut group = configure(c);
    group.bench_function("table1", |b| b.iter(|| tables::table1().to_table()));
    group.bench_function("table2", |b| b.iter(|| tables::table2().to_table()));
    group.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig1_contention_matrix", |b| b.iter(|| fig1::run(&config)));
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig2_llcm_traces", |b| {
        b.iter(|| fig2::run_slices(&config, 3))
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig3_cpu_lever", |b| {
        b.iter(|| fig3::run_with_caps(&config, &[20, 60, 100]))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let config = bench_config();
    let apps = [
        SpecApp::Lbm,
        SpecApp::Blockie,
        SpecApp::Mcf,
        SpecApp::Gcc,
        SpecApp::Bzip,
    ];
    let mut group = configure(c);
    group.bench_function("fig4_indicator_ranking", |b| {
        b.iter(|| fig4::run_with_apps(&config, &apps))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig5_ks4xen_effectiveness", |b| {
        b.iter(|| fig5::run_with_trace_ticks(&config, 24))
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig6_scalability", |b| {
        b.iter(|| fig6::run_with_counts(&config, &[1, 4, 8]))
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig8_pisces_comparison", |b| b.iter(|| fig8::run(&config)));
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let config = bench_config();
    let apps = [SpecApp::Lbm, SpecApp::Milc, SpecApp::Bzip];
    let mut group = configure(c);
    group.bench_function("fig9_migration_overhead", |b| {
        b.iter(|| fig9::run_with_apps(&config, &apps))
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig10_isolation_skipping", |b| {
        b.iter(|| fig10::run(&config))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let config = bench_config();
    let apps = [SpecApp::Lbm, SpecApp::Gcc, SpecApp::Hmmer];
    let mut group = configure(c);
    group.bench_function("fig11_simulator_attribution", |b| {
        b.iter(|| fig11::run_with_apps(&config, &apps))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let config = bench_config();
    let mut group = configure(c);
    group.bench_function("fig12_overhead", |b| {
        b.iter(|| fig12::run_with_slices(&config, &[10, 30]))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(figures);
