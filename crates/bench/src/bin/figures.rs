//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p kyoto-bench --bin figures -- all
//! cargo run --release -p kyoto-bench --bin figures -- fig1 fig5
//! cargo run --release -p kyoto-bench --bin figures -- --quick all
//! cargo run --release -p kyoto-bench --bin figures -- --jobs 4 all
//! cargo run --release -p kyoto-bench --bin figures -- --parallel-engine all
//! cargo run --release -p kyoto-bench --bin figures -- --scenario cloudscale
//! cargo run --release -p kyoto-bench --bin figures -- --scenario fleet
//! cargo run --release -p kyoto-bench --bin figures -- --scenario churn
//! cargo run --release -p kyoto-bench --bin figures -- --scenario failures
//! cargo run --release -p kyoto-bench --bin figures -- --no-timing all
//! cargo run --release -p kyoto-bench --bin figures -- --scenario service --trace-out t.txt
//! cargo run --release -p kyoto-bench --bin figures -- --trace-out trace.json all
//! ```
//!
//! Figure scenarios are independent: each builds its own machine, engine and
//! hypervisor from the shared [`ExperimentConfig`] and derives deterministic
//! per-VM seeds from it. `--jobs N` therefore runs them on `N` scoped worker
//! threads (the cloudscale and fleet sweeps additionally fan their own
//! cells out over the same budget); outputs are buffered and printed in the
//! requested order, so the report is byte-identical whatever the
//! parallelism. The `fleet` scenario (the `kyoto-cluster` subsystem,
//! including its churn sweep — `churn` renders that half alone) runs its
//! cluster cells on scoped threads when `--parallel-engine` is set — also
//! bit-identically.
//! `--parallel-engine` additionally runs each scenario's engine ticks with
//! one thread per populated socket (`SimEngine::run_slots_parallel`); the
//! per-socket op order is preserved exactly, so figure content stays
//! byte-identical with the switch on or off. `--no-timing` suppresses the
//! wall-clock lines, making the *entire* output byte-deterministic — the CI
//! determinism gate diffs two such runs. `--scenario NAME` is an explicit
//! way to select one target (identical to passing `NAME` positionally).
//! `--trace-out PATH` additionally captures one representative cycle-domain
//! trace per selected target domain ([`kyoto_experiments::trace`]) and
//! writes the merged document to PATH — Chrome trace-event JSON (open in
//! Perfetto) when PATH ends in `.json`, text format v1 with the
//! `CycleProfile` rollup appended as comments otherwise. Trace timestamps
//! are simulated cycles, so the file is byte-identical across reruns and
//! `--parallel-engine`; the status note goes to stderr, keeping stdout
//! unchanged.

use kyoto_bench::{figures_config, figures_quick_config};
use kyoto_experiments::cloudscale::{self, CloudscaleSweep};
use kyoto_experiments::config::ExperimentConfig;
use kyoto_experiments::failures::{self, FailureSweep};
use kyoto_experiments::fleet::{self, FleetSweep};
use kyoto_experiments::service::{self, ServiceSweep};
use kyoto_experiments::{
    fig1, fig10, fig11, fig12, fig2, fig3, fig4, fig5, fig6, fig8, fig9, interactive, tables,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const ALL_TARGETS: [&str; 19] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "cloudscale",
    "fleet",
    "churn",
    "failures",
    "service",
    "interactive",
];

fn render_target(
    target: &str,
    config: &ExperimentConfig,
    quick: bool,
    jobs: usize,
) -> Option<String> {
    Some(match target {
        "table1" => tables::table1().to_table(),
        "table2" => tables::table2().to_table(),
        "fig1" => fig1::run(config).to_table(),
        "fig2" => fig2::run(config).to_table(),
        "fig3" => fig3::run(config).to_table(),
        "fig4" => fig4::run(config).to_table(),
        "fig5" => fig5::run(config).to_table(),
        "fig6" => fig6::run(config).to_table(),
        "fig8" => fig8::run(config).to_table(),
        "fig9" => fig9::run(config).to_table(),
        "fig10" => fig10::run(config).to_table(),
        "fig11" => fig11::run(config).to_table(),
        "fig12" => fig12::run(config).to_table(),
        "cloudscale" => {
            let sweep = if quick {
                CloudscaleSweep::small()
            } else {
                CloudscaleSweep::standard()
            };
            // The sweep's cells fan out over their own `--jobs`-sized pool,
            // nested inside this scenario worker (transiently up to ~2x the
            // budget while other scenarios finish; scoped threads, so the
            // surplus drains with them). Output is byte-identical whatever
            // the thread count.
            cloudscale::run_with_sweep_jobs(config, &sweep, jobs).to_table()
        }
        "fleet" => {
            let sweep = if quick {
                FleetSweep::small()
            } else {
                FleetSweep::standard()
            };
            // Static consolidation cells plus the churn sweep, fanned out
            // over the shared `--jobs` budget like cloudscale's cells.
            fleet::run_with_sweep_jobs(config, &sweep, jobs).to_table()
        }
        "churn" => {
            // The churn half alone: fleet dynamics (VM arrival/departure
            // streams, a scripted drain/join cycle) under every policy in
            // both planner modes — the CI determinism gate's churn target.
            let sweep = if quick {
                FleetSweep::small()
            } else {
                FleetSweep::standard()
            };
            fleet::run_churn_with_jobs(config, &sweep, jobs)
                .map(|churn| churn.to_table())
                .unwrap_or_else(|| "Fleet churn: no churn sweep configured\n".to_string())
        }
        "failures" => {
            // The fleet under injected faults: cell crashes (orphans
            // re-admitted through the bounded-backoff retry queue),
            // slowdowns and mid-migration aborts, swept over crash rate x
            // policy x planner mode — the CI determinism gate's failures
            // target.
            let sweep = if quick {
                FailureSweep::small()
            } else {
                FailureSweep::standard()
            };
            failures::run_with_sweep_jobs(config, &sweep, jobs).to_table()
        }
        "service" => {
            // The fleet behind the kyoto-service control plane: a request
            // trace replayed through the SLA-aware admission controller
            // over arrival rate x admission policy, with a mid-trace
            // checkpoint/restore check baked in — the CI determinism
            // gate's service target.
            let sweep = if quick {
                ServiceSweep::small()
            } else {
                ServiceSweep::standard()
            };
            service::run_with_sweep_jobs(config, &sweep, jobs).to_table()
        }
        "interactive" => {
            // Sleep-mostly latency-sensitive VMs (Ready/Running/Blocked
            // lifecycle, timer wakes) consolidated with batch polluters
            // under KS4Xen — the CI determinism gate's interactive target.
            interactive::run(config).to_table()
        }
        _ => return None,
    })
}

/// A rendered target: its table (when the name was known) plus how long the
/// scenario took.
type Rendered = (Option<String>, Duration);

/// Renders every target on up to `jobs` worker threads, returning outputs in
/// input order.
fn render_all(
    targets: &[&str],
    config: &ExperimentConfig,
    jobs: usize,
    quick: bool,
) -> Vec<Rendered> {
    let results: Mutex<Vec<Option<Rendered>>> = Mutex::new(vec![None; targets.len()]);
    let cursor = AtomicUsize::new(0);
    let workers = jobs.clamp(1, targets.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(target) = targets.get(index) else {
                    break;
                };
                let start = Instant::now();
                let output = render_target(target, config, quick, jobs);
                let elapsed = start.elapsed();
                results.lock().expect("no poisoned worker")[index] = Some((output, elapsed));
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned worker")
        .into_iter()
        .map(|entry| entry.expect("every target rendered"))
        .collect()
}

fn parse_jobs(args: &[String]) -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix("--jobs=") {
            return value.parse().unwrap_or_else(|_| default()).max(1);
        }
        if arg == "--jobs" {
            // Only a numeric follower is the value; `--jobs fig1` keeps
            // fig1 as a target and uses the default parallelism.
            if let Some(jobs) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                return 1usize.max(jobs);
            }
            return default();
        }
    }
    default()
}

fn parse_trace_out(args: &[String]) -> Option<String> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.to_string());
        }
        if arg == "--trace-out" {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Captures the selected targets' representative traces and writes the
/// merged document to `path` — Chrome JSON for `.json`, text v1 with the
/// cycle-profile rollup otherwise. Status goes to stderr so stdout stays
/// byte-identical with and without the flag.
fn write_trace(path: &str, targets: &[&str], config: &ExperimentConfig) {
    let doc = kyoto_experiments::trace::capture_merged(targets, config);
    let output = if path.ends_with(".json") {
        let json = kyoto_trace::to_chrome_json(&doc);
        kyoto_trace::validate_json(&json).expect("chrome trace export is valid JSON");
        json
    } else {
        kyoto_experiments::trace::render_with_profile(&doc)
    };
    if let Err(error) = std::fs::write(path, output) {
        eprintln!("failed to write trace to `{path}`: {error}");
        std::process::exit(1);
    }
    eprintln!("[trace written to {path}]");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let parallel_engine = args.iter().any(|a| a == "--parallel-engine");
    let no_timing = args.iter().any(|a| a == "--no-timing");
    let jobs = parse_jobs(&args);
    let config = if quick {
        figures_quick_config()
    } else {
        figures_config()
    }
    .with_parallel_engine(parallel_engine);
    let trace_out = parse_trace_out(&args);
    let mut skip_next = false;
    let mut skip_path = false;
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_path {
                // `--trace-out`'s follower is always its value.
                skip_path = false;
                return false;
            }
            if skip_next {
                skip_next = false;
                // Consume the value only when it is numeric; `--jobs fig1`
                // keeps fig1 as a target.
                if a.parse::<usize>().is_ok() {
                    return false;
                }
            }
            if a.as_str() == "--jobs" {
                skip_next = true;
                return false;
            }
            if a.as_str() == "--trace-out" {
                skip_path = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|a| a.as_str())
        .collect();
    // `--scenario NAME` selects a target explicitly (equivalent to passing
    // NAME positionally; the value is already kept by the filter above).
    for (i, arg) in args.iter().enumerate() {
        let name = match arg.strip_prefix("--scenario=") {
            Some(name) => Some(name),
            None if arg == "--scenario" => args.get(i + 1).map(|a| a.as_str()),
            None => None,
        };
        if let Some(name) = name {
            if !targets.contains(&name) {
                targets.push(name);
            }
        }
    }
    if targets.is_empty() || targets.contains(&"all") {
        targets = ALL_TARGETS.to_vec();
    }
    println!(
        "Kyoto figure regeneration (scale 1/{}, {} warm-up + {} measured ticks per scenario, {} jobs)",
        config.scale, config.warmup_ticks, config.measure_ticks, jobs
    );
    println!("{}", "=".repeat(72));
    let start = Instant::now();
    for (target, (output, elapsed)) in targets
        .iter()
        .zip(render_all(&targets, &config, jobs, quick))
    {
        match output {
            Some(table) => {
                println!("{table}");
                if !no_timing {
                    println!("[{} generated in {:.1?}]", target, elapsed);
                }
            }
            None => eprintln!("unknown target `{target}` (known: {ALL_TARGETS:?})"),
        }
        println!("{}", "=".repeat(72));
    }
    if !no_timing {
        println!("[all targets done in {:.1?}]", start.elapsed());
    }
    if let Some(path) = trace_out {
        write_trace(&path, &targets, &config);
    }
}
