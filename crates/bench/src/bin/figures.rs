//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p kyoto-bench --bin figures -- all
//! cargo run --release -p kyoto-bench --bin figures -- fig1 fig5
//! cargo run --release -p kyoto-bench --bin figures -- --quick all
//! ```

use kyoto_bench::{figures_config, figures_quick_config};
use kyoto_experiments::config::ExperimentConfig;
use kyoto_experiments::{
    fig1, fig10, fig11, fig12, fig2, fig3, fig4, fig5, fig6, fig8, fig9, tables,
};
use std::time::Instant;

const ALL_TARGETS: [&str; 13] = [
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10",
    "fig11", "fig12",
];

fn print_target(target: &str, config: &ExperimentConfig) {
    let start = Instant::now();
    let output = match target {
        "table1" => tables::table1().to_table(),
        "table2" => tables::table2().to_table(),
        "fig1" => fig1::run(config).to_table(),
        "fig2" => fig2::run(config).to_table(),
        "fig3" => fig3::run(config).to_table(),
        "fig4" => fig4::run(config).to_table(),
        "fig5" => fig5::run(config).to_table(),
        "fig6" => fig6::run(config).to_table(),
        "fig8" => fig8::run(config).to_table(),
        "fig9" => fig9::run(config).to_table(),
        "fig10" => fig10::run(config).to_table(),
        "fig11" => fig11::run(config).to_table(),
        "fig12" => fig12::run(config).to_table(),
        other => {
            eprintln!("unknown target `{other}` (known: {ALL_TARGETS:?})");
            return;
        }
    };
    println!("{output}");
    println!("[{} generated in {:.1?}]", target, start.elapsed());
    println!("{}", "=".repeat(72));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let config = if quick {
        figures_quick_config()
    } else {
        figures_config()
    };
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    if targets.is_empty() || targets.contains(&"all") {
        targets = ALL_TARGETS.to_vec();
    }
    println!(
        "Kyoto figure regeneration (scale 1/{}, {} warm-up + {} measured ticks per scenario)",
        config.scale, config.warmup_ticks, config.measure_ticks
    );
    println!("{}", "=".repeat(72));
    for target in targets {
        print_target(target, &config);
    }
}
