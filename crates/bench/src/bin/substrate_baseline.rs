//! Measures the raw simulation substrate and writes `BENCH_substrate.json`.
//!
//! The figure benches tell us what a whole scenario costs; this binary
//! isolates the two hot paths underneath every scenario — `Cache::access`
//! and `SimEngine::run_slots` — and records their throughput, plus the
//! speedup of the batched/epoch engine path over the per-op reference path,
//! as a committed JSON baseline. Subsequent PRs rerun it to track the
//! substrate's performance trajectory (see `DESIGN.md` for how to read the
//! file).
//!
//! ```text
//! cargo run --release -p kyoto-bench --bin substrate_baseline
//! cargo run --release -p kyoto-bench --bin substrate_baseline -- --stdout
//! ```

use kyoto_bench::bench_config;
use kyoto_bench::legacy::{
    legacy_run_slots, LegacyCache, LegacyMachine, LegacySlot, LegacySpecWorkload,
};
use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::events::{EventSchedule, EventScheduleConfig};
use kyoto_cluster::faults::{FaultPlan, FaultPlanConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_experiments::cloudscale;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_sim::cache::{Cache, CacheConfig};
use kyoto_sim::engine::{ExecSlot, SimEngine};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Measurement repetitions; the best (fastest) repetition is reported to
/// suppress scheduling noise.
const REPS: usize = 9;

struct Sample {
    name: &'static str,
    unit: &'static str,
    value: f64,
}

/// Runs `work` (which processes `amount` units per call) and returns the
/// best units/second over [`REPS`] repetitions.
fn best_rate(amount: f64, mut work: impl FnMut()) -> f64 {
    // One untimed warm-up.
    work();
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let start = Instant::now();
        work();
        let rate = amount / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn cache_samples(samples: &mut Vec<Sample>) {
    const OPS: u64 = 200_000;
    let mut cache = Cache::new(CacheConfig::new(640 * 1024, 20, 64)).unwrap();
    let mut i = 0u64;
    let hit_rate = best_rate(OPS as f64, || {
        for _ in 0..OPS {
            black_box(cache.access((i % 4096) * 64, 1));
            i += 1;
        }
    });
    samples.push(Sample {
        name: "cache_access_hit_heavy",
        unit: "Mops/s",
        value: hit_rate / 1e6,
    });

    let mut cache = Cache::new(CacheConfig::new(640 * 1024, 20, 64)).unwrap();
    let mut i = 0u64;
    let miss_rate = best_rate(OPS as f64, || {
        for _ in 0..OPS {
            black_box(cache.access(i * 64, (i % 4) as u16 + 1));
            i += 1;
        }
    });
    samples.push(Sample {
        name: "cache_access_miss_heavy",
        unit: "Mops/s",
        value: miss_rate / 1e6,
    });

    // The seed's cache (div/mod split, per-eviction Vec, growing tables) on
    // the same access streams.
    let mut cache = LegacyCache::with_seed(CacheConfig::new(640 * 1024, 20, 64), 0x6b796f746f);
    let mut i = 0u64;
    let hit_rate = best_rate(OPS as f64, || {
        for _ in 0..OPS {
            black_box(cache.access((i % 4096) * 64, 1));
            i += 1;
        }
    });
    samples.push(Sample {
        name: "cache_access_hit_heavy_seed",
        unit: "Mops/s",
        value: hit_rate / 1e6,
    });
    let mut cache = LegacyCache::with_seed(CacheConfig::new(640 * 1024, 20, 64), 0x6b796f746f);
    let mut i = 0u64;
    let miss_rate = best_rate(OPS as f64, || {
        for _ in 0..OPS {
            black_box(cache.access(i * 64, (i % 4) as u16 + 1));
            i += 1;
        }
    });
    samples.push(Sample {
        name: "cache_access_miss_heavy_seed",
        unit: "Mops/s",
        value: miss_rate / 1e6,
    });
}

/// Throughput of the frozen seed hot path (`kyoto_bench::legacy`) on the
/// same scenario as [`engine_rate`].
fn seed_engine_rate(slots: usize, scale: u64) -> f64 {
    const BUDGET: u64 = 100_000;
    let mut machine = LegacyMachine::new(MachineConfig::scaled_paper_machine(scale));
    let mut workloads: Vec<LegacySpecWorkload> = (0..slots)
        .map(|i| LegacySpecWorkload::new(SpecApp::Gcc, scale, i as u64))
        .collect();
    best_rate((BUDGET * slots as u64) as f64, || {
        let mut slot_refs: Vec<LegacySlot<'_>> = workloads
            .iter_mut()
            .enumerate()
            .map(|(i, w)| LegacySlot {
                core: CoreId(i),
                owner: i as u16 + 1,
                workload: w,
                pmcs: PmcSet::default(),
            })
            .collect();
        black_box(legacy_run_slots(&mut machine, &mut slot_refs, BUDGET));
    })
}

fn engine_rate(slots: usize, scale: u64, batched: bool) -> f64 {
    const BUDGET: u64 = 100_000;
    let machine = Machine::new(MachineConfig::scaled_paper_machine(scale));
    let mut engine = SimEngine::new(machine);
    let mut workloads: Vec<SpecWorkload> = (0..slots)
        .map(|i| SpecWorkload::new(SpecApp::Gcc, scale, i as u64))
        .collect();
    best_rate((BUDGET * slots as u64) as f64, || {
        let mut slot_refs: Vec<ExecSlot<'_>> = workloads
            .iter_mut()
            .enumerate()
            .map(|(i, w)| ExecSlot::new(CoreId(i), i as u16 + 1, w))
            .collect();
        let reports = if batched {
            engine.run_slots(&mut slot_refs, BUDGET)
        } else {
            engine.run_slots_reference(&mut slot_refs, BUDGET)
        };
        black_box(reports);
    })
}

/// Throughput of the batched path with the cycle-domain trace plane
/// explicitly off (the default: the sink exists but `record_batch_trace`
/// branches out on the enum) or on (every batch emits an
/// `engine.run_slots` span and bumps the op/miss counters; the sink is
/// drained inside the timed region, so the rate includes the full traced
/// cost). Compared against the plain batched row, the off rate proves
/// disabled tracing is noise-level — `ci/check_bench.sh` gates the ratio.
fn traced_engine_rate(slots: usize, scale: u64, enabled: bool) -> f64 {
    const BUDGET: u64 = 100_000;
    let machine = Machine::new(MachineConfig::scaled_paper_machine(scale));
    let mut engine = SimEngine::new(machine);
    if enabled {
        engine.trace_mut().enable();
    }
    let mut workloads: Vec<SpecWorkload> = (0..slots)
        .map(|i| SpecWorkload::new(SpecApp::Gcc, scale, i as u64))
        .collect();
    best_rate((BUDGET * slots as u64) as f64, || {
        let mut slot_refs: Vec<ExecSlot<'_>> = workloads
            .iter_mut()
            .enumerate()
            .map(|(i, w)| ExecSlot::new(CoreId(i), i as u16 + 1, w))
            .collect();
        black_box(engine.run_slots(&mut slot_refs, BUDGET));
        if enabled {
            // Keep the sink from growing across repetitions; the drain is
            // part of the traced cost.
            black_box(engine.trace_mut().drain());
        }
    })
}

/// Throughput of the serial (`run_slots`) or socket-parallel
/// (`run_slots_parallel`) path on the two-socket NUMA machine, with `slots`
/// gcc-like workloads spread evenly across both sockets (4 cores per
/// socket: slot `i` runs on core `(i % 2) * 4 + i / 2`). The simulation
/// results of the two paths are bit-identical per socket — the equivalence
/// property tests prove it — so the ratio is a pure wall-clock speedup.
fn numa_engine_rate(slots: usize, scale: u64, parallel: bool) -> f64 {
    const BUDGET: u64 = 100_000;
    let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(scale));
    let cores_per_socket = machine.config().cores_per_socket;
    let mut engine = SimEngine::new(machine);
    let mut workloads: Vec<SpecWorkload> = (0..slots)
        .map(|i| SpecWorkload::new(SpecApp::Gcc, scale, i as u64))
        .collect();
    best_rate((BUDGET * slots as u64) as f64, || {
        let mut slot_refs: Vec<ExecSlot<'_>> = workloads
            .iter_mut()
            .enumerate()
            .map(|(i, w)| {
                let core = (i % 2) * cores_per_socket + i / 2;
                ExecSlot::new(CoreId(core), i as u16 + 1, w)
            })
            .collect();
        let reports = if parallel {
            engine.run_slots_parallel(&mut slot_refs, BUDGET)
        } else {
            engine.run_slots(&mut slot_refs, BUDGET)
        };
        black_box(reports);
    })
}

/// Throughput of the serial path on the two-socket NUMA machine with eight
/// gcc-like slots (same core mapping as [`numa_engine_rate`]), with either
/// every slot runnable or every other slot marked [`ExecSlot::blocked`].
/// Blocked slots are skipped without charging cycles, so the rate — in
/// nominal cycles over the full slot set, blocked or not — should rise
/// well past the all-runnable row; `ci/check_bench.sh` gates the ratio
/// (`blocked_skip_benefit`) so the skip path never silently degrades into
/// "walk the slot anyway and discard the work".
fn blocked_engine_rate(scale: u64, half_blocked: bool) -> f64 {
    const BUDGET: u64 = 100_000;
    const SLOTS: usize = 8;
    let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(scale));
    let cores_per_socket = machine.config().cores_per_socket;
    let mut engine = SimEngine::new(machine);
    let mut workloads: Vec<SpecWorkload> = (0..SLOTS)
        .map(|i| SpecWorkload::new(SpecApp::Gcc, scale, i as u64))
        .collect();
    best_rate((BUDGET * SLOTS as u64) as f64, || {
        let mut slot_refs: Vec<ExecSlot<'_>> = workloads
            .iter_mut()
            .enumerate()
            .map(|(i, w)| {
                let core = (i % 2) * cores_per_socket + i / 2;
                ExecSlot::new(CoreId(core), i as u16 + 1, w)
                    .with_blocked(half_blocked && i % 2 == 1)
            })
            .collect();
        black_box(engine.run_slots(&mut slot_refs, BUDGET));
    })
}

/// Throughput of the serial or socket-parallel path on an N-socket cloud
/// machine with two gcc-like slots per socket (slot `i` runs on core
/// `(i % sockets) * cores_per_socket + i / sockets`, so every socket hosts
/// two slots). Same bit-identical-per-socket guarantee as
/// [`numa_engine_rate`]; the ratio is a pure wall-clock speedup.
fn cloud_engine_rate(sockets: usize, scale: u64, parallel: bool) -> f64 {
    const BUDGET: u64 = 100_000;
    let slots = sockets * 2;
    let machine = Machine::new(MachineConfig::scaled_cloud_machine(sockets, scale));
    let cores_per_socket = machine.config().cores_per_socket;
    let mut engine = SimEngine::new(machine);
    let mut workloads: Vec<SpecWorkload> = (0..slots)
        .map(|i| SpecWorkload::new(SpecApp::Gcc, scale, i as u64))
        .collect();
    best_rate((BUDGET * slots as u64) as f64, || {
        let mut slot_refs: Vec<ExecSlot<'_>> = workloads
            .iter_mut()
            .enumerate()
            .map(|(i, w)| {
                let core = (i % sockets) * cores_per_socket + i / sockets;
                ExecSlot::new(CoreId(core), i as u16 + 1, w)
            })
            .collect();
        let reports = if parallel {
            engine.run_slots_parallel(&mut slot_refs, BUDGET)
        } else {
            engine.run_slots(&mut slot_refs, BUDGET)
        };
        black_box(reports);
    })
}

/// Wall-clock rate (epochs/second) of the cluster control loop on a fleet
/// of `cells` single-socket cells (two gcc-like VMs each), with cell epochs
/// executed serially or one-per-scoped-thread. The simulation results of
/// the two modes are bit-identical (`kyoto-cluster`'s property tests prove
/// it), so the ratio is a pure wall-clock speedup — the cluster-level
/// analogue of the socket-parallel engine rows. Needs as many hardware
/// threads as cells to approach the ideal.
fn cluster_epoch_rate(cells: usize, scale: u64, parallel: bool) -> f64 {
    cluster_epoch_rate_faulted(cells, scale, parallel, false)
}

/// [`cluster_epoch_rate`] with an optional zero-rate [`FaultPlan`]
/// installed. A zero-rate plan schedules no faults, so the simulation is
/// bit-identical to the plan-free run and the rate ratio isolates the pure
/// bookkeeping cost of the fault boundary (expected ~1.0; CI asserts it
/// stays above `KYOTO_MIN_FAULT_OVERHEAD_RATIO`).
fn cluster_epoch_rate_faulted(
    cells: usize,
    scale: u64,
    parallel: bool,
    zero_rate_plan: bool,
) -> f64 {
    const EPOCHS: u64 = 4;
    best_rate(EPOCHS as f64, || {
        let config = ClusterConfig::new(cells, scale)
            .with_epoch_ticks(5)
            .with_policy(ConsolidationPolicy::LoadBalance)
            .with_parallel_cells(parallel);
        let mut cluster = Cluster::new(config);
        if zero_rate_plan {
            cluster.install_faults(FaultPlan::new(FaultPlanConfig::new(0xFA17)));
        }
        for i in 0..cells * 2 {
            cluster
                .add_vm(
                    CellId(i % cells),
                    VmConfig::new(format!("vm{i}")),
                    Box::new(SpecWorkload::new(SpecApp::Gcc, scale, i as u64)),
                )
                .expect("seeding stays within cell capacity");
        }
        cluster.run_epochs(EPOCHS).expect("bench run is fault-free");
        black_box(cluster.reports());
    })
}

/// Wall-clock rate (epochs/second) of the cluster control loop under full
/// fleet dynamics: a churning fleet of `cells` single-socket cells (two
/// gcc-like VMs each at the start, one arrival and ~0.5 departures per
/// epoch, a drain/join cycle on the last cell) planned by the cost-aware
/// pollution-aware planner, with cell epochs serial or
/// one-per-scoped-thread. Event application is pure control-plane work
/// between epochs, so the two modes stay bit-identical (property-proven in
/// `kyoto-cluster`) and the ratio is a pure wall-clock speedup.
fn fleet_churn_epoch_rate(cells: usize, scale: u64, parallel: bool) -> f64 {
    const EPOCHS: u64 = 4;
    let schedule = EventSchedule::new(
        EventScheduleConfig::new(0xbe9c)
            .with_arrival_rate(1.0)
            .with_departure_rate(0.5)
            .with_drain(1, CellId(cells - 1))
            .with_join(3, CellId(cells - 1)),
    );
    best_rate(EPOCHS as f64, || {
        let config = ClusterConfig::new(cells, scale)
            .with_epoch_ticks(5)
            .with_policy(ConsolidationPolicy::PollutionAware)
            .with_planner(
                PlannerConfig::default()
                    .with_polluter_threshold(200.0)
                    .with_cost_aware(true),
            )
            .with_parallel_cells(parallel);
        let mut cluster = Cluster::new(config);
        for i in 0..cells * 2 {
            cluster
                .add_vm(
                    CellId(i % cells),
                    VmConfig::new(format!("vm{i}")),
                    Box::new(SpecWorkload::new(SpecApp::Gcc, scale, i as u64)),
                )
                .expect("seeding stays within cell capacity");
        }
        let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
            (
                VmConfig::new(format!("churn{index}")),
                Box::new(SpecWorkload::new(SpecApp::Lbm, scale, 0xc0 + index)),
            )
        };
        cluster
            .run_epochs_with_schedule(&schedule, EPOCHS, &mut spawn)
            .expect("bench run is fault-free");
        black_box(cluster.all_reports());
    })
}

fn main() {
    let stdout_only = std::env::args().any(|a| a == "--stdout");
    let config = bench_config();
    let mut samples = Vec::new();
    cache_samples(&mut samples);

    let mut speedups: Vec<(usize, f64)> = Vec::new();
    let mut seed_speedups: Vec<(usize, f64)> = Vec::new();
    let mut untraced_4slots = f64::NAN;
    for slots in [1usize, 2, 4] {
        let batched = engine_rate(slots, config.scale, true);
        if slots == 4 {
            untraced_4slots = batched;
        }
        let reference = engine_rate(slots, config.scale, false);
        let seed = seed_engine_rate(slots, config.scale);
        let name: &'static str = match slots {
            1 => "run_slots_batched_1slot",
            2 => "run_slots_batched_2slots",
            _ => "run_slots_batched_4slots",
        };
        samples.push(Sample {
            name,
            unit: "Msimcycles/s",
            value: batched / 1e6,
        });
        let ref_name: &'static str = match slots {
            1 => "run_slots_reference_1slot",
            2 => "run_slots_reference_2slots",
            _ => "run_slots_reference_4slots",
        };
        samples.push(Sample {
            name: ref_name,
            unit: "Msimcycles/s",
            value: reference / 1e6,
        });
        let seed_name: &'static str = match slots {
            1 => "run_slots_seed_1slot",
            2 => "run_slots_seed_2slots",
            _ => "run_slots_seed_4slots",
        };
        samples.push(Sample {
            name: seed_name,
            unit: "Msimcycles/s",
            value: seed / 1e6,
        });
        speedups.push((slots, batched / reference));
        seed_speedups.push((slots, batched / seed));
    }

    // Trace-plane overhead on the 4-slot batched scenario: explicitly-off
    // tracing must be indistinguishable from the plain batched row
    // (branch-on-enum; `off_vs_untraced` ~1.0, CI gates the floor), and
    // `off_vs_on` records what full span/counter recording costs.
    let (trace_off_vs_untraced, trace_off_vs_on) = {
        let off = traced_engine_rate(4, config.scale, false);
        let on = traced_engine_rate(4, config.scale, true);
        samples.push(Sample {
            name: "run_slots_trace_off_4slots",
            unit: "Msimcycles/s",
            value: off / 1e6,
        });
        samples.push(Sample {
            name: "run_slots_trace_on_4slots",
            unit: "Msimcycles/s",
            value: on / 1e6,
        });
        (off / untraced_4slots, off / on)
    };

    // Blocked-slot skip benefit: eight slots with half of them parked must
    // finish the same nominal cycle budget measurably faster than the
    // all-runnable run, because the engine never walks a blocked slot.
    let blocked_skip_benefit = {
        let all_runnable = blocked_engine_rate(config.scale, false);
        let half_blocked = blocked_engine_rate(config.scale, true);
        samples.push(Sample {
            name: "run_slots_all_runnable_8slots",
            unit: "Msimcycles/s",
            value: all_runnable / 1e6,
        });
        samples.push(Sample {
            name: "run_slots_half_blocked_8slots",
            unit: "Msimcycles/s",
            value: half_blocked / 1e6,
        });
        half_blocked / all_runnable
    };

    // Socket-parallel engine on the two-socket machine: slots split evenly
    // across both sockets, serial `run_slots` vs `run_slots_parallel`.
    // The speedup is machine-dependent (it needs at least two hardware
    // threads to materialise; ideal is ~2x on a 2-socket scenario).
    let mut parallel_speedups: Vec<(usize, f64)> = Vec::new();
    for slots in [2usize, 4, 8] {
        let serial = numa_engine_rate(slots, config.scale, false);
        let parallel = numa_engine_rate(slots, config.scale, true);
        let serial_name: &'static str = match slots {
            2 => "run_slots_serial_2sockets_2slots",
            4 => "run_slots_serial_2sockets_4slots",
            _ => "run_slots_serial_2sockets_8slots",
        };
        samples.push(Sample {
            name: serial_name,
            unit: "Msimcycles/s",
            value: serial / 1e6,
        });
        let parallel_name: &'static str = match slots {
            2 => "run_slots_parallel_2sockets_2slots",
            4 => "run_slots_parallel_2sockets_4slots",
            _ => "run_slots_parallel_2sockets_8slots",
        };
        samples.push(Sample {
            name: parallel_name,
            unit: "Msimcycles/s",
            value: parallel / 1e6,
        });
        parallel_speedups.push((slots, parallel / serial));
    }

    // Cloud-scale machines: the engine's socket-parallel path past two
    // sockets (two slots per socket), plus the end-to-end scenario scaling
    // curve measured through the cloudscale subsystem (hypervisor +
    // placement + engine). Both need as many hardware threads as sockets to
    // approach the ideal speedup; `parallel_bench_threads` records what this
    // host offered.
    let mut cloud_speedups: Vec<(usize, f64)> = Vec::new();
    for sockets in [4usize, 8] {
        let serial = cloud_engine_rate(sockets, config.scale, false);
        let parallel = cloud_engine_rate(sockets, config.scale, true);
        let serial_name: &'static str = match sockets {
            4 => "run_slots_serial_4sockets",
            _ => "run_slots_serial_8sockets",
        };
        samples.push(Sample {
            name: serial_name,
            unit: "Msimcycles/s",
            value: serial / 1e6,
        });
        let parallel_name: &'static str = match sockets {
            4 => "run_slots_parallel_4sockets",
            _ => "run_slots_parallel_8sockets",
        };
        samples.push(Sample {
            name: parallel_name,
            unit: "Msimcycles/s",
            value: parallel / 1e6,
        });
        cloud_speedups.push((sockets, parallel / serial));
    }
    let scaling_curve = cloudscale::measure_parallel_scaling(&config, &[1, 2, 4, 8], 2, 3);

    // Cluster control loop: whole-fleet epochs, serial vs cell-parallel.
    let mut cluster_speedups: Vec<(usize, f64)> = Vec::new();
    for cells in [4usize, 8] {
        let serial = cluster_epoch_rate(cells, config.scale, false);
        let parallel = cluster_epoch_rate(cells, config.scale, true);
        let serial_name: &'static str = match cells {
            4 => "cluster_epoch_serial_4cells",
            _ => "cluster_epoch_serial_8cells",
        };
        samples.push(Sample {
            name: serial_name,
            unit: "epochs/s",
            value: serial,
        });
        let parallel_name: &'static str = match cells {
            4 => "cluster_epoch_parallel_4cells",
            _ => "cluster_epoch_parallel_8cells",
        };
        samples.push(Sample {
            name: parallel_name,
            unit: "epochs/s",
            value: parallel,
        });
        cluster_speedups.push((cells, parallel / serial));
    }

    // Fleet dynamics: the same control loop under churn (arrivals,
    // departures, a drain/join cycle, cost-aware planning), serial vs
    // cell-parallel.
    let mut churn_speedups: Vec<(usize, f64)> = Vec::new();
    {
        let cells = 6usize;
        let serial = fleet_churn_epoch_rate(cells, config.scale, false);
        let parallel = fleet_churn_epoch_rate(cells, config.scale, true);
        samples.push(Sample {
            name: "fleet_churn_epoch_serial_6cells",
            unit: "epochs/s",
            value: serial,
        });
        samples.push(Sample {
            name: "fleet_churn_epoch_parallel_6cells",
            unit: "epochs/s",
            value: parallel,
        });
        churn_speedups.push((cells, parallel / serial));
    }

    // Fault machinery overhead: the same fleet epoch loop with a zero-rate
    // FaultPlan installed vs no plan at all. A zero-rate plan injects
    // nothing, so the two runs are bit-identical and the ratio isolates the
    // fault boundary's bookkeeping cost (~1.0 expected; ci/check_bench.sh
    // asserts a floor).
    let fault_overhead_ratio = {
        let cells = 4usize;
        let bare = cluster_epoch_rate_faulted(cells, config.scale, false, false);
        let planned = cluster_epoch_rate_faulted(cells, config.scale, false, true);
        samples.push(Sample {
            name: "cluster_epoch_no_fault_plan_4cells",
            unit: "epochs/s",
            value: bare,
        });
        samples.push(Sample {
            name: "cluster_epoch_zero_rate_plan_4cells",
            unit: "epochs/s",
            value: planned,
        });
        planned / bare
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"kyoto-substrate-bench/v1\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"scale\": {}, \"seed\": {}, \"engine_cycle_budget\": 100000 }},",
        config.scale, config.seed
    );
    json.push_str("  \"results\": [\n");
    for (i, sample) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"unit\": \"{}\", \"value\": {:.2} }}{}",
            sample.name, sample.unit, sample.value, comma
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"batched_vs_reference_speedup\": {\n");
    for (i, (slots, speedup)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{slots}_slots\": {speedup:.2}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"optimized_vs_seed_speedup\": {\n");
    for (i, (slots, speedup)) in seed_speedups.iter().enumerate() {
        let comma = if i + 1 == seed_speedups.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{slots}_slots\": {speedup:.2}{comma}");
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"parallel_bench_threads\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    json.push_str("  \"parallel_vs_serial_speedup_2sockets\": {\n");
    for (i, (slots, speedup)) in parallel_speedups.iter().enumerate() {
        let comma = if i + 1 == parallel_speedups.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{slots}_slots\": {speedup:.2}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"parallel_vs_serial_speedup_cloud\": {\n");
    for (i, (sockets, speedup)) in cloud_speedups.iter().enumerate() {
        let comma = if i + 1 == cloud_speedups.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{sockets}_sockets\": {speedup:.2}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"cluster_epoch_parallel_vs_serial\": {\n");
    for (i, (cells, speedup)) in cluster_speedups.iter().enumerate() {
        let comma = if i + 1 == cluster_speedups.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{cells}_cells\": {speedup:.2}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"fault_machinery_overhead\": {\n");
    let _ = writeln!(
        json,
        "    \"zero_rate_plan_vs_no_plan\": {fault_overhead_ratio:.2}"
    );
    json.push_str("  },\n");
    json.push_str("  \"trace_overhead\": {\n");
    let _ = writeln!(json, "    \"off_vs_untraced\": {trace_off_vs_untraced:.2},");
    let _ = writeln!(json, "    \"off_vs_on\": {trace_off_vs_on:.2}");
    json.push_str("  },\n");
    json.push_str("  \"blocked_skip_benefit\": {\n");
    let _ = writeln!(
        json,
        "    \"half_blocked_vs_all_runnable\": {blocked_skip_benefit:.2}"
    );
    json.push_str("  },\n");
    json.push_str("  \"fleet_churn_parallel_vs_serial\": {\n");
    for (i, (cells, speedup)) in churn_speedups.iter().enumerate() {
        let comma = if i + 1 == churn_speedups.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{cells}_cells\": {speedup:.2}{comma}");
    }
    json.push_str("  },\n");
    // End-to-end cloudscale scenario wall-clock: serial vs parallel engine,
    // one point per socket count (two VMs per socket).
    json.push_str("  \"parallel_scaling_curve\": [\n");
    for (i, point) in scaling_curve.iter().enumerate() {
        let comma = if i + 1 == scaling_curve.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{ \"sockets\": {}, \"vms\": {}, \"serial_secs\": {:.4}, \"parallel_secs\": {:.4}, \"speedup\": {:.2} }}{}",
            point.sockets,
            point.vms,
            point.serial_secs,
            point.parallel_secs,
            point.speedup(),
            comma
        );
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if !stdout_only {
        std::fs::write("BENCH_substrate.json", &json).expect("write BENCH_substrate.json");
        eprintln!("[baseline written to BENCH_substrate.json]");
    }
}
