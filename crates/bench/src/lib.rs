//! # kyoto-bench — benchmark harness for the Kyoto reproduction
//!
//! * the [`figures`](../figures/index.html) binary regenerates every table
//!   and figure of the paper (`cargo run -p kyoto-bench --bin figures --release -- all`);
//! * `benches/figures_bench.rs` measures the scenario generation of each
//!   figure with Criterion;
//! * `benches/ablation_bench.rs` runs the design-choice ablations called out
//!   in `DESIGN.md` (LLC replacement policy, monitoring strategy, tick
//!   length);
//! * `benches/substrate_bench.rs` measures the raw substrate (cache lookups,
//!   engine throughput, scheduler decisions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod legacy;

use kyoto_experiments::config::ExperimentConfig;

/// The configuration used by the Criterion benches: small enough that each
/// iteration completes in well under a second, large enough that contention
/// phenomena are visible.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 256,
        seed: 42,
        warmup_ticks: 2,
        measure_ticks: 5,
        parallel_engine: false,
    }
}

/// The configuration used by the `figures` binary at standard fidelity.
pub fn figures_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 64,
        seed: 42,
        warmup_ticks: 9,
        measure_ticks: 30,
        parallel_engine: false,
    }
}

/// The configuration used by the `figures` binary at quick fidelity.
pub fn figures_quick_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 128,
        seed: 42,
        warmup_ticks: 5,
        measure_ticks: 12,
        parallel_engine: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_are_ordered_by_cost() {
        assert!(bench_config().total_ticks() <= figures_quick_config().total_ticks());
        assert!(figures_quick_config().total_ticks() <= figures_config().total_ticks());
        assert!(figures_config().scale <= figures_quick_config().scale);
    }
}
