//! Frozen copy of the seed's simulation hot path (the PR 1 baseline).
//!
//! The hot-path overhaul (shift/mask cache indexing, pre-sized owner
//! tables, allocation-free victim scans, batched op streams, epoch
//! interleaving) rewrote the code this module preserves. It exists so the
//! substrate benchmarks can keep measuring the optimized path against the
//! exact pre-optimization implementation — same cost model, same results,
//! different bookkeeping — instead of against a moving target.
//!
//! **Do not optimize this module.** Its slowness is the point. A unit test
//! asserts it still produces bit-identical simulation results to
//! `SimEngine::run_slots`, which keeps the comparison honest.

use kyoto_sim::cache::{CacheConfig, OwnerId};
use kyoto_sim::hierarchy::{AccessKind, MemLevel};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::replacement::{InsertPosition, ReplacementState};
use kyoto_sim::topology::{CoreId, LatencyConfig, MachineConfig, NumaNode};
use kyoto_sim::workload::{Op, Workload};

#[derive(Debug, Clone, Copy)]
struct CacheLine {
    tag: u64,
    owner: OwnerId,
    last_use: u64,
    valid: bool,
}

impl CacheLine {
    const INVALID: CacheLine = CacheLine {
        tag: 0,
        owner: 0,
        last_use: 0,
        valid: false,
    };
}

fn bump(counters: &mut Vec<u64>, owner: OwnerId, delta: i64) {
    let idx = usize::from(owner);
    if counters.len() <= idx {
        counters.resize(idx + 1, 0);
    }
    if delta >= 0 {
        counters[idx] += delta as u64;
    } else {
        counters[idx] = counters[idx].saturating_sub((-delta) as u64);
    }
}

/// The seed's set-associative cache: div/mod address split, grow-on-access
/// owner tables, a `Vec` of timestamps collected per eviction.
pub struct LegacyCache {
    config: CacheConfig,
    num_sets: u64,
    lines: Vec<CacheLine>,
    replacement: ReplacementState,
    clock: u64,
    owner_lines: Vec<u64>,
    owner_misses: Vec<u64>,
    owner_accesses: Vec<u64>,
    /// Lookups that missed (kept so comparisons can sanity-check totals).
    pub misses: u64,
    /// Total lookups.
    pub accesses: u64,
}

impl LegacyCache {
    /// Builds the cache the way the seed's `Cache::with_seed` did.
    pub fn with_seed(config: CacheConfig, seed: u64) -> Self {
        let num_sets = config.num_sets().expect("valid geometry");
        let total_lines = (num_sets * u64::from(config.ways)) as usize;
        LegacyCache {
            replacement: ReplacementState::new(config.policy, seed),
            config,
            num_sets,
            lines: vec![CacheLine::INVALID; total_lines],
            clock: 0,
            owner_lines: Vec::new(),
            owner_misses: Vec::new(),
            owner_accesses: Vec::new(),
            misses: 0,
            accesses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr / u64::from(self.config.line_size)) % self.num_sets
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr / u64::from(self.config.line_size)) / self.num_sets
    }

    /// The seed's `Cache::access`, verbatim modulo struct names: hit scan,
    /// then a second scan for an invalid way, then a `Vec`-collecting
    /// eviction scan.
    pub fn access(&mut self, addr: u64, owner: OwnerId) -> (bool, Option<OwnerId>) {
        self.clock += 1;
        self.accesses += 1;
        bump(&mut self.owner_accesses, owner, 1);

        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;

        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag && line.owner == owner {
                line.last_use = self.clock;
                return (true, None);
            }
        }

        self.misses += 1;
        bump(&mut self.owner_misses, owner, 1);
        self.replacement.on_miss(set, self.num_sets as usize);

        let mut victim_way = None;
        for way in 0..ways {
            if !self.lines[base + way].valid {
                victim_way = Some(way);
                break;
            }
        }
        let (victim_way, evicted_owner) = match victim_way {
            Some(way) => (way, None),
            None => {
                let timestamps: Vec<u64> =
                    (0..ways).map(|w| self.lines[base + w].last_use).collect();
                let way = self.replacement.pick_victim(&timestamps);
                let evicted = self.lines[base + way];
                bump(&mut self.owner_lines, evicted.owner, -1);
                (way, Some(evicted.owner))
            }
        };

        let insert_pos = self
            .replacement
            .insert_position(set, self.num_sets as usize);
        let last_use = match insert_pos {
            InsertPosition::Mru => self.clock,
            InsertPosition::Lru => {
                let oldest = (0..ways)
                    .filter(|&w| w != victim_way && self.lines[base + w].valid)
                    .map(|w| self.lines[base + w].last_use)
                    .min()
                    .unwrap_or(self.clock);
                oldest.saturating_sub(1)
            }
        };

        self.lines[base + victim_way] = CacheLine {
            tag,
            owner,
            last_use,
            valid: true,
        };
        bump(&mut self.owner_lines, owner, 1);

        (false, evicted_owner)
    }
}

struct LegacyCoreCaches {
    l1d: LegacyCache,
    l1i: LegacyCache,
    l2: LegacyCache,
}

impl LegacyCoreCaches {
    fn walk(
        &mut self,
        llc: &mut LegacyCache,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> (MemLevel, bool) {
        let l1 = match kind {
            AccessKind::InstructionFetch => &mut self.l1i,
            AccessKind::Load | AccessKind::Store => &mut self.l1d,
        };
        if l1.access(addr, owner).0 {
            return (MemLevel::L1, false);
        }
        if self.l2.access(addr, owner).0 {
            return (MemLevel::L2, false);
        }
        let (hit, evicted_owner) = llc.access(addr, owner);
        let polluted = evicted_owner.map(|victim| victim != owner).unwrap_or(false);
        if hit {
            (MemLevel::Llc, false)
        } else {
            (MemLevel::LocalMemory, polluted)
        }
    }
}

struct LegacySocket {
    llc: LegacyCache,
    cores: Vec<LegacyCoreCaches>,
}

/// The seed's machine: per-access `socket_of` division and NUMA
/// recomputation.
pub struct LegacyMachine {
    config: MachineConfig,
    sockets: Vec<LegacySocket>,
    latency: LatencyConfig,
}

impl LegacyMachine {
    /// Builds the machine with the seed's cache seeds, so its eviction
    /// streams match a `Machine::new` of the same config.
    pub fn new(config: MachineConfig) -> Self {
        let mut sockets = Vec::with_capacity(config.sockets);
        for s in 0..config.sockets {
            let llc_seed = 0x11c + s as u64;
            let mut cores = Vec::with_capacity(config.cores_per_socket);
            for c in 0..config.cores_per_socket {
                let seed = (s * 31 + c) as u64;
                cores.push(LegacyCoreCaches {
                    l1d: LegacyCache::with_seed(config.l1d.clone(), seed ^ 0x11d),
                    l1i: LegacyCache::with_seed(config.l1i.clone(), seed ^ 0x111),
                    l2: LegacyCache::with_seed(config.l2.clone(), seed ^ 0x222),
                });
            }
            sockets.push(LegacySocket {
                llc: LegacyCache::with_seed(config.llc.clone(), llc_seed),
                cores,
            });
        }
        LegacyMachine {
            latency: config.latency,
            config,
            sockets,
        }
    }

    fn access(
        &mut self,
        core: CoreId,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
        data_node: NumaNode,
        force_remote: bool,
    ) -> (MemLevel, u32, bool) {
        let per = self.config.cores_per_socket;
        let socket = core.0 / per;
        let local_node = NumaNode(socket);
        let socket_ref = &mut self.sockets[socket];
        let core_idx = core.0 % per;
        let (level, polluted) =
            socket_ref.cores[core_idx].walk(&mut socket_ref.llc, addr, kind, owner);
        let level = if level == MemLevel::LocalMemory && (force_remote || data_node != local_node) {
            MemLevel::RemoteMemory
        } else {
            level
        };
        (level, self.latency.of(level), polluted)
    }
}

/// The seed's `SpecWorkload::next_op`: a chain of conditional `gen_bool`
/// draws (2–5 RNG draws per op) instead of the optimized single categorical
/// draw. Produces the same op *distribution* as today's `SpecWorkload`, so
/// the throughput comparison stays apples-to-apples, with the seed's
/// generation cost.
pub struct LegacySpecWorkload {
    profile: kyoto_workloads::spec::SpecProfile,
    ws_lines: u64,
    hot_lines: u64,
    scan_pos: u64,
    cold_pos: u64,
    rng: rand::rngs::SmallRng,
}

impl LegacySpecWorkload {
    /// Mirrors the seed's `SpecWorkload::new`.
    pub fn new(app: kyoto_workloads::spec::SpecApp, scale: u64, seed: u64) -> Self {
        const LINE_SIZE: u64 = 64;
        let profile = app.profile();
        let scale = scale.max(1);
        let ws_lines = (profile.working_set_bytes / scale / LINE_SIZE).max(4);
        let hot_lines = (profile.hot_set_bytes / scale / LINE_SIZE)
            .max(1)
            .min(ws_lines);
        use rand::SeedableRng;
        LegacySpecWorkload {
            profile,
            ws_lines,
            hot_lines,
            scan_pos: 0,
            cold_pos: 0,
            rng: rand::rngs::SmallRng::seed_from_u64(seed ^ (app as u64) << 32),
        }
    }
}

impl Workload for LegacySpecWorkload {
    fn next_op(&mut self) -> Op {
        use kyoto_workloads::spec::COLD_REGION_BASE;
        use rand::Rng;
        const LINE_SIZE: u64 = 64;
        if !self.rng.gen_bool(self.profile.mem_fraction) {
            return Op::Compute {
                cycles: self.profile.compute_cycles,
            };
        }
        if self.rng.gen_bool(self.profile.cold_fraction) {
            let addr = COLD_REGION_BASE + self.cold_pos * LINE_SIZE;
            self.cold_pos += 1;
            return Op::Load { addr };
        }
        let line = if self.rng.gen_bool(self.profile.hot_fraction) {
            self.rng.gen_range(0..self.hot_lines)
        } else if self.rng.gen_bool(self.profile.streaming_fraction) {
            let line = self.scan_pos;
            self.scan_pos = (self.scan_pos + 1) % self.ws_lines;
            line
        } else {
            self.rng.gen_range(0..self.ws_lines)
        };
        let addr = line * LINE_SIZE;
        if self.rng.gen_bool(self.profile.write_fraction) {
            Op::Store { addr }
        } else {
            Op::Load { addr }
        }
    }

    fn name(&self) -> &str {
        "legacy-spec"
    }

    fn working_set_bytes(&self) -> u64 {
        self.ws_lines * 64
    }

    fn mem_parallelism(&self) -> f64 {
        self.profile.mem_parallelism
    }
}

/// One slot of the legacy engine: the observable subset of `ExecSlot`.
pub struct LegacySlot<'a> {
    /// Core the slot runs on.
    pub core: CoreId,
    /// Owner of the memory traffic.
    pub owner: OwnerId,
    /// The workload generating micro-operations.
    pub workload: &'a mut dyn Workload,
    /// Cumulative counters.
    pub pmcs: PmcSet,
}

/// The seed's `SimEngine::run_slots`: per-op linear furthest-behind scan,
/// one virtual `next_op` (plus a `mem_parallelism` call per memory op), no
/// batching. Returns each slot's consumed cycles.
pub fn legacy_run_slots(
    machine: &mut LegacyMachine,
    slots: &mut [LegacySlot<'_>],
    cycle_budget: u64,
) -> Vec<u64> {
    let n = slots.len();
    let mut consumed = vec![0u64; n];
    if n == 0 || cycle_budget == 0 {
        return consumed;
    }
    let data_nodes: Vec<NumaNode> = slots
        .iter()
        .map(|slot| NumaNode(slot.core.0 / machine.config.cores_per_socket))
        .collect();

    loop {
        let mut next: Option<usize> = None;
        let mut min_cycles = u64::MAX;
        for (i, &cycles) in consumed.iter().enumerate() {
            if cycles < cycle_budget && cycles < min_cycles {
                min_cycles = cycles;
                next = Some(i);
            }
        }
        let Some(i) = next else { break };

        let slot = &mut slots[i];
        let op = slot.workload.next_op();
        let (cycles, delta) = match op {
            Op::Compute { cycles } => {
                let cycles = u64::from(cycles.max(1));
                (
                    cycles,
                    PmcSet {
                        instructions: 1,
                        unhalted_core_cycles: cycles,
                        ..PmcSet::default()
                    },
                )
            }
            Op::Load { addr } | Op::Store { addr } => {
                let kind = op.access_kind().unwrap_or(AccessKind::Load);
                let (level, latency, _polluted) =
                    machine.access(slot.core, addr, kind, slot.owner, data_nodes[i], false);
                let effective_latency = if level.is_llc_miss() {
                    let mlp = slot.workload.mem_parallelism().max(1.0);
                    ((f64::from(latency) / mlp).round() as u32).max(1)
                } else {
                    latency
                };
                let cycles = u64::from(effective_latency) + 1;
                (
                    cycles,
                    PmcSet {
                        instructions: 1,
                        unhalted_core_cycles: cycles,
                        memory_accesses: 1,
                        ilc_misses: u64::from(level.reached_llc()),
                        llc_references: u64::from(level.reached_llc()),
                        llc_misses: u64::from(level.is_llc_miss()),
                        remote_accesses: u64::from(level == MemLevel::RemoteMemory),
                    },
                )
            }
        };
        consumed[i] += cycles;
        slot.pmcs += delta;
    }
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_sim::engine::{ExecSlot, SimEngine};
    use kyoto_sim::topology::Machine;
    use kyoto_workloads::spec::{SpecApp, SpecWorkload};

    /// Masks the one counter whose *semantics* were deliberately changed
    /// after the seed was frozen (DESIGN.md invariant 2: update the frozen
    /// comparison consciously, never the frozen code): `ilc_misses` now
    /// counts every access resolved at or beyond the L2, while the seed
    /// counted only accesses that reached the LLC — i.e. the seed's value
    /// was always identical to `llc_references`, which is the accounting bug
    /// the PR 2 fix addressed. Every other counter must still match the
    /// seed bit for bit.
    fn mask_ilc(mut pmcs: PmcSet) -> PmcSet {
        pmcs.ilc_misses = 0;
        pmcs
    }

    /// The frozen baseline must keep producing the same simulation as the
    /// optimized engine, otherwise the speedup it anchors is meaningless.
    #[test]
    fn legacy_path_matches_the_optimized_engine() {
        let config = MachineConfig::scaled_paper_machine(256);
        for slots in [1usize, 3] {
            let optimized: Vec<PmcSet> = {
                let mut engine = SimEngine::new(Machine::new(config.clone()));
                let mut workloads: Vec<SpecWorkload> = (0..slots)
                    .map(|i| SpecWorkload::new(SpecApp::Gcc, 256, i as u64))
                    .collect();
                let mut slot_refs: Vec<ExecSlot<'_>> = workloads
                    .iter_mut()
                    .enumerate()
                    .map(|(i, w)| ExecSlot::new(CoreId(i), i as u16 + 1, w))
                    .collect();
                for _ in 0..3 {
                    engine.run_slots(&mut slot_refs, 40_000);
                }
                slot_refs.iter().map(|slot| slot.pmcs).collect()
            };
            let legacy: Vec<PmcSet> = {
                let mut machine = LegacyMachine::new(config.clone());
                let mut workloads: Vec<SpecWorkload> = (0..slots)
                    .map(|i| SpecWorkload::new(SpecApp::Gcc, 256, i as u64))
                    .collect();
                let mut slot_refs: Vec<LegacySlot<'_>> = workloads
                    .iter_mut()
                    .enumerate()
                    .map(|(i, w)| LegacySlot {
                        core: CoreId(i),
                        owner: i as u16 + 1,
                        workload: w,
                        pmcs: PmcSet::default(),
                    })
                    .collect();
                for _ in 0..3 {
                    legacy_run_slots(&mut machine, &mut slot_refs, 40_000);
                }
                slot_refs.iter().map(|slot| slot.pmcs).collect()
            };
            for (optimized, legacy) in optimized.iter().zip(&legacy) {
                assert_eq!(
                    mask_ilc(*optimized),
                    mask_ilc(*legacy),
                    "{slots} slots: non-ILC counters must match the seed exactly"
                );
                // The corrected counter is a superset of the seed's: it adds
                // L2 hits on top of the LLC-reaching accesses the seed
                // counted (which equal `llc_references`).
                assert_eq!(
                    legacy.ilc_misses, legacy.llc_references,
                    "the seed's ilc_misses bug: always identical to llc_references"
                );
                assert!(
                    optimized.ilc_misses >= legacy.ilc_misses,
                    "corrected ilc_misses ({}) must cover the seed's ({})",
                    optimized.ilc_misses,
                    legacy.ilc_misses
                );
            }
        }
    }
}
