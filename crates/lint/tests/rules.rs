//! Rule-level self-tests driven by the fixture corpus in `fixtures/`.
//!
//! Each fixture is linted under synthetic workspace-relative paths so the
//! tests pin scoping (which crates a rule applies to), test-code exemption,
//! and suppression reach — without compiling the deliberately-bad code.

use kyoto_lint::{extract_run_slots_reference, lint_source, Diagnostic};

const NONDET: &str = include_str!("../fixtures/nondet.rs");
const WALL_CLOCK: &str = include_str!("../fixtures/wall_clock.rs");
const UNSAFE_BLOCKS: &str = include_str!("../fixtures/unsafe_blocks.rs");
const CLUSTER_PANIC: &str = include_str!("../fixtures/cluster_panic.rs");
const ALLOW_SYNTAX: &str = include_str!("../fixtures/allow_syntax.rs");
const FROZEN_REGION: &str = include_str!("../fixtures/frozen_region.rs");

/// One-based line of the (unique) line containing `marker`.
fn line_of(src: &str, marker: &str) -> usize {
    let mut hits = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(marker))
        .map(|(i, _)| i + 1);
    let line = hits
        .next()
        .unwrap_or_else(|| panic!("marker {marker} not found"));
    assert!(hits.next().is_none(), "marker {marker} is not unique");
    line
}

fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn nondet_iter_flags_method_calls_and_for_loops() {
    let diags = lint_source("crates/sim/src/fixture.rs", NONDET);
    assert_eq!(
        lines_for(&diags, "nondet-iter"),
        vec![
            line_of(NONDET, "MARK: flagged-iter"),
            line_of(NONDET, "MARK: flagged-for"),
        ]
    );
    assert_eq!(lines_for(&diags, "bad-allow"), Vec::<usize>::new());
}

#[test]
fn nondet_iter_spares_btreemap_lookups_tests_and_reasoned_allows() {
    let diags = lint_source("crates/sim/src/fixture.rs", NONDET);
    let lines = lines_for(&diags, "nondet-iter");
    for spared in [
        "MARK: allowed-values",
        "MARK: btree-iter",
        "MARK: keyed-lookup",
        "MARK: test-iter",
    ] {
        assert!(
            !lines.contains(&line_of(NONDET, spared)),
            "{spared} must not be flagged"
        );
    }
}

#[test]
fn nondet_iter_is_scoped_to_determinism_critical_crates() {
    // Out-of-scope crate: rule does not run.
    let diags = lint_source("crates/metrics/src/fixture.rs", NONDET);
    assert_eq!(lines_for(&diags, "nondet-iter"), Vec::<usize>::new());
    // Integration-test path of an in-scope crate: whole file is test code.
    let diags = lint_source("crates/sim/tests/fixture.rs", NONDET);
    assert_eq!(lines_for(&diags, "nondet-iter"), Vec::<usize>::new());
}

#[test]
fn wall_clock_flags_instant_now_and_system_time() {
    let diags = lint_source("crates/experiments/src/fixture.rs", WALL_CLOCK);
    assert_eq!(
        lines_for(&diags, "wall-clock"),
        vec![
            line_of(WALL_CLOCK, "MARK: flagged-instant"),
            line_of(WALL_CLOCK, "MARK: flagged-systemtime"),
        ]
    );
}

#[test]
fn wall_clock_spares_bench_crate_and_plain_instant_types() {
    let diags = lint_source("crates/bench/src/fixture.rs", WALL_CLOCK);
    assert_eq!(lines_for(&diags, "wall-clock"), Vec::<usize>::new());
    let diags = lint_source("crates/experiments/src/fixture.rs", WALL_CLOCK);
    let lines = lines_for(&diags, "wall-clock");
    assert!(!lines.contains(&line_of(WALL_CLOCK, "MARK: allowed-instant")));
    assert!(!lines.contains(&line_of(WALL_CLOCK, "MARK: instant-type")));
}

#[test]
fn unsafe_requires_a_safety_comment() {
    let diags = lint_source("crates/sim/src/fixture.rs", UNSAFE_BLOCKS);
    assert_eq!(
        lines_for(&diags, "unsafe-safety-comment"),
        vec![line_of(UNSAFE_BLOCKS, "MARK: undocumented-unsafe")]
    );
}

#[test]
fn unsafe_in_comments_and_strings_is_ignored() {
    let diags = lint_source("crates/sim/src/fixture.rs", UNSAFE_BLOCKS);
    let lines = lines_for(&diags, "unsafe-safety-comment");
    assert!(!lines.contains(&line_of(UNSAFE_BLOCKS, "MARK: unsafe-string")));
    assert!(!lines.contains(&line_of(UNSAFE_BLOCKS, "MARK: documented-unsafe")));
}

#[test]
fn crate_roots_must_forbid_unsafe_code() {
    let bare = "pub fn nothing() {}\n";
    let diags = lint_source("crates/foo/src/lib.rs", bare);
    assert_eq!(lines_for(&diags, "unsafe-safety-comment"), vec![1]);
    // The same file off the crate root is not required to declare it.
    let diags = lint_source("crates/foo/src/util.rs", bare);
    assert_eq!(
        lines_for(&diags, "unsafe-safety-comment"),
        Vec::<usize>::new()
    );
    // Declaring the invariant satisfies the rule.
    let declared = "#![forbid(unsafe_code)]\npub fn nothing() {}\n";
    let diags = lint_source("crates/foo/src/lib.rs", declared);
    assert_eq!(
        lines_for(&diags, "unsafe-safety-comment"),
        Vec::<usize>::new()
    );
}

#[test]
fn cluster_no_panic_flags_panicking_constructs() {
    let diags = lint_source("crates/cluster/src/fixture.rs", CLUSTER_PANIC);
    assert_eq!(
        lines_for(&diags, "cluster-no-panic"),
        vec![
            line_of(CLUSTER_PANIC, "MARK: flagged-unwrap"),
            line_of(CLUSTER_PANIC, "MARK: flagged-expect"),
            line_of(CLUSTER_PANIC, "MARK: flagged-panic"),
            line_of(CLUSTER_PANIC, "MARK: flagged-unreachable"),
        ]
    );
}

#[test]
fn cluster_no_panic_spares_tests_allows_and_other_crates() {
    let diags = lint_source("crates/cluster/src/fixture.rs", CLUSTER_PANIC);
    let lines = lines_for(&diags, "cluster-no-panic");
    assert!(!lines.contains(&line_of(CLUSTER_PANIC, "MARK: allowed-expect")));
    assert!(!lines.contains(&line_of(CLUSTER_PANIC, "MARK: test-unwrap")));
    // The rule is cluster-only: the same code lints clean under sim.
    let diags = lint_source("crates/sim/src/fixture.rs", CLUSTER_PANIC);
    assert_eq!(lines_for(&diags, "cluster-no-panic"), Vec::<usize>::new());
}

#[test]
fn malformed_allows_are_diagnostics_and_do_not_suppress() {
    let diags = lint_source("crates/cluster/src/fixture.rs", ALLOW_SYNTAX);
    // Each malformed directive sits on the line above its marked call.
    let bad_allow_lines: Vec<usize> = [
        "MARK: missing-reason",
        "MARK: unknown-rule",
        "MARK: unknown-directive",
        "MARK: unclosed",
    ]
    .iter()
    .map(|m| line_of(ALLOW_SYNTAX, m) - 1)
    .collect();
    assert_eq!(lines_for(&diags, "bad-allow"), bad_allow_lines);
    // None of them suppress: every unwrap is still flagged, including the
    // well-formed allow sitting two lines above its call (out of reach).
    assert_eq!(
        lines_for(&diags, "cluster-no-panic"),
        vec![
            line_of(ALLOW_SYNTAX, "MARK: missing-reason"),
            line_of(ALLOW_SYNTAX, "MARK: unknown-rule"),
            line_of(ALLOW_SYNTAX, "MARK: unknown-directive"),
            line_of(ALLOW_SYNTAX, "MARK: unclosed"),
            line_of(ALLOW_SYNTAX, "MARK: far-away"),
        ]
    );
    // Prose mentions of the tool name are not directives.
    assert!(!lines_for(&diags, "bad-allow").contains(&4));
}

#[test]
fn diagnostics_render_as_file_line_rule_message() {
    let diags = lint_source("crates/cluster/src/fixture.rs", CLUSTER_PANIC);
    let first = diags.first().expect("fixture produces diagnostics");
    let rendered = first.to_string();
    assert!(rendered.starts_with(&format!(
        "crates/cluster/src/fixture.rs:{}: [cluster-no-panic]",
        first.line
    )));
}

#[test]
fn frozen_region_extraction_survives_braces_in_strings_and_comments() {
    let body = extract_run_slots_reference(FROZEN_REGION).expect("region found");
    assert!(body.starts_with("fn run_slots_reference"));
    assert!(body.contains("stray brace in a string"));
    assert!(body.contains("total"));
    assert!(
        !body.contains("after_the_region"),
        "extraction ran past the close brace"
    );
    assert!(body.trim_end().ends_with('}'));
}

#[test]
fn frozen_region_extraction_reports_missing_function() {
    assert!(extract_run_slots_reference("fn other() {}").is_none());
}
