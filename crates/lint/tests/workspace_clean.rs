//! The workspace must lint clean: `cargo test` doubles as the lint and
//! frozen-hash gate even where `ci/check_lint.sh` is not wired in.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = kyoto_lint::lint_workspace(&root);
    assert!(
        diags.is_empty(),
        "kyoto-lint found {} diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
