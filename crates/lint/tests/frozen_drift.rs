//! Frozen-hash drift detection, exercised against a scratch tree so the
//! real pin file never has to be touched.

use std::fs;
use std::path::PathBuf;

const LEGACY: &str = "//! Frozen baseline stand-in.\npub fn legacy() -> u32 {\n    41\n}\n";
const ENGINE: &str = "fn run_slots_reference(slots: &mut [u64]) -> u64 {\n    let mut total = 0;\n    for slot in slots.iter_mut() {\n        *slot += 1;\n        total += *slot;\n    }\n    total\n}\n\nfn run_slots_fast() -> u64 {\n    0\n}\n";

/// Builds a throwaway tree holding just the two frozen regions. The name is
/// derived from the process id and a per-test tag, so parallel test binaries
/// cannot collide.
struct ScratchTree {
    root: PathBuf,
}

impl ScratchTree {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("kyoto-lint-frozen-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for dir in ["crates/bench/src", "crates/sim/src", "ci"] {
            fs::create_dir_all(root.join(dir)).expect("scratch tree");
        }
        fs::write(root.join("crates/bench/src/legacy.rs"), LEGACY).expect("write legacy");
        fs::write(root.join("crates/sim/src/engine.rs"), ENGINE).expect("write engine");
        ScratchTree { root }
    }

    fn pin(&self) {
        let contents = kyoto_lint::render_pin_file(&self.root).expect("renderable pin");
        fs::write(self.root.join("ci/frozen_hashes.txt"), contents).expect("write pin");
    }
}

impl Drop for ScratchTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn pinned_tree_passes_and_missing_pin_fails() {
    let tree = ScratchTree::new("pin");
    let diags = kyoto_lint::check_frozen(&tree.root);
    assert_eq!(diags.len(), 1, "missing pin file must be a diagnostic");
    assert_eq!(diags[0].rule, "frozen-code");
    tree.pin();
    assert!(kyoto_lint::check_frozen(&tree.root).is_empty());
}

#[test]
fn editing_a_frozen_region_is_drift() {
    let tree = ScratchTree::new("drift");
    tree.pin();
    fs::write(
        tree.root.join("crates/bench/src/legacy.rs"),
        LEGACY.replace("41", "42"),
    )
    .expect("mutate legacy");
    let diags = kyoto_lint::check_frozen(&tree.root);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "frozen-code");
    assert!(diags[0].message.contains("kyoto-bench-legacy"));
    assert_eq!(diags[0].file, "crates/bench/src/legacy.rs");
}

#[test]
fn editing_the_reference_function_is_drift_but_neighbours_are_not() {
    let tree = ScratchTree::new("region");
    tree.pin();
    // Changing code *outside* the frozen function is not drift.
    fs::write(
        tree.root.join("crates/sim/src/engine.rs"),
        ENGINE.replace(
            "fn run_slots_fast() -> u64 {\n    0\n}",
            "fn run_slots_fast() -> u64 {\n    7\n}",
        ),
    )
    .expect("mutate neighbour");
    assert!(kyoto_lint::check_frozen(&tree.root).is_empty());
    // Changing the frozen function itself is.
    fs::write(
        tree.root.join("crates/sim/src/engine.rs"),
        ENGINE.replace("*slot += 1;", "*slot += 2;"),
    )
    .expect("mutate region");
    let diags = kyoto_lint::check_frozen(&tree.root);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("run-slots-reference"));
}

#[test]
fn whitespace_only_edits_are_not_drift() {
    let tree = ScratchTree::new("ws");
    tree.pin();
    fs::write(
        tree.root.join("crates/bench/src/legacy.rs"),
        LEGACY.replace("41\n", "41   \n"),
    )
    .expect("trailing whitespace");
    assert!(kyoto_lint::check_frozen(&tree.root).is_empty());
}
