//! kyoto-lint CLI.
//!
//! ```text
//! cargo run -p kyoto-lint -- --workspace          # lint the whole tree
//! cargo run -p kyoto-lint -- --root /path --workspace
//! cargo run -p kyoto-lint -- --pin                # re-pin ci/frozen_hashes.txt
//! cargo run -p kyoto-lint -- crates/sim/src/engine.rs   # lint specific files
//! ```
//!
//! Exits 0 on a clean run, 1 on any diagnostic, 2 on usage/setup errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut pin = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--pin" => pin = true,
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("kyoto-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: kyoto-lint [--root <dir>] [--workspace | <file.rs>...] [--pin]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("kyoto-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    if pin {
        let contents = match kyoto_lint::render_pin_file(&root) {
            Ok(contents) => contents,
            Err(e) => {
                eprintln!("kyoto-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let target = root.join("ci/frozen_hashes.txt");
        if let Err(e) = std::fs::write(&target, &contents) {
            eprintln!("kyoto-lint: cannot write {}: {e}", target.display());
            return ExitCode::from(2);
        }
        print!("{contents}");
        eprintln!("kyoto-lint: pinned frozen hashes to {}", target.display());
        return ExitCode::SUCCESS;
    }

    let (diags, checked) = if files.is_empty() {
        let checked = kyoto_lint::workspace_files(&root).len();
        (kyoto_lint::lint_workspace(&root), checked)
    } else {
        let mut diags = Vec::new();
        for rel in &files {
            match std::fs::read_to_string(root.join(rel)) {
                Ok(source) => diags.extend(kyoto_lint::lint_source(rel, &source)),
                Err(e) => {
                    eprintln!("kyoto-lint: cannot read {rel}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        diags.sort();
        let count = files.len();
        (diags, count)
    };

    for diag in &diags {
        println!("{diag}");
    }
    if diags.is_empty() {
        eprintln!("kyoto-lint: OK — {checked} files, 0 diagnostics");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "kyoto-lint: FAILED — {} diagnostic(s) across {checked} files",
            diags.len()
        );
        ExitCode::FAILURE
    }
}
