//! A hand-rolled, line-oriented Rust lexer.
//!
//! The rules never need a full parse tree; they need to know, for every
//! source line, (a) which characters are *code* and (b) what *comment* text
//! the line carries. [`lex`] produces exactly that: a code view of the file
//! with the contents of comments, string literals and char literals blanked
//! out (delimiters kept, newlines preserved so line numbers survive), plus
//! the comment text per line. [`tokenize`] then cuts the code view into a
//! flat token stream for the pattern-matching rules.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw (and byte/raw-byte) strings with `#` fences, char and byte
//! literals, and the lifetime-vs-char-literal ambiguity (`'a>` is a
//! lifetime, `'a'` is a char).

/// The lexed form of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// The source with comment and literal *contents* replaced by spaces.
    /// Same length in lines as the input; newlines are preserved.
    pub code: String,
    /// Comment text carried by each line (line/block comment bodies, without
    /// the `//`, `/*`, `*/` markers). Indexed by zero-based line.
    pub comments: Vec<String>,
}

/// One token of the code view: an identifier/number word or a single
/// punctuation character (`::` is kept as one token).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// Zero-based source line the token starts on.
    pub line: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `src` into a blanked code view plus per-line comment text.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut code = String::with_capacity(src.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 0usize;
    let mut prev_code: Option<char> = None;
    let mut i = 0usize;

    macro_rules! newline {
        () => {{
            code.push('\n');
            comments.push(String::new());
            line += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            newline!();
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            code.push(' ');
            code.push(' ');
            i += 2;
            while i < n && chars[i] != '\n' {
                comments[line].push(chars[i]);
                code.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            code.push(' ');
            code.push(' ');
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    newline!();
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comments[line].push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"...", r#"..."#, br#"..."# — only when the leading
        // r/b is not the tail of an identifier.
        if (c == 'r' || c == 'b') && prev_code.is_none_or(|p| !is_ident_char(p)) {
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let fence_start = j;
            while j < n && chars[j] == '#' {
                j += 1;
            }
            let fences = j - fence_start;
            let is_raw = (c == 'r' || j > i + 1) && j < n && chars[j] == '"';
            if is_raw {
                // Emit the opening delimiters as code.
                for &d in &chars[i..=j] {
                    code.push(d);
                }
                i = j + 1;
                // Blank the body until `"` followed by `fences` hashes.
                'raw: while i < n {
                    if chars[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < n && seen < fences && chars[k] == '#' {
                            k += 1;
                            seen += 1;
                        }
                        if seen == fences {
                            for &d in &chars[i..k] {
                                code.push(d);
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    if chars[i] == '\n' {
                        newline!();
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
                prev_code = Some('"');
                continue;
            }
        }
        // Ordinary string literal.
        if c == '"' {
            code.push('"');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    code.push(' ');
                    if chars[i + 1] == '\n' {
                        newline!();
                    } else {
                        code.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    code.push('"');
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    newline!();
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            prev_code = Some('"');
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a in a
        // generic position is a lifetime (no closing quote right after).
        if c == '\'' {
            let is_escape = i + 1 < n && chars[i + 1] == '\\';
            let is_short = i + 2 < n && chars[i + 2] == '\'';
            if is_escape {
                code.push('\'');
                i += 1;
                // Blank to the closing quote.
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' && i + 1 < n {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                if i < n {
                    code.push('\'');
                    i += 1;
                }
                prev_code = Some('\'');
                continue;
            }
            if is_short {
                code.push('\'');
                code.push(' ');
                code.push('\'');
                i += 3;
                prev_code = Some('\'');
                continue;
            }
            // Lifetime: keep the quote as code, the following ident lexes
            // normally.
            code.push('\'');
            prev_code = Some('\'');
            i += 1;
            continue;
        }
        code.push(c);
        prev_code = Some(c);
        i += 1;
    }

    Lexed { code, comments }
}

/// Cuts a code view (from [`lex`]) into a flat token stream.
pub fn tokenize(code: &str) -> Vec<Token> {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            out.push(Token {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_char(chars[i])) {
                i += 1;
            }
            out.push(Token {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            out.push(Token {
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.push(Token {
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_captured() {
        let l = lex("let x = 1; // trailing note\n/* block\nspans */ let y = 2;\n");
        assert!(l.code.contains("let x = 1;"));
        assert!(!l.code.contains("trailing"));
        assert_eq!(l.comments[0].trim(), "trailing note");
        assert_eq!(l.comments[1].trim(), "block");
        assert!(l.comments[2].contains("spans"));
        assert!(l.code.contains("let y = 2;"));
    }

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let l = lex("let s = \"unsafe { panic!() }\";\n");
        assert!(!l.code.contains("unsafe"));
        assert!(!l.code.contains("panic"));
        assert!(l.code.contains('"'));
    }

    #[test]
    fn raw_strings_with_fences_are_blanked() {
        let l = lex("let s = r#\"one \" two\"#; let t = 3;\n");
        assert!(!l.code.contains("one"));
        assert!(l.code.contains("let t = 3;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* outer /* inner */ still comment */ let z = 4;\n");
        assert!(l.code.contains("let z = 4;"));
        assert!(!l.code.contains("inner"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(l.code.contains("str"));
        let l2 = lex("let c = 'x'; let d = '\\n'; let e = b'y';\n");
        assert!(!l2.code.contains('x'));
        assert!(!l2.code.contains('y'));
    }

    #[test]
    fn tokens_carry_lines_and_double_colon() {
        let toks = tokenize("foo::bar\nbaz.qux()\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["foo", "::", "bar", "baz", ".", "qux", "(", ")"]);
        assert_eq!(toks[0].line, 0);
        assert_eq!(toks[3].line, 1);
    }
}
