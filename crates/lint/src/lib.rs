//! kyoto-lint: an offline static-analysis pass mechanizing the repository's
//! determinism, safety and error-discipline invariants.
//!
//! The analyzer is registry-free and `syn`-free: a hand-rolled lexer
//! ([`lexer`]) produces a blanked code view plus per-line comment text, and
//! five token-pattern rules run over it:
//!
//! * **nondet-iter** — order-dependent iteration over `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in &map`, …) in
//!   non-test code of the determinism-critical crates
//!   (`sim`/`core`/`hypervisor`/`cluster`/`service`/`experiments`), where an unordered
//!   fold breaks byte-determinism of the figure outputs.
//! * **wall-clock** — `Instant::now`/`SystemTime` outside the bench/timing
//!   allowlist (`crates/bench/`), so simulation results can never depend on
//!   the host clock.
//! * **unsafe-safety-comment** — every `unsafe` token must carry a
//!   `// SAFETY:` comment within the three preceding lines, and every
//!   workspace crate root must declare `#![forbid(unsafe_code)]`.
//! * **cluster-no-panic** — `unwrap`/`expect`/`panic!` (plus
//!   `unreachable!`/`todo!`/`unimplemented!`) forbidden in
//!   `crates/cluster/src` non-test code: every fallible cluster path returns
//!   a typed `ClusterError`.
//! * **frozen-code** — SHA-256 of normalized source for the frozen
//!   `kyoto_bench::legacy` baseline and the `run_slots_reference` region,
//!   pinned in `ci/frozen_hashes.txt`; any drift fails the build.
//!
//! Diagnostics print as `file:line: [rule-id] message`. A violation can be
//! suppressed with a comment on the flagged line or the line above, of the
//! form `kyoto-lint:` + `allow(<rule>): <reason>` — the reason is mandatory;
//! an allow without one is itself a diagnostic (`bad-allow`).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod sha256;

use lexer::{lex, tokenize, Token};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers accepted in suppression (`allow`) directives.
pub const RULE_IDS: [&str; 5] = [
    "nondet-iter",
    "wall-clock",
    "unsafe-safety-comment",
    "cluster-no-panic",
    "frozen-code",
];

/// Crates whose non-test code must not fold over unordered containers.
const NONDET_SCOPE: [&str; 7] = [
    "crates/sim/src/",
    "crates/core/src/",
    "crates/hypervisor/src/",
    "crates/cluster/src/",
    "crates/experiments/src/",
    "crates/service/src/",
    "crates/trace/src/",
];

/// Order-dependent methods on `HashMap`/`HashSet` flagged by nondet-iter.
const NONDET_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// One `file:line: [rule-id] message` diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// One-based source line.
    pub line: usize,
    /// Rule id (one of [`RULE_IDS`], or `bad-allow` for a malformed
    /// suppression).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed, well-formed suppression comment.
struct Suppression {
    /// Zero-based line the comment sits on.
    line: usize,
    rule: String,
}

/// Parses `kyoto-lint:` directives out of per-line comment text. Returns
/// the valid suppressions plus `bad-allow` diagnostics for malformed ones
/// (missing reason, unknown rule, unknown directive). A `kyoto-lint:`
/// mention whose next word does not look like a directive (no parentheses)
/// is treated as prose and ignored, so documentation can talk about the
/// tool without tripping it.
fn parse_suppressions(rel_path: &str, comments: &[String]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for (line, comment) in comments.iter().enumerate() {
        let Some(pos) = comment.find("kyoto-lint:") else {
            continue;
        };
        let rest = comment[pos + "kyoto-lint:".len()..].trim_start();
        if !rest
            .split_whitespace()
            .next()
            .is_some_and(|word| word.contains('('))
        {
            continue;
        }
        let bad = |message: String| Diagnostic {
            file: rel_path.to_string(),
            line: line + 1,
            rule: "bad-allow",
            message,
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            diags.push(bad(format!(
                "unknown kyoto-lint directive `{}` — only `allow(rule-id): <reason>` is supported",
                rest.split_whitespace().next().unwrap_or("")
            )));
            continue;
        };
        let Some(close) = args.find(')') else {
            diags.push(bad("unclosed `allow(` directive".to_string()));
            continue;
        };
        let rule = args[..close].trim();
        if !RULE_IDS.contains(&rule) {
            diags.push(bad(format!(
                "allow names unknown rule `{rule}` (known: {})",
                RULE_IDS.join(", ")
            )));
            continue;
        }
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(bad(format!(
                "allow({rule}) requires a written reason: `kyoto-lint: allow({rule}): <why>`"
            )));
            continue;
        }
        sups.push(Suppression {
            line,
            rule: rule.to_string(),
        });
    }
    (sups, diags)
}

/// Marks the lines covered by `#[cfg(test)]`/`#[test]` items (and the whole
/// file for an inner `#![cfg(test)]`). The span of a test attribute runs to
/// the matching close brace of the next item, or to the terminating `;` for
/// brace-less items.
fn test_line_mask(tokens: &[Token], total_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; total_lines.max(1)];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].text == "!";
        if inner {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens to its matching `]`.
        let mut depth = 0usize;
        let mut attr: Vec<&str> = Vec::new();
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                t => attr.push(t),
            }
            k += 1;
        }
        let is_test_attr = (attr == ["test"])
            || (attr.contains(&"cfg") && attr.contains(&"test") && !attr.contains(&"not"));
        if !is_test_attr {
            i = k + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            mask.fill(true);
            return mask;
        }
        // Find the end of the annotated item: the matching close brace of
        // its first `{`, or a `;` met before any brace.
        let start_line = tokens[i].line;
        let mut m = k + 1;
        let mut end_line = start_line;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while m < tokens.len() {
            match tokens[m].text.as_str() {
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        end_line = tokens[m].line;
                        break;
                    }
                }
                ";" if !entered => {
                    end_line = tokens[m].line;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        if m >= tokens.len() {
            end_line = total_lines.saturating_sub(1);
        }
        for flag in mask.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        i = m + 1;
    }
    mask
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initialized from a `HashMap::`/`HashSet::` constructor on the same
/// statement.
fn collect_hash_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text != "HashMap" && tok.text != "HashSet" {
            continue;
        }
        // Declaration by type annotation: `name: [&[mut]] [path::]Hash…<`.
        let mut j = i;
        // Walk back over a `std::collections::` style path prefix.
        while j >= 2 && tokens[j - 1].text == "::" {
            j -= 2;
        }
        // Skip reference/mutability/lifetime tokens in the type position.
        while j >= 1 {
            let t = tokens[j - 1].text.as_str();
            if t == "&" || t == "mut" || t == "'" {
                j -= 1;
            } else if j >= 2
                && tokens[j - 2].text == "'"
                && tokens[j - 1].text.chars().all(char::is_alphanumeric)
            {
                j -= 1; // named lifetime after `&'a`
            } else {
                break;
            }
        }
        if j >= 2 && tokens[j - 1].text == ":" && is_ident(&tokens[j - 2].text) {
            names.insert(tokens[j - 2].text.clone());
            continue;
        }
        // Binding by constructor: `let [mut] name = … Hash…::…`.
        if i + 1 < tokens.len() && tokens[i + 1].text == "::" {
            let mut b = i;
            let mut saw_eq = false;
            while b > 0 {
                let t = tokens[b - 1].text.as_str();
                if t == ";" || t == "{" || t == "}" {
                    break;
                }
                if t == "=" {
                    saw_eq = true;
                }
                if t == "let" {
                    if saw_eq {
                        let name_idx = if tokens[b].text == "mut" { b + 1 } else { b };
                        if name_idx < tokens.len() && is_ident(&tokens[name_idx].text) {
                            names.insert(tokens[name_idx].text.clone());
                        }
                    }
                    break;
                }
                b -= 1;
            }
        }
    }
    names
}

fn is_ident(text: &str) -> bool {
    let mut chars = text.chars();
    chars.next().is_some_and(|c| c.is_alphabetic() || c == '_') && text != "mut" && text != "let"
}

/// nondet-iter: order-dependent iteration over hash containers.
fn rule_nondet_iter(rel_path: &str, tokens: &[Token], test_mask: &[bool]) -> Vec<Diagnostic> {
    let names = collect_hash_names(tokens);
    if names.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut push = |line: usize, name: &str, how: &str| {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: line + 1,
            rule: "nondet-iter",
            message: format!(
                "{how} over hash container `{name}` — std HashMap/HashSet iteration order is \
                 nondeterministic; use BTreeMap/BTreeSet, sort before folding, or justify with \
                 an allow"
            ),
        });
    };
    for (i, tok) in tokens.iter().enumerate() {
        // `name.iter()` style method calls.
        if names.contains(&tok.text)
            && i + 3 < tokens.len()
            && tokens[i + 1].text == "."
            && NONDET_METHODS.contains(&tokens[i + 2].text.as_str())
            && tokens[i + 3].text == "("
        {
            let line = tokens[i + 2].line;
            if !test_mask.get(line).copied().unwrap_or(false) {
                push(line, &tok.text, &format!(".{}()", tokens[i + 2].text));
            }
        }
        // `for … in [&[mut]] [path.]name {` direct loops.
        if tok.text == "in" {
            let mut j = i + 1;
            while j < tokens.len() && (tokens[j].text == "&" || tokens[j].text == "mut") {
                j += 1;
            }
            while j + 1 < tokens.len() && is_ident(&tokens[j].text) && tokens[j + 1].text == "." {
                if names.contains(&tokens[j].text) && j + 2 < tokens.len() {
                    // `name.method()` chains are handled above.
                    break;
                }
                j += 2;
            }
            if j + 1 < tokens.len() && names.contains(&tokens[j].text) && tokens[j + 1].text == "{"
            {
                let line = tokens[j].line;
                if !test_mask.get(line).copied().unwrap_or(false) {
                    push(line, &tokens[j].text, "`for` loop");
                }
            }
        }
    }
    diags
}

/// wall-clock: `Instant::now`/`SystemTime` outside the bench allowlist.
fn rule_wall_clock(rel_path: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let hit = match tok.text.as_str() {
            "SystemTime" => true,
            "Instant" => {
                i + 2 < tokens.len() && tokens[i + 1].text == "::" && tokens[i + 2].text == "now"
            }
            _ => false,
        };
        if hit {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: tok.line + 1,
                rule: "wall-clock",
                message: format!(
                    "`{}` reads the host clock — simulation results must be a pure function of \
                     their inputs; timing belongs in crates/bench or behind a reasoned allow",
                    if tok.text == "Instant" {
                        "Instant::now"
                    } else {
                        "SystemTime"
                    }
                ),
            });
        }
    }
    diags
}

/// unsafe-safety-comment: every `unsafe` token needs a nearby `// SAFETY:`;
/// crate roots must forbid unsafe code outright.
fn rule_unsafe_safety(
    rel_path: &str,
    tokens: &[Token],
    comments: &[String],
    is_crate_root: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for tok in tokens {
        if tok.text != "unsafe" {
            continue;
        }
        let line = tok.line;
        let documented = (line.saturating_sub(3)..=line)
            .any(|l| comments.get(l).is_some_and(|c| c.contains("SAFETY:")));
        if !documented {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: line + 1,
                rule: "unsafe-safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment stating the aliasing/validity \
                          argument (within the three preceding lines)"
                    .to_string(),
            });
        }
    }
    if is_crate_root {
        let mut declared = false;
        for (i, tok) in tokens.iter().enumerate() {
            if (tok.text == "forbid" || tok.text == "deny")
                && tokens.get(i + 1).is_some_and(|t| t.text == "(")
                && tokens.get(i + 2).is_some_and(|t| t.text == "unsafe_code")
            {
                declared = true;
                break;
            }
        }
        if !declared {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: 1,
                rule: "unsafe-safety-comment",
                message: "crate root must declare `#![forbid(unsafe_code)]` — the workspace is \
                          unsafe-free by invariant; a crate that needs unsafe must carry a \
                          reasoned allow here"
                    .to_string(),
            });
        }
    }
    diags
}

/// cluster-no-panic: panicking constructs forbidden in cluster non-test code.
fn rule_cluster_no_panic(rel_path: &str, tokens: &[Token], test_mask: &[bool]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut push = |line: usize, what: &str| {
        if test_mask.get(line).copied().unwrap_or(false) {
            return;
        }
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: line + 1,
            rule: "cluster-no-panic",
            message: format!(
                "`{what}` in cluster non-test code — every fallible cluster path returns a typed \
                 `ClusterError`; prove the invariant in an allow reason or convert to an error"
            ),
        });
    };
    for (i, tok) in tokens.iter().enumerate() {
        match tok.text.as_str() {
            "unwrap" | "expect"
                if i >= 1
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(") =>
            {
                push(tok.line, &format!(".{}()", tok.text));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|t| t.text == "!") =>
            {
                push(tok.line, &format!("{}!", tok.text));
            }
            _ => {}
        }
    }
    diags
}

/// Whether the rel path is a whole-file test/example context (exempt from
/// nondet-iter and cluster-no-panic).
fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/examples/")
        || rel_path.contains("/benches/")
}

/// Whether the rel path is a workspace crate root (`src/lib.rs` of the
/// facade or of a `crates/*` member).
fn is_crate_root(rel_path: &str) -> bool {
    if rel_path == "src/lib.rs" {
        return true;
    }
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            return tail == "src/lib.rs";
        }
    }
    false
}

/// Lints one file's source under its workspace-relative path; applies rule
/// scoping, test exemptions and `allow` suppressions.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let tokens = tokenize(&lexed.code);
    let total_lines = lexed.comments.len();
    let whole_file_test = is_test_path(rel_path);
    let mut test_mask = test_line_mask(&tokens, total_lines);
    if whole_file_test {
        test_mask.fill(true);
    }
    let (sups, mut diags) = parse_suppressions(rel_path, &lexed.comments);

    let mut findings = Vec::new();
    if NONDET_SCOPE.iter().any(|p| rel_path.starts_with(p)) {
        findings.extend(rule_nondet_iter(rel_path, &tokens, &test_mask));
    }
    if !rel_path.starts_with("crates/bench/") {
        findings.extend(rule_wall_clock(rel_path, &tokens));
    }
    findings.extend(rule_unsafe_safety(
        rel_path,
        &tokens,
        &lexed.comments,
        is_crate_root(rel_path),
    ));
    if rel_path.starts_with("crates/cluster/src/") {
        findings.extend(rule_cluster_no_panic(rel_path, &tokens, &test_mask));
    }

    // A well-formed allow on the flagged line or the line above suppresses.
    findings.retain(|d| {
        !sups
            .iter()
            .any(|s| s.rule == d.rule && (s.line + 1 == d.line || s.line + 2 == d.line))
    });
    diags.extend(findings);
    diags.sort();
    diags
}

/// The two frozen regions: `(region-id, source file)`.
const FROZEN_REGIONS: [(&str, &str); 2] = [
    ("kyoto-bench-legacy", "crates/bench/src/legacy.rs"),
    ("run-slots-reference", "crates/sim/src/engine.rs"),
];

/// Normalizes source for hashing: trailing whitespace and `\r` stripped,
/// lines joined with `\n`. Whitespace-only edits do not count as drift.
fn normalize(source: &str) -> String {
    source
        .lines()
        .map(str::trim_end)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Extracts the `run_slots_reference` function (signature line through its
/// matching close brace) from engine source. Brace matching runs on the
/// blanked code view so braces in strings/comments cannot derail it.
pub fn extract_run_slots_reference(engine_source: &str) -> Option<String> {
    let lexed = lex(engine_source);
    let tokens = tokenize(&lexed.code);
    let mut start_line = None;
    let mut end_line = None;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text == "fn"
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.text == "run_slots_reference")
        {
            start_line = Some(tok.line);
            let mut depth = 0usize;
            let mut entered = false;
            for t in &tokens[i..] {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        entered = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            end_line = Some(t.line);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            break;
        }
    }
    let (start, end) = (start_line?, end_line?);
    let lines: Vec<&str> = engine_source.lines().collect();
    Some(lines.get(start..=end)?.join("\n"))
}

/// Computes the current frozen-region hashes for the tree at `root`.
/// Returns `(region-id, sha256-hex, source-path)` triples, or a diagnostic
/// description of what could not be hashed.
pub fn compute_frozen_hashes(root: &Path) -> Result<Vec<(String, String, String)>, String> {
    let mut out = Vec::new();
    for (region, rel) in FROZEN_REGIONS {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {rel} for frozen region '{region}': {e}"))?;
        let body = match region {
            "run-slots-reference" => extract_run_slots_reference(&source).ok_or_else(|| {
                format!("cannot locate `fn run_slots_reference` in {rel} for frozen hashing")
            })?,
            _ => source,
        };
        let hash = sha256::digest_hex(normalize(&body).as_bytes());
        out.push((region.to_string(), hash, rel.to_string()));
    }
    Ok(out)
}

/// frozen-code: compares current region hashes against `ci/frozen_hashes.txt`.
pub fn check_frozen(root: &Path) -> Vec<Diagnostic> {
    let pin_rel = "ci/frozen_hashes.txt";
    let mut diags = Vec::new();
    let pinned = match std::fs::read_to_string(root.join(pin_rel)) {
        Ok(text) => text,
        Err(_) => {
            diags.push(Diagnostic {
                file: pin_rel.to_string(),
                line: 1,
                rule: "frozen-code",
                message: "missing pin file — regenerate deliberately with \
                          `cargo run -p kyoto-lint -- --pin`"
                    .to_string(),
            });
            return diags;
        }
    };
    let current = match compute_frozen_hashes(root) {
        Ok(hashes) => hashes,
        Err(message) => {
            diags.push(Diagnostic {
                file: pin_rel.to_string(),
                line: 1,
                rule: "frozen-code",
                message,
            });
            return diags;
        }
    };
    for (region, hash, source_rel) in current {
        let pinned_hash = pinned.lines().find_map(|line| {
            let line = line.trim();
            if line.starts_with('#') {
                return None;
            }
            let mut parts = line.split_whitespace();
            (parts.next() == Some(region.as_str())).then(|| parts.next().unwrap_or("").to_string())
        });
        match pinned_hash {
            None => diags.push(Diagnostic {
                file: pin_rel.to_string(),
                line: 1,
                rule: "frozen-code",
                message: format!(
                    "no pinned hash for frozen region '{region}' — regenerate with --pin"
                ),
            }),
            Some(expected) if expected != hash => diags.push(Diagnostic {
                file: source_rel,
                line: 1,
                rule: "frozen-code",
                message: format!(
                    "frozen region '{region}' drifted: pinned {expected}, current {hash} — this \
                     code is the cross-PR baseline; revert, or re-pin deliberately with --pin \
                     and justify in the PR"
                ),
            }),
            Some(_) => {}
        }
    }
    diags
}

/// Renders the pin file contents for the tree at `root`.
pub fn render_pin_file(root: &Path) -> Result<String, String> {
    let hashes = compute_frozen_hashes(root)?;
    let mut out = String::new();
    out.push_str(
        "# Pinned SHA-256 hashes of frozen source regions, checked by kyoto-lint's\n\
         # frozen-code rule (normalized: trailing whitespace stripped).\n\
         # Regenerate DELIBERATELY — re-pinning is a baseline change and must be\n\
         # justified in the PR:\n\
         #   cargo run -p kyoto-lint -- --pin\n",
    );
    for (region, hash, rel) in hashes {
        out.push_str(&format!("{region} {hash} {rel}\n"));
    }
    Ok(out)
}

/// Directories never linted: build output, VCS, vendored registry stand-ins
/// (external API surface, not ours) and the linter's deliberately-bad
/// fixture corpus.
fn skip_dir(rel: &str) -> bool {
    rel == "target"
        || rel == ".git"
        || rel == ".github"
        || rel == "crates/compat"
        || rel == "crates/lint/fixtures"
}

/// Every workspace `.rs` file under `root`, as sorted workspace-relative
/// paths with forward slashes.
pub fn workspace_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Ok(rel_os) = path.strip_prefix(root) else {
                continue;
            };
            let rel = rel_os.to_string_lossy().replace('\\', "/");
            if path.is_dir() {
                if !skip_dir(&rel) && !rel.starts_with('.') {
                    stack.push(path);
                }
            } else if rel.ends_with(".rs") {
                files.push(rel);
            }
        }
    }
    files.sort();
    files
}

/// Lints the whole workspace at `root`: every source file plus the
/// frozen-code check. Diagnostics come back sorted.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rel in workspace_files(root) {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(source) => diags.extend(lint_source(&rel, &source)),
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 1,
                rule: "frozen-code",
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    diags.extend(check_frozen(root));
    diags.sort();
    diags
}
