//! Fixture: frozen-region extraction corpus. Never compiled — the
//! self-tests extract `run_slots_reference` from this file to prove the
//! brace matcher survives braces inside strings and comments.

fn run_slots_reference(slots: &mut [u64]) -> u64 {
    let tricky = "a { stray brace in a string }";
    // and a } stray brace in a comment {
    let mut total = 0;
    for slot in slots.iter_mut() {
        *slot += 1;
        total += *slot;
    }
    let _ = tricky;
    total
}

fn after_the_region() -> &'static str {
    "this function is not part of the frozen region"
}
