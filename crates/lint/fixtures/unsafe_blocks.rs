//! Fixture: unsafe-safety-comment corpus. Never compiled — linted by the
//! self-tests; the workspace itself is unsafe-free by invariant.

fn documented(ptr: *const u8) -> u8 {
    // SAFETY: the caller guarantees `ptr` points to a live, aligned byte.
    unsafe { *ptr } // MARK: documented-unsafe
}

fn undocumented(ptr: *const u8) -> u8 {
    unsafe { *ptr } // MARK: undocumented-unsafe
}

fn mentions_are_not_violations() -> &'static str {
    // Writing the word unsafe in a comment is fine.
    "and unsafe inside a string literal is fine too" // MARK: unsafe-string
}
