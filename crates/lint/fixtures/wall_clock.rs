//! Fixture: wall-clock corpus. Never compiled — linted by the self-tests
//! under experiment and bench paths to exercise the allowlist.

fn flagged_instant() -> bool {
    let start = std::time::Instant::now(); // MARK: flagged-instant
    start.elapsed().as_nanos() == 0
}

fn flagged_system_time() -> bool {
    let epoch = std::time::SystemTime::UNIX_EPOCH; // MARK: flagged-systemtime
    epoch.elapsed().is_ok()
}

fn allowed_timing() -> f64 {
    // kyoto-lint: allow(wall-clock): measures host speedup only; timing never feeds back into simulated results
    let start = std::time::Instant::now(); // MARK: allowed-instant
    start.elapsed().as_secs_f64()
}

fn instant_as_plain_type_is_fine(deadline: std::time::Instant) -> bool {
    deadline.elapsed().as_nanos() == 0 // MARK: instant-type
}
