//! Fixture: suppression-syntax corpus. Never compiled — linted by the
//! self-tests to pin the `bad-allow` semantics.
//!
//! In prose, kyoto-lint: is harmless when followed by plain words.

fn missing_reason(x: Option<u32>) -> u32 {
    // kyoto-lint: allow(cluster-no-panic)
    x.unwrap() // MARK: missing-reason
}

fn unknown_rule(x: Option<u32>) -> u32 {
    // kyoto-lint: allow(made-up-rule): because I said so
    x.unwrap() // MARK: unknown-rule
}

fn unknown_directive(x: Option<u32>) -> u32 {
    // kyoto-lint: deny(cluster-no-panic): deny is not a directive
    x.unwrap() // MARK: unknown-directive
}

fn unclosed(x: Option<u32>) -> u32 {
    // kyoto-lint: allow(cluster-no-panic: forgot the close paren
    x.unwrap() // MARK: unclosed
}

fn far_away_allow(x: Option<u32>) -> u32 {
    // kyoto-lint: allow(cluster-no-panic): a reasoned allow two lines above the call does not reach it
    let _ = &x;
    x.unwrap() // MARK: far-away
}
