//! Fixture: nondet-iter corpus. Never compiled — linted by the self-tests
//! under a synthetic workspace-relative path to exercise rule scoping.

use std::collections::{BTreeMap, HashMap, HashSet};

fn flagged_method_call() -> usize {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    counts.insert(1, 2);
    counts.iter().count() // MARK: flagged-iter
}

fn flagged_for_loop() {
    let lines: HashSet<u64> = HashSet::new();
    for line in &lines { // MARK: flagged-for
        let _ = line;
    }
}

fn allowed_sum() -> u64 {
    let totals = HashMap::from([(1u32, 2u64)]);
    // kyoto-lint: allow(nondet-iter): summing u64 counters is commutative
    totals.values().sum() // MARK: allowed-values
}

fn btree_is_fine() -> usize {
    let ordered: BTreeMap<u32, u64> = BTreeMap::new();
    ordered.iter().count() // MARK: btree-iter
}

fn keyed_lookup_is_fine(counts: &HashMap<u32, u64>) -> u64 {
    counts.get(&1).copied().unwrap_or(0) // MARK: keyed-lookup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_free_in_tests() {
        let set: HashSet<u32> = HashSet::new();
        assert_eq!(set.iter().count(), 0); // MARK: test-iter
    }
}
