//! Fixture: cluster-no-panic corpus. Never compiled — linted by the
//! self-tests under a cluster path (rule fires) and a sim path (it does not).

fn flagged_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // MARK: flagged-unwrap
}

fn flagged_expect(x: Option<u32>) -> u32 {
    x.expect("present") // MARK: flagged-expect
}

fn flagged_macro(x: u32) -> u32 {
    match x {
        0 => panic!("zero"), // MARK: flagged-panic
        other => other,
    }
}

fn flagged_unreachable(x: u32) -> u32 {
    match x {
        0 => unreachable!("never zero"), // MARK: flagged-unreachable
        other => other,
    }
}

fn allowed_expect(history: &[u32]) -> u32 {
    // kyoto-lint: allow(cluster-no-panic): the caller pushed an element on the line above this call
    *history.last().expect("just pushed") // MARK: allowed-expect
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let value: Option<u32> = Some(1);
        assert_eq!(value.unwrap(), 1); // MARK: test-unwrap
    }
}
