//! Integration tests of the fault-injection and recovery subsystem: cell
//! crashes and reboots, the orphan retry queue (re-admission, backoff,
//! rejection), mid-migration aborts at all three protocol points, crash
//! interactions with churn and maintenance drains, and the checkpoint
//! error paths.
//!
//! Everything here uses *scripted* faults so each scenario is exact; the
//! seeded-rate streams are covered by the property tests.

use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::error::ClusterError;
use kyoto_cluster::events::FleetEvent;
use kyoto_cluster::faults::{AbortPoint, FaultEvent, FaultPlan, FaultPlanConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_sim::workload::{ComputeOnly, Op, Workload};
use kyoto_workloads::spec::{SpecApp, SpecWorkload};

const SCALE: u64 = 256;

fn workload(seed: u64) -> Box<dyn Workload> {
    Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, seed))
}

/// A cluster of `cells` cells seeded with `vms` VMs round-robin.
fn seeded(cells: usize, vms: usize) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig::new(cells, SCALE).with_epoch_ticks(4));
    for i in 0..vms {
        cluster
            .add_vm(
                CellId(i % cells),
                VmConfig::new(format!("vm{i}")),
                workload(0xfa + i as u64),
            )
            .unwrap();
    }
    cluster
}

fn no_arrivals(_: u64) -> (VmConfig, Box<dyn Workload>) {
    unreachable!("no arrivals scheduled")
}

#[test]
fn scripted_crash_orphans_residents_then_readmits_and_reboots() {
    let mut cluster = seeded(2, 4);
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0)
            .with_down_epochs(2)
            .with_scripted(1, FaultEvent::CellCrash { pick: 0 }),
    ));
    cluster.run_epochs(2).unwrap();
    assert!(cluster.is_down(CellId(0)));
    assert_eq!(cluster.total_faults().crashes, 1);
    assert_eq!(cluster.total_faults().orphaned, 2);
    assert_eq!(cluster.orphan_count(), 2);
    assert_eq!(
        cluster.occupancies(),
        vec![0, 2],
        "orphans claim no cell until re-admitted"
    );
    assert_eq!(cluster.reports().len(), 4, "orphans still report");
    cluster.verify_conservation().unwrap();

    // Epoch 2: the orphans' first retry is due; cell 1 has room for both.
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.total_faults().readmitted, 2);
    assert_eq!(cluster.orphan_count(), 0);
    assert_eq!(cluster.occupancies(), vec![0, 4]);
    assert_eq!(cluster.mean_readmission_latency_epochs(), Some(1.0));

    // Epoch 3: the down time (2 epochs from the crash at epoch 1) is over.
    cluster.run_epoch().unwrap();
    assert!(!cluster.is_down(CellId(0)));
    assert_eq!(cluster.total_faults().recoveries, 1);
    cluster.verify_conservation().unwrap();

    // The rebooted cell is a first-class citizen again: load balancing
    // repopulates it.
    cluster.run_epochs(4).unwrap();
    assert!(
        cluster.occupancies()[0] > 0,
        "the rebooted cell is repopulated: {:?}",
        cluster.occupancies()
    );
    cluster.verify_conservation().unwrap();
}

#[test]
fn orphans_back_off_then_are_rejected_with_reports_archived() {
    // Single cell: while it is down there is nowhere to re-admit, so the
    // orphans burn through their retry budget and are rejected — loudly,
    // with their final reports archived.
    let mut cluster = seeded(1, 2);
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0)
            .with_down_epochs(4)
            .with_max_retries(2)
            .with_scripted(1, FaultEvent::CellCrash { pick: 0 }),
    ));
    cluster.run_epochs(5).unwrap();
    let faults = cluster.total_faults();
    assert_eq!(faults.orphaned, 2);
    assert_eq!(
        faults.retry_backoffs, 2,
        "one backoff each before rejection"
    );
    assert_eq!(faults.rejected_orphans, 2);
    assert_eq!(faults.readmitted, 0);
    assert_eq!(cluster.orphan_count(), 0);
    assert_eq!(cluster.reports().len(), 0, "nothing is live");
    assert_eq!(
        cluster.departed_reports().len(),
        2,
        "rejected orphans are archived, never silently dropped"
    );
    assert!(cluster.departed_reports()[0].pmcs.instructions > 0);
    assert_eq!(cluster.all_reports().len(), 2);
    cluster.verify_conservation().unwrap();
}

#[test]
fn departure_can_cancel_a_retry_queued_vm() {
    let mut cluster = seeded(2, 2);
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0).with_scripted(0, FaultEvent::CellCrash { pick: 0 }),
    ));
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.orphan_count(), 1);
    // The departure candidates at the next boundary are [fvm1 (orphaned),
    // fvm2 (resident)] in fleet-id order; pick 0 selects the orphan. Events
    // apply before the fault boundary, so the cancellation beats the
    // orphan's first retry.
    cluster
        .run_epoch_with_events(&[FleetEvent::VmDeparture { pick: 0 }], &mut no_arrivals)
        .unwrap();
    assert_eq!(cluster.total_departures(), 1);
    assert_eq!(
        cluster.orphan_count(),
        0,
        "the retry entry left with the VM"
    );
    assert_eq!(cluster.total_faults().readmitted, 0);
    assert_eq!(cluster.departed_reports().len(), 1);
    assert_eq!(cluster.reports().len(), 1);
    cluster.verify_conservation().unwrap();
}

#[test]
fn join_does_not_resurrect_a_crashed_cell() {
    let mut cluster = seeded(2, 2);
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0)
            .with_down_epochs(3)
            .with_scripted(0, FaultEvent::CellCrash { pick: 0 }),
    ));
    cluster.run_epoch().unwrap();
    assert!(cluster.is_down(CellId(0)));
    // A scheduled CellJoin of the crashed cell toggles the draining flag
    // only: the machine stays down until its reboot epoch.
    cluster
        .run_epoch_with_events(&[FleetEvent::CellJoin(CellId(0))], &mut no_arrivals)
        .unwrap();
    assert!(cluster.is_down(CellId(0)), "a join cannot un-crash a cell");
    cluster.run_epochs(2).unwrap();
    assert!(!cluster.is_down(CellId(0)), "the reboot clock still runs");
    cluster.verify_conservation().unwrap();
}

#[test]
fn crash_during_drain_does_not_deadlock_and_the_drain_survives() {
    let mut cluster = seeded(2, 4);
    cluster.set_draining(CellId(0), true).unwrap();
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0)
            .with_down_epochs(2)
            .with_scripted(1, FaultEvent::CellCrash { pick: 0 }),
    ));
    // The crash beats the evacuation: cell 0's residents are orphaned
    // instead of migrated. The run must settle — orphans re-admit onto
    // cell 1 (admission skips the draining cell even after it reboots).
    cluster.run_epochs(8).unwrap();
    assert!(
        cluster.is_draining(CellId(0)),
        "the drain survives the crash"
    );
    assert!(!cluster.is_down(CellId(0)));
    assert_eq!(cluster.occupancies(), vec![0, 4]);
    assert_eq!(cluster.orphan_count(), 0);
    assert_eq!(
        cluster.total_faults().readmitted,
        cluster.total_faults().orphaned
    );
    cluster.verify_conservation().unwrap();
}

#[test]
fn crash_orphans_an_in_flight_arrival_before_placement() {
    // Epoch 0's boundary plans a balancing move into cell 1; cell 1 then
    // crashes at epoch 1's boundary, before the arrival was ever admitted.
    // The in-flight VM must be orphaned, not lost.
    let config = ClusterConfig::new(2, SCALE)
        .with_epoch_ticks(4)
        .with_policy(ConsolidationPolicy::LoadBalance)
        .with_planner(PlannerConfig::default().with_max_moves(1));
    let mut cluster = Cluster::new(config);
    for i in 0..2 {
        cluster
            .add_vm(
                CellId(0),
                VmConfig::new(format!("vm{i}")),
                workload(i as u64),
            )
            .unwrap();
    }
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0).with_scripted(1, FaultEvent::CellCrash { pick: 1 }),
    ));
    cluster.run_epoch().unwrap();
    assert_eq!(
        cluster.total_migrations(),
        1,
        "the move was planned and applied"
    );
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.total_faults().crashes, 1);
    assert_eq!(
        cluster.total_faults().orphaned,
        1,
        "the un-placed arrival was orphaned"
    );
    assert_eq!(cluster.reports().len(), 2, "no VM was lost");
    cluster.verify_conservation().unwrap();
    // Its retry lands back on cell 0 — the only cell standing.
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.total_faults().readmitted, 1);
    assert_eq!(cluster.occupancies(), vec![2, 0]);
    cluster.verify_conservation().unwrap();
}

#[test]
fn crash_can_race_an_admission_decision_at_the_same_boundary() {
    // A churn arrival is admitted onto the emptiest cell; the *same*
    // boundary then crashes that cell (events apply before faults). The
    // newborn VM must ride the orphan path like any resident.
    let mut cluster = seeded(2, 3); // cell0: 2 VMs, cell1: 1 VM
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0).with_scripted(0, FaultEvent::CellCrash { pick: 1 }),
    ));
    let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
        (
            VmConfig::new(format!("arrival{index}")),
            workload(0xdead + index),
        )
    };
    cluster
        .run_epoch_with_events(&[FleetEvent::VmArrival], &mut spawn)
        .unwrap();
    assert_eq!(cluster.total_arrivals(), 1);
    assert_eq!(
        cluster.total_faults().orphaned,
        2,
        "newborn + prior resident"
    );
    assert_eq!(cluster.reports().len(), 4);
    cluster.verify_conservation().unwrap();
    cluster.run_epochs(3).unwrap();
    assert_eq!(cluster.orphan_count(), 0, "both orphans were readmitted");
    cluster.verify_conservation().unwrap();
}

/// Sets up the canonical abort scenario: 2 VMs on cell 0, load balancing
/// with one move per epoch, and the given abort scripted against the plan
/// of every epoch in `0..epochs` (the balancer retries a failed move at
/// the next boundary, so a single scripted abort only delays it).
fn abort_cluster(at: AbortPoint, epochs: u64) -> Cluster {
    let config = ClusterConfig::new(2, SCALE)
        .with_epoch_ticks(6)
        .with_policy(ConsolidationPolicy::LoadBalance)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(1)
                .with_downtime_ticks(2),
        );
    let mut cluster = Cluster::new(config);
    for i in 0..2 {
        cluster
            .add_vm(
                CellId(0),
                VmConfig::new(format!("vm{i}")),
                workload(i as u64),
            )
            .unwrap();
    }
    let mut plan = FaultPlanConfig::new(0);
    for epoch in 0..epochs {
        plan = plan.with_scripted(epoch, FaultEvent::MigrationAbort { pick: 0, at });
    }
    cluster.install_faults(FaultPlan::new(plan));
    cluster
}

#[test]
fn source_abort_is_a_free_cancel() {
    let mut cluster = abort_cluster(AbortPoint::Source, 2);
    cluster.run_epochs(2).unwrap();
    assert_eq!(cluster.total_faults().aborted_source, 2);
    assert_eq!(cluster.total_migrations(), 0, "cancelled moves never count");
    assert_eq!(cluster.occupancies(), vec![2, 0], "the VM never left");
    // Nothing was suspended, so nobody paid downtime for the aborts.
    for report in cluster.reports() {
        assert_eq!(report.migrations, 0);
        assert_eq!(report.ticks_resident, 12, "no blackout was charged");
    }
    cluster.verify_conservation().unwrap();
    // An abort cancels the attempt, not the policy: once the faults stop,
    // the balancer's next plan goes through.
    cluster.run_epochs(2).unwrap();
    assert_eq!(cluster.total_migrations(), 1);
    assert_eq!(cluster.occupancies(), vec![1, 1]);
}

#[test]
fn in_flight_abort_rolls_back_to_the_source_with_all_the_cost() {
    let mut cluster = abort_cluster(AbortPoint::InFlight, 2);
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.total_faults().aborted_in_flight, 1);
    assert_eq!(cluster.total_migrations(), 0);
    assert_eq!(
        cluster.occupancies(),
        vec![2, 0],
        "the rollback re-queues the VM at its source"
    );
    cluster.verify_conservation().unwrap();
    cluster.run_epoch().unwrap();
    let reports = cluster.reports();
    let victim: Vec<_> = reports.iter().filter(|r| r.ticks_resident < 12).collect();
    assert_eq!(victim.len(), 1, "exactly one VM paid the blackout");
    assert_eq!(
        victim[0].ticks_resident, 10,
        "downtime was charged once per rollback"
    );
    assert_eq!(
        victim[0].migrations, 0,
        "an aborted move is not a migration"
    );
    assert!(
        victim[0].flushed_lines > 0,
        "extraction flushed the source cache before the abort"
    );
    cluster.verify_conservation().unwrap();
}

#[test]
fn dest_abort_additionally_stalls_the_destination() {
    // Give the destination a resident so the phantom blackout has a victim.
    let run = |at: Option<AbortPoint>| {
        let config = ClusterConfig::new(2, SCALE)
            .with_epoch_ticks(6)
            .with_policy(ConsolidationPolicy::LoadBalance)
            .with_planner(
                PlannerConfig::default()
                    .with_max_moves(1)
                    .with_downtime_ticks(2),
            );
        let mut cluster = Cluster::new(config);
        for i in 0..3 {
            cluster
                .add_vm(
                    CellId(0),
                    VmConfig::new(format!("vm{i}")),
                    workload(i as u64),
                )
                .unwrap();
        }
        let bystander = cluster
            .add_vm(CellId(1), VmConfig::new("bystander"), workload(99))
            .unwrap();
        if let Some(at) = at {
            cluster.install_faults(FaultPlan::new(
                FaultPlanConfig::new(0)
                    .with_scripted(0, FaultEvent::MigrationAbort { pick: 0, at }),
            ));
        }
        cluster.run_epochs(2).unwrap();
        cluster.verify_conservation().unwrap();
        (cluster.report(bystander).unwrap(), cluster.total_faults())
    };
    let (clean, _) = run(None);
    let (stalled, faults) = run(Some(AbortPoint::Dest));
    assert_eq!(faults.aborted_dest, 1);
    assert!(
        stalled.pmcs.instructions < clean.pmcs.instructions,
        "the phantom blackout stalls the destination's residents: {} vs {}",
        stalled.pmcs.instructions,
        clean.pmcs.instructions
    );
}

#[test]
fn slowdown_degrades_throughput_then_recovers() {
    let mut cluster = Cluster::new(ClusterConfig::new(1, SCALE).with_epoch_ticks(4));
    cluster
        .add_vm(
            CellId(0),
            VmConfig::new("steady"),
            Box::new(ComputeOnly::new(1)),
        )
        .unwrap();
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0)
            .with_slowdown_factor(4)
            .with_slowdown_epochs(2)
            .with_scripted(1, FaultEvent::CellSlowdown { pick: 0 }),
    ));
    cluster.run_epochs(4).unwrap();
    assert_eq!(cluster.total_faults().slowdowns, 1);
    let per_epoch: Vec<u64> = cluster
        .history()
        .iter()
        .map(|epoch| epoch.cells[0].instructions)
        .collect();
    assert!(
        per_epoch[1] < per_epoch[0] / 2,
        "the divided cycle budget must show up in throughput: {per_epoch:?}"
    );
    assert_eq!(per_epoch[1], per_epoch[2], "the slowdown lasts two epochs");
    assert_eq!(
        per_epoch[3], per_epoch[0],
        "full speed returns when the slowdown expires"
    );
}

#[test]
fn quiet_fleet_reports_no_faults() {
    let mut cluster = seeded(2, 4);
    cluster.run_epochs(3).unwrap();
    assert!(cluster.total_faults().is_quiet());
    assert!(cluster
        .history()
        .iter()
        .all(|epoch| epoch.faults.is_quiet()));
    assert_eq!(cluster.mean_readmission_latency_epochs(), None);
    cluster.verify_conservation().unwrap();
}

/// A workload that opts out of cloning (the `try_clone_box` default), to
/// exercise the checkpoint error paths.
struct Sealed(ComputeOnly);

impl Workload for Sealed {
    fn next_op(&mut self) -> Op {
        self.0.next_op()
    }

    fn name(&self) -> &str {
        "sealed"
    }

    fn working_set_bytes(&self) -> u64 {
        self.0.working_set_bytes()
    }
}

#[test]
fn checkpoint_names_the_cell_hosting_an_uncloneable_workload() {
    let mut cluster = seeded(2, 1);
    cluster
        .add_vm(
            CellId(1),
            VmConfig::new("opaque"),
            Box::new(Sealed(ComputeOnly::new(1))),
        )
        .unwrap();
    cluster.run_epoch().unwrap();
    match cluster.checkpoint() {
        Err(ClusterError::Checkpoint { cell, .. }) => assert_eq!(cell, CellId(1)),
        other => panic!("expected a checkpoint error, got {other:?}"),
    }
}

#[test]
fn checkpoint_names_an_uncloneable_orphan() {
    let mut cluster = Cluster::new(ClusterConfig::new(1, SCALE).with_epoch_ticks(4));
    let vm = cluster
        .add_vm(
            CellId(0),
            VmConfig::new("opaque"),
            Box::new(Sealed(ComputeOnly::new(1))),
        )
        .unwrap();
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0).with_scripted(0, FaultEvent::CellCrash { pick: 0 }),
    ));
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.orphan_count(), 1);
    match cluster.checkpoint() {
        Err(ClusterError::UncloneableVm { vm: offender }) => assert_eq!(offender, vm),
        other => panic!("expected an uncloneable-VM error, got {other:?}"),
    }
}

#[test]
fn checkpoint_round_trips_mid_crash() {
    // Checkpoint while a cell is down and orphans sit in the retry queue:
    // the restored fleet must replay the recovery identically.
    let mut cluster = seeded(2, 4);
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(7)
            .with_down_epochs(3)
            .with_scripted(1, FaultEvent::CellCrash { pick: 0 }),
    ));
    cluster.run_epochs(2).unwrap();
    assert!(cluster.orphan_count() > 0, "checkpoint taken mid-recovery");
    let checkpoint = cluster.checkpoint().unwrap();
    assert_eq!(checkpoint.queued_orphans(), cluster.orphan_count());
    assert_eq!(checkpoint.live_vms(), 4);
    let mut restored = Cluster::restore(checkpoint);
    cluster.run_epochs(4).unwrap();
    restored.run_epochs(4).unwrap();
    assert_eq!(cluster.all_reports(), restored.all_reports());
    assert_eq!(cluster.history(), restored.history());
    assert_eq!(cluster.total_faults(), restored.total_faults());
    cluster.verify_conservation().unwrap();
    restored.verify_conservation().unwrap();
}

#[test]
fn unknown_cells_surface_typed_errors() {
    let mut cluster = seeded(1, 1);
    assert!(matches!(
        cluster.set_draining(CellId(9), true),
        Err(ClusterError::UnknownCell { cell: CellId(9) })
    ));
    assert!(matches!(
        cluster.add_vm(CellId(9), VmConfig::new("x"), workload(1)),
        Err(ClusterError::UnknownCell { cell: CellId(9) })
    ));
    let mut spawn = no_arrivals;
    let err = cluster
        .run_epoch_with_events(&[FleetEvent::CellDrain(CellId(9))], &mut spawn)
        .unwrap_err();
    assert!(err.to_string().contains("unknown cell"));
}

/// A crash preserves the vCPU lifecycle through the orphan retry queue: a
/// service that parked after its first burst is orphaned mid-sleep, waits
/// out the retry backoff, is re-admitted still Blocked with its wake clock
/// intact, and its pending timer fires on the recovery cell at exactly the
/// resident tick the clock reaches the scripted wake — never earlier.
#[test]
fn a_blocked_vm_rides_through_a_crash_and_its_pending_wake_still_fires() {
    use kyoto_cluster::snapshot::FleetVmId;
    use kyoto_hypervisor::lifecycle::{VcpuState, WakeSource};
    use kyoto_workloads::interactive::Interactive;
    let mut cluster = Cluster::new(ClusterConfig::new(2, SCALE).with_epoch_ticks(4));
    cluster
        .add_vm(
            CellId(0),
            VmConfig::new("sleeper").with_wake_source(WakeSource::new(3).with_timer(10)),
            Box::new(Interactive::new(
                SpecWorkload::new(SpecApp::Gcc, SCALE, 3),
                48,
            )),
        )
        .unwrap();
    cluster
        .add_vm(CellId(1), VmConfig::new("batch"), workload(0xbb))
        .unwrap();
    let sleeper = FleetVmId(1);
    cluster.install_faults(FaultPlan::new(
        FaultPlanConfig::new(0)
            .with_down_epochs(2)
            .with_scripted(1, FaultEvent::CellCrash { pick: 0 }),
    ));

    // Epoch 0: the first burst runs one tick, then the vCPU parks.
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.vcpu_state(sleeper), Some(VcpuState::Blocked));
    assert_eq!(cluster.wake_clock(sleeper), Some(4));

    // Epoch 1: cell 0 crashes at the boundary before its ticks run — the
    // sleeper is orphaned mid-sleep with wake clock 4.
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.orphan_count(), 1);
    assert_eq!(cluster.vcpu_state(sleeper), None, "orphans are resident nowhere");
    assert_eq!(cluster.wake_clock(sleeper), None);

    // Epoch 2: the retry is due; the sleeper lands on cell 1 *still
    // Blocked* after the admission blackout and sleeps through the rest of
    // the epoch (clock 4 -> 7). Re-admission must not fake a wake.
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.total_faults().readmitted, 1);
    assert_eq!(cluster.vcpu_state(sleeper), Some(VcpuState::Blocked));
    assert_eq!(cluster.wake_clock(sleeper), Some(7));
    assert_eq!(
        cluster.report(sleeper).unwrap().ticks_scheduled,
        1,
        "only the pre-crash burst has ever run"
    );

    // Epoch 3: the clock sweeps 7..=10, so the scripted timer fires on the
    // recovery cell's fourth resident tick: one more scheduled tick, then
    // the drained burst parks the vCPU again.
    cluster.run_epoch().unwrap();
    let report = cluster.report(sleeper).unwrap();
    assert_eq!(report.ticks_scheduled, 2, "the pending wake fired after recovery");
    assert_eq!(cluster.wake_clock(sleeper), Some(11));
    assert_eq!(cluster.vcpu_state(sleeper), Some(VcpuState::Blocked));
    assert_eq!(
        report.ticks_blocked, 9,
        "3 blocked ticks before the crash, 3 after re-admission, 3 before the wake"
    );
    cluster.verify_conservation().unwrap();
}
