//! Property-based tests of the cluster subsystem's determinism claims:
//!
//! 1. the migration planner is a pure function — equal snapshots give equal
//!    plans — and every plan it emits is valid (resident VMs only, no VM
//!    moved twice, no destination pushed past its core capacity, no
//!    destination draining);
//! 2. serial and cell-parallel cluster epochs are **bit-identical** across
//!    every consolidation policy and cell count (each cell owns all its
//!    state, so thread scheduling cannot leak into results) — including
//!    under full fleet dynamics (seeded arrival/departure churn plus
//!    scripted drain/join maintenance events);
//! 3. the cost-aware planner is a strict refinement of the fixed-budget
//!    planner: its plan is a subset of the fixed-budget plan (so its total
//!    downtime can never exceed it), and drain evacuations are never gated.

use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::events::{EventSchedule, EventScheduleConfig};
use kyoto_cluster::faults::{FaultPlan, FaultPlanConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, MigrationPlanner, PlannerConfig};
use kyoto_cluster::snapshot::{CellId, CellSnapshot, ClusterSnapshot, FleetVmId, VmSnapshot};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ConsolidationPolicy> {
    prop_oneof![
        Just(ConsolidationPolicy::LoadBalance),
        Just(ConsolidationPolicy::BinPack),
        Just(ConsolidationPolicy::PollutionAware),
        Just(ConsolidationPolicy::PollutionAwareDensity),
    ]
}

/// Builds a snapshot from generated raw material: cell count, cores per
/// cell, a draining mask, and per-VM (cell choice, pollution rate,
/// punishments) triples.
fn snapshot_with_drains(
    cells: usize,
    cores: usize,
    draining_mask: u32,
    vms: &[(usize, f64, u64)],
) -> ClusterSnapshot {
    let mut cell_snapshots: Vec<CellSnapshot> = (0..cells)
        .map(|i| CellSnapshot {
            cell: CellId(i),
            cores,
            draining: draining_mask & (1 << i) != 0,
            down: false,
            vms: Vec::new(),
        })
        .collect();
    for (i, &(cell_choice, pollution_rate, punishments)) in vms.iter().enumerate() {
        let cell = cell_choice % cells;
        cell_snapshots[cell].vms.push(VmSnapshot {
            vm: FleetVmId(i as u32 + 1),
            name: format!("fvm{}", i + 1),
            pollution_rate,
            punishments,
            instructions: 1_000 + i as u64,
            llc_misses: (pollution_rate * 10.0) as u64,
            ipc: 1.0,
            working_set_bytes: 64 * 1024,
            resident_lines: (pollution_rate * 2.0) as u64 + i as u64 * 16,
            blocked_fraction: 0.0,
        });
    }
    ClusterSnapshot {
        epoch: 0,
        cells: cell_snapshots,
    }
}

fn snapshot_from(cells: usize, cores: usize, vms: &[(usize, f64, u64)]) -> ClusterSnapshot {
    snapshot_with_drains(cells, cores, 0, vms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plans are deterministic and valid for any snapshot shape — draining
    /// cells included: every move references a resident VM at its true
    /// cell, no VM moves twice, no destination is pushed past its capacity
    /// or is draining, and the per-epoch move budget holds. Covers the
    /// fixed-budget and the cost-aware planner.
    #[test]
    fn plans_are_deterministic_valid_and_never_overcommit(
        cells in 1usize..6,
        cores in 1usize..5,
        max_moves in 1usize..8,
        threshold in 0.0f64..1500.0,
        draining_mask in 0u32..64,
        cost_aware in 0u32..2,
        policy in arb_policy(),
        vms in prop::collection::vec((0usize..6, 0.0f64..2000.0, 0u64..4), 0..16),
    ) {
        let snapshot = snapshot_with_drains(cells, cores, draining_mask, &vms);
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(max_moves)
                .with_polluter_threshold(threshold)
                .with_cost_aware(cost_aware == 1),
        );
        let plan = planner.plan(&snapshot, policy);
        let again = planner.plan(&snapshot, policy);
        prop_assert_eq!(&plan, &again, "planner must be pure");
        prop_assert!(plan.len() <= max_moves, "move budget exceeded");
        if let Err(violation) = plan.validate(&snapshot) {
            prop_assert!(false, "invalid plan under {:?}: {}", policy, violation);
        }
        for mv in &plan.moves {
            prop_assert!(
                !snapshot.cells[mv.to.0].draining,
                "{:?} evacuates into a draining cell under {:?}",
                mv,
                policy
            );
        }
    }

    /// The cost-aware plan is a subset of the fixed-budget plan for the
    /// same snapshot and policy — so its total downtime can never exceed
    /// the fixed-budget planner's — and it keeps every drain evacuation the
    /// fixed-budget planner found room for.
    #[test]
    fn cost_aware_is_a_subset_of_the_fixed_budget_plan(
        cells in 2usize..6,
        cores in 1usize..5,
        max_moves in 1usize..8,
        threshold in 0.0f64..1500.0,
        draining_mask in 0u32..64,
        savings_per_tick in 0.0f64..500.0,
        policy in arb_policy(),
        vms in prop::collection::vec((0usize..6, 0.0f64..2000.0, 0u64..4), 0..16),
    ) {
        let snapshot = snapshot_with_drains(cells, cores, draining_mask, &vms);
        let base = PlannerConfig::default()
            .with_max_moves(max_moves)
            .with_polluter_threshold(threshold)
            .with_savings_per_tick(savings_per_tick);
        let fixed = MigrationPlanner::new(base).plan(&snapshot, policy);
        let cost_aware =
            MigrationPlanner::new(base.with_cost_aware(true)).plan(&snapshot, policy);
        let cost = base.cost;
        prop_assert!(
            cost_aware.total_downtime_ticks(&cost) <= fixed.total_downtime_ticks(&cost),
            "cost-aware inflicted more downtime: {:?} vs {:?}",
            cost_aware,
            fixed
        );
        for mv in &cost_aware.moves {
            prop_assert!(
                fixed.moves.contains(mv),
                "{:?} is not in the fixed-budget plan {:?}",
                mv,
                fixed
            );
        }
        for mv in &fixed.moves {
            if snapshot.cells[mv.from.0].draining {
                prop_assert!(
                    cost_aware.moves.contains(mv),
                    "evacuation {:?} was cost-gated",
                    mv
                );
            }
        }
    }

    /// Load balancing never increases the occupancy spread, whatever the
    /// starting placement.
    #[test]
    fn load_balance_narrows_the_occupancy_spread(
        cells in 2usize..5,
        vms in prop::collection::vec((0usize..5, 0.0f64..100.0, 0u64..1), 1..12),
    ) {
        let snapshot = snapshot_from(cells, 4, &vms);
        let planner = MigrationPlanner::new(PlannerConfig::default().with_max_moves(8));
        let plan = planner.plan(&snapshot, ConsolidationPolicy::LoadBalance);
        let mut occupancy: Vec<i64> =
            snapshot.cells.iter().map(|c| c.occupancy() as i64).collect();
        let spread_before =
            occupancy.iter().max().unwrap() - occupancy.iter().min().unwrap();
        for mv in &plan.moves {
            occupancy[mv.from.0] -= 1;
            occupancy[mv.to.0] += 1;
        }
        let spread_after =
            occupancy.iter().max().unwrap() - occupancy.iter().min().unwrap();
        prop_assert!(
            spread_after <= spread_before.max(1),
            "spread grew: {} -> {} ({:?})",
            spread_before,
            spread_after,
            plan
        );
    }
}

proptest! {
    // End-to-end cluster runs are costly; a handful of cases over the full
    // policy x cell-count grid is plenty because any divergence is
    // deterministic, not probabilistic.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serial and cell-parallel epochs produce bit-identical fleet reports
    /// and epoch histories across policies, cell counts and seedings.
    #[test]
    fn serial_and_parallel_cluster_epochs_are_bit_identical(
        cells in 2usize..5,
        vm_count in 2usize..9,
        policy in arb_policy(),
        seed in 0u64..1_000,
    ) {
        let apps = [
            SpecApp::Gcc,
            SpecApp::Lbm,
            SpecApp::Omnetpp,
            SpecApp::Mcf,
            SpecApp::Soplex,
            SpecApp::Milc,
        ];
        let run = |parallel: bool| {
            let config = ClusterConfig::new(cells, 256)
                .with_epoch_ticks(3)
                .with_policy(policy)
                .with_planner(
                    PlannerConfig::default()
                        .with_max_moves(3)
                        .with_polluter_threshold(200.0),
                )
                .with_parallel_cells(parallel);
            let mut cluster = Cluster::new(config);
            for i in 0..vm_count {
                let app = apps[i % apps.len()];
                cluster
                    .add_vm(
                        CellId(i % cells),
                        VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                        Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                    )
                    .unwrap();
            }
            cluster.run_epochs(3).unwrap();
            (
                cluster.reports(),
                cluster.history().to_vec(),
                cluster.occupancies(),
                cluster.total_migrations(),
            )
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Serial and cell-parallel epochs stay bit-identical under full fleet
    /// dynamics: seeded arrival/departure churn plus a scripted drain/join
    /// cycle, across every consolidation policy (cost-aware planning on, so
    /// the gate is exercised too). Event application is control-plane work
    /// between epochs — single-threaded either way — so thread scheduling
    /// must not be able to leak into any report, occupancy or counter.
    #[test]
    fn churn_epochs_are_bit_identical_serial_vs_parallel(
        cells in 2usize..5,
        initial_vms in 2usize..7,
        policy in arb_policy(),
        seed in 0u64..1_000,
        arrival_rate in 0.0f64..2.0,
        departure_rate in 0.0f64..1.5,
    ) {
        let apps = [
            SpecApp::Gcc,
            SpecApp::Lbm,
            SpecApp::Omnetpp,
            SpecApp::Mcf,
            SpecApp::Soplex,
            SpecApp::Milc,
        ];
        let drained = CellId(cells - 1);
        let schedule = EventSchedule::new(
            EventScheduleConfig::new(seed)
                .with_arrival_rate(arrival_rate)
                .with_departure_rate(departure_rate)
                .with_drain(1, drained)
                .with_join(3, drained),
        );
        let run = |parallel: bool| {
            let config = ClusterConfig::new(cells, 256)
                .with_epoch_ticks(3)
                .with_policy(policy)
                .with_planner(
                    PlannerConfig::default()
                        .with_max_moves(3)
                        .with_polluter_threshold(200.0)
                        .with_cost_aware(true),
                )
                .with_parallel_cells(parallel);
            let mut cluster = Cluster::new(config);
            for i in 0..initial_vms {
                let app = apps[i % apps.len()];
                cluster
                    .add_vm(
                        CellId(i % cells),
                        VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                        Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                    )
                    .unwrap();
            }
            let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
                let app = apps[(index as usize) % apps.len()];
                (
                    VmConfig::new(format!("churn{index}-{}", app.name())).with_llc_cap(50.0),
                    Box::new(SpecWorkload::new(app, 256, seed ^ (0xA11 + index))),
                )
            };
            cluster
                .run_epochs_with_schedule(&schedule, 5, &mut spawn)
                .unwrap();
            (
                cluster.all_reports(),
                cluster.history().to_vec(),
                cluster.occupancies(),
                (
                    cluster.total_migrations(),
                    cluster.total_arrivals(),
                    cluster.total_departures(),
                    cluster.rejected_arrivals(),
                ),
            )
        };
        prop_assert_eq!(run(false), run(true));
    }
}

proptest! {
    // Fault runs stack crashes, rollbacks and retries on top of the epoch
    // loop; a few cases per property cover the policy x planner-mode grid
    // because every divergence or conservation break is deterministic.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// VM conservation holds under injected faults across every policy and
    /// both planner modes: after every epoch, each VM ever admitted is
    /// accounted for exactly once — resident, in flight, orphaned in the
    /// retry queue, or departed with its report archived. Crashes, aborts
    /// and retry rejections never lose or duplicate a VM, and the orphan
    /// ledger balances exactly.
    #[test]
    fn faults_conserve_vms_across_policies_and_planner_modes(
        cells in 2usize..5,
        vm_count in 3usize..9,
        policy in arb_policy(),
        cost_aware in 0u32..2,
        seed in 0u64..1_000,
        crash_rate in 0.0f64..0.8,
        abort_rate in 0.0f64..1.2,
        slowdown_rate in 0.0f64..0.5,
    ) {
        let apps = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
        let config = ClusterConfig::new(cells, 256)
            .with_epoch_ticks(3)
            .with_policy(policy)
            .with_planner(
                PlannerConfig::default()
                    .with_max_moves(3)
                    .with_polluter_threshold(200.0)
                    .with_cost_aware(cost_aware == 1),
            );
        let mut cluster = Cluster::new(config);
        for i in 0..vm_count {
            let app = apps[i % apps.len()];
            cluster
                .add_vm(
                    CellId(i % cells),
                    VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                    Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                )
                .unwrap();
        }
        cluster.install_faults(FaultPlan::new(
            FaultPlanConfig::new(seed ^ 0xFA11)
                .with_crash_rate(crash_rate)
                .with_slowdown_rate(slowdown_rate)
                .with_abort_rate(abort_rate)
                .with_down_epochs(2)
                .with_max_retries(3),
        ));
        for epoch in 0..8 {
            cluster.run_epoch().unwrap();
            if let Err(violation) = cluster.verify_conservation() {
                prop_assert!(false, "epoch {}: {}", epoch, violation);
            }
        }
        let faults = cluster.total_faults();
        prop_assert_eq!(
            faults.orphaned,
            faults.readmitted + faults.rejected_orphans + cluster.orphan_count() as u64,
            "the orphan ledger must balance: {:?}",
            faults
        );
    }

    /// Checkpoint/restore is bit-identical: running `k` epochs straight
    /// equals checkpointing after `j` and resuming for `k - j`, with a
    /// fault plan installed, across every policy and both planner modes.
    #[test]
    fn restore_resumes_bit_identically(
        cells in 2usize..4,
        vm_count in 2usize..7,
        policy in arb_policy(),
        cost_aware in 0u32..2,
        seed in 0u64..1_000,
        split in 1u64..6,
    ) {
        let apps = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
        let total = 6u64;
        let j = split.min(total - 1);
        let build = || {
            let config = ClusterConfig::new(cells, 256)
                .with_epoch_ticks(3)
                .with_policy(policy)
                .with_planner(
                    PlannerConfig::default()
                        .with_max_moves(3)
                        .with_polluter_threshold(200.0)
                        .with_cost_aware(cost_aware == 1),
                );
            let mut cluster = Cluster::new(config);
            for i in 0..vm_count {
                let app = apps[i % apps.len()];
                cluster
                    .add_vm(
                        CellId(i % cells),
                        VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                        Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                    )
                    .unwrap();
            }
            cluster.install_faults(FaultPlan::new(
                FaultPlanConfig::new(seed ^ 0xC4EC)
                    .with_crash_rate(0.4)
                    .with_abort_rate(0.6)
                    .with_down_epochs(2),
            ));
            cluster
        };
        let mut straight = build();
        straight.run_epochs(total).unwrap();
        let mut first = build();
        first.run_epochs(j).unwrap();
        let checkpoint = first.checkpoint().unwrap();
        prop_assert_eq!(checkpoint.epoch(), j);
        let mut resumed = Cluster::restore(checkpoint);
        resumed.run_epochs(total - j).unwrap();
        prop_assert_eq!(straight.all_reports(), resumed.all_reports());
        prop_assert_eq!(straight.history().to_vec(), resumed.history().to_vec());
        prop_assert_eq!(straight.occupancies(), resumed.occupancies());
        prop_assert_eq!(straight.total_migrations(), resumed.total_migrations());
        prop_assert_eq!(straight.total_faults(), resumed.total_faults());
        prop_assert_eq!(straight.orphan_count(), resumed.orphan_count());
        straight.verify_conservation().unwrap();
        resumed.verify_conservation().unwrap();
    }

    /// Serial and cell-parallel epochs stay bit-identical with a fault plan
    /// injecting crashes, slowdowns and aborts: fault application is
    /// control-plane work between epochs, so thread scheduling must not
    /// leak into any report, counter or retry decision.
    #[test]
    fn fault_epochs_are_bit_identical_serial_vs_parallel(
        cells in 2usize..5,
        vm_count in 2usize..8,
        policy in arb_policy(),
        seed in 0u64..1_000,
        crash_rate in 0.0f64..0.7,
        abort_rate in 0.0f64..1.0,
    ) {
        let apps = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
        let run = |parallel: bool| {
            let config = ClusterConfig::new(cells, 256)
                .with_epoch_ticks(3)
                .with_policy(policy)
                .with_planner(
                    PlannerConfig::default()
                        .with_max_moves(3)
                        .with_polluter_threshold(200.0)
                        .with_cost_aware(true),
                )
                .with_parallel_cells(parallel);
            let mut cluster = Cluster::new(config);
            for i in 0..vm_count {
                let app = apps[i % apps.len()];
                cluster
                    .add_vm(
                        CellId(i % cells),
                        VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                        Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                    )
                    .unwrap();
            }
            cluster.install_faults(FaultPlan::new(
                FaultPlanConfig::new(seed ^ 0x5E71A1)
                    .with_crash_rate(crash_rate)
                    .with_slowdown_rate(0.3)
                    .with_abort_rate(abort_rate)
                    .with_down_epochs(2),
            ));
            cluster.run_epochs(7).unwrap();
            cluster.verify_conservation().unwrap();
            (
                cluster.all_reports(),
                cluster.history().to_vec(),
                cluster.occupancies(),
                cluster.total_faults(),
                cluster.orphan_count(),
            )
        };
        prop_assert_eq!(run(false), run(true));
    }
}

proptest! {
    // Trace runs execute three full clusters per case (untraced, traced
    // serial, traced cell-parallel); a handful of cases covers the grid
    // because any divergence is deterministic.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing is pure observability: with identical seeds, a traced run's
    /// reports, history and occupancies byte-equal an untraced run's (the
    /// trace plane never perturbs the simulation) — and with a fault plan
    /// installed, the serial and cell-parallel merged traces render
    /// byte-identically (cell sinks are absorbed in cell-id order after
    /// every cell finishes, so thread scheduling cannot leak in).
    #[test]
    fn tracing_never_perturbs_results_and_merges_deterministically(
        cells in 2usize..4,
        vm_count in 2usize..7,
        policy in arb_policy(),
        seed in 0u64..1_000,
    ) {
        use kyoto_cluster::TraceConfig;
        use kyoto_trace::TraceDoc;
        let apps = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
        let run = |parallel: bool, trace: TraceConfig| {
            let config = ClusterConfig::new(cells, 256)
                .with_epoch_ticks(3)
                .with_policy(policy)
                .with_planner(
                    PlannerConfig::default()
                        .with_max_moves(3)
                        .with_polluter_threshold(200.0),
                )
                .with_parallel_cells(parallel)
                .with_trace(trace);
            let mut cluster = Cluster::new(config);
            for i in 0..vm_count {
                let app = apps[i % apps.len()];
                cluster
                    .add_vm(
                        CellId(i % cells),
                        VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                        Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                    )
                    .unwrap();
            }
            cluster.install_faults(FaultPlan::new(
                FaultPlanConfig::new(seed ^ 0x7AACE)
                    .with_crash_rate(0.4)
                    .with_abort_rate(0.6)
                    .with_down_epochs(2),
            ));
            cluster.run_epochs(5).unwrap();
            let rendered = TraceDoc::from_sink(cluster.trace()).render();
            (
                (
                    cluster.all_reports(),
                    cluster.history().to_vec(),
                    cluster.occupancies(),
                    cluster.total_faults(),
                ),
                rendered,
            )
        };
        let (untraced, off_render) = run(false, TraceConfig::Off);
        let (serial, serial_render) = run(false, TraceConfig::On);
        let (parallel, parallel_render) = run(true, TraceConfig::On);
        prop_assert_eq!(&untraced, &serial, "tracing must not change results");
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial_render, &parallel_render, "merged traces must not depend on cell parallelism");
        prop_assert!(TraceDoc::parse(&off_render).unwrap().is_empty(), "a disabled sink records nothing");
        prop_assert!(!TraceDoc::parse(&serial_render).unwrap().is_empty(), "an enabled sink records the run");
    }
}

/// A restored cluster's trace continues bit-identically: the checkpoint
/// carries the cluster sink, the control-plane cursor and every cell
/// engine's sink, so `trace(run(k))` equals
/// `trace(restore(checkpoint(run(j))).run(k - j))`.
#[test]
fn restored_cluster_trace_resumes_bit_identically() {
    use kyoto_cluster::TraceConfig;
    use kyoto_trace::TraceDoc;
    let apps = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
    let build = || {
        let config = ClusterConfig::new(3, 256)
            .with_epoch_ticks(3)
            .with_policy(ConsolidationPolicy::PollutionAware)
            .with_planner(
                PlannerConfig::default()
                    .with_max_moves(3)
                    .with_polluter_threshold(200.0),
            )
            .with_trace(TraceConfig::On);
        let mut cluster = Cluster::new(config);
        for i in 0..6 {
            let app = apps[i % apps.len()];
            cluster
                .add_vm(
                    CellId(i % 3),
                    VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                    Box::new(SpecWorkload::new(app, 256, 0xABC + i as u64)),
                )
                .unwrap();
        }
        cluster.install_faults(FaultPlan::new(
            FaultPlanConfig::new(0xC4EC)
                .with_crash_rate(0.4)
                .with_abort_rate(0.6)
                .with_down_epochs(2),
        ));
        cluster
    };
    let mut straight = build();
    straight.run_epochs(6).unwrap();
    let mut first = build();
    first.run_epochs(2).unwrap();
    let mut resumed = Cluster::restore(first.checkpoint().unwrap());
    resumed.run_epochs(4).unwrap();
    assert_eq!(
        TraceDoc::from_sink(straight.trace()).render(),
        TraceDoc::from_sink(resumed.trace()).render()
    );
    assert_eq!(straight.all_reports(), resumed.all_reports());
}

/// Builds the lifecycle fixture: one sleep-mostly service (interactive
/// burst, wake timer scripted at `wake_at`) plus one batch VM on cell 0
/// and one batch VM on every other cell. The planner only ever moves VMs
/// for drains (the pollution threshold is unreachable), so migrations in
/// these tests are exactly the ones the test scripts.
fn lifecycle_cluster(cells: usize, epoch_ticks: u64, wake_at: u64, seed: u64) -> Cluster {
    use kyoto_hypervisor::lifecycle::WakeSource;
    use kyoto_workloads::interactive::Interactive;
    let mut cluster = Cluster::new(
        ClusterConfig::new(cells, 256)
            .with_epoch_ticks(epoch_ticks)
            .with_policy(ConsolidationPolicy::PollutionAware)
            .with_planner(
                PlannerConfig::default()
                    .with_max_moves(4)
                    .with_polluter_threshold(1e12),
            ),
    );
    cluster
        .add_vm(
            CellId(0),
            VmConfig::new("sleeper").with_wake_source(WakeSource::new(seed).with_timer(wake_at)),
            Box::new(Interactive::new(
                SpecWorkload::new(SpecApp::Gcc, 256, seed),
                48,
            )),
        )
        .unwrap();
    for cell in 0..cells {
        cluster
            .add_vm(
                CellId(cell),
                VmConfig::new(format!("batch{cell}")),
                Box::new(SpecWorkload::new(SpecApp::Lbm, 256, seed + 1 + cell as u64)),
            )
            .unwrap();
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Live migration preserves the vCPU lifecycle exactly: a service that
    /// blocked after its first burst (its wake timer never fires) stays
    /// Blocked through an arbitrary drain-driven migration — it is never
    /// spuriously scheduled, accrues no further cycles, and only its
    /// blocked-tick counter grows — while batch VMs never block at all.
    #[test]
    fn migration_never_disturbs_a_blocked_vm(
        cells in 2usize..4,
        epoch_ticks in 2u64..6,
        drain_epoch in 0u64..3,
        seed in 0u64..1000,
    ) {
        use kyoto_hypervisor::lifecycle::VcpuState;
        let mut cluster = lifecycle_cluster(cells, epoch_ticks, u64::MAX, seed);
        let sleeper = FleetVmId(1);
        let mut last_blocked = 0u64;
        for epoch in 0..6u64 {
            if epoch == drain_epoch {
                cluster.set_draining(CellId(0), true).unwrap();
            }
            cluster.run_epoch().unwrap();
            let report = cluster.report(sleeper).unwrap();
            prop_assert_eq!(
                report.ticks_scheduled, 1,
                "a blocked service must never run again (epoch {})", epoch
            );
            let state = cluster.vcpu_state(sleeper);
            prop_assert!(
                state.is_none() || state == Some(VcpuState::Blocked),
                "between epochs a sleeper is Blocked or in flight, got {:?}",
                state
            );
            prop_assert!(report.ticks_blocked >= last_blocked, "blocked time is monotone");
            last_blocked = report.ticks_blocked;
            for batch in cluster.reports() {
                if batch.vm != sleeper {
                    prop_assert_eq!(batch.ticks_blocked, 0, "batch VMs never block");
                }
            }
        }
        let report = cluster.report(sleeper).unwrap();
        prop_assert!(report.migrations >= 1, "the drain must have evacuated the sleeper");
        prop_assert!(report.ticks_blocked > 0);
        cluster.verify_conservation().unwrap();
    }
}

/// A pending timer wake travels with the VM: the sleeper blocks on cell 0,
/// is evacuated by a drain while asleep, and its timer — scripted at
/// wake-clock 10 — fires on the destination cell at exactly the resident
/// tick the clock reaches 10, not an epoch earlier or later.
#[test]
fn a_pending_wake_survives_migration_and_fires_on_the_destination() {
    use kyoto_hypervisor::lifecycle::VcpuState;
    let mut cluster = lifecycle_cluster(2, 4, 10, 7);
    let sleeper = FleetVmId(1);

    // Epoch 0: the first burst runs one tick, then the vCPU parks.
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.vcpu_state(sleeper), Some(VcpuState::Blocked));
    assert_eq!(cluster.wake_clock(sleeper), Some(4));
    assert_eq!(cluster.report(sleeper).unwrap().ticks_scheduled, 1);

    // Epoch 1 runs with cell 0 draining: at its boundary the sleeper is
    // taken mid-sleep (wake clock 8) and goes in flight.
    cluster.set_draining(CellId(0), true).unwrap();
    cluster.run_epoch().unwrap();
    assert_eq!(cluster.vcpu_state(sleeper), None, "in flight between cells");
    assert_eq!(cluster.report(sleeper).unwrap().migrations, 1);
    assert_eq!(cluster.report(sleeper).unwrap().ticks_scheduled, 1);

    // Epoch 2: one blackout tick, then the sleeper lands on cell 1 still
    // Blocked. Its clock resumes at 8, so the timer fires on this cell's
    // third resident tick (clock 10): exactly one more scheduled tick,
    // after which the drained burst parks the vCPU again.
    cluster.run_epoch().unwrap();
    let report = cluster.report(sleeper).unwrap();
    assert_eq!(report.ticks_scheduled, 2, "the pending wake fired on arrival's cell");
    assert_eq!(cluster.wake_clock(sleeper), Some(11));
    assert_eq!(cluster.vcpu_state(sleeper), Some(VcpuState::Blocked));
    assert_eq!(
        report.ticks_blocked, 9,
        "3 blocked ticks on cell 0's first epoch, 4 on its second, 2 on cell 1"
    );
    cluster.verify_conservation().unwrap();
}
