//! Property-based tests of the cluster subsystem's determinism claims:
//!
//! 1. the migration planner is a pure function — equal snapshots give equal
//!    plans — and every plan it emits is valid (resident VMs only, no VM
//!    moved twice, no destination pushed past its core capacity);
//! 2. serial and cell-parallel cluster epochs are **bit-identical** across
//!    every consolidation policy and cell count (each cell owns all its
//!    state, so thread scheduling cannot leak into results).

use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::planner::{ConsolidationPolicy, MigrationPlanner, PlannerConfig};
use kyoto_cluster::snapshot::{CellId, CellSnapshot, ClusterSnapshot, FleetVmId, VmSnapshot};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ConsolidationPolicy> {
    prop_oneof![
        Just(ConsolidationPolicy::LoadBalance),
        Just(ConsolidationPolicy::BinPack),
        Just(ConsolidationPolicy::PollutionAware),
    ]
}

/// Builds a snapshot from generated raw material: cell count, cores per
/// cell, and per-VM (cell choice, pollution rate, punishments) triples.
fn snapshot_from(cells: usize, cores: usize, vms: &[(usize, f64, u64)]) -> ClusterSnapshot {
    let mut cell_snapshots: Vec<CellSnapshot> = (0..cells)
        .map(|i| CellSnapshot {
            cell: CellId(i),
            cores,
            vms: Vec::new(),
        })
        .collect();
    for (i, &(cell_choice, pollution_rate, punishments)) in vms.iter().enumerate() {
        let cell = cell_choice % cells;
        cell_snapshots[cell].vms.push(VmSnapshot {
            vm: FleetVmId(i as u32 + 1),
            name: format!("fvm{}", i + 1),
            pollution_rate,
            punishments,
            instructions: 1_000 + i as u64,
            llc_misses: (pollution_rate * 10.0) as u64,
            ipc: 1.0,
            working_set_bytes: 64 * 1024,
        });
    }
    ClusterSnapshot {
        epoch: 0,
        cells: cell_snapshots,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plans are deterministic and valid for any snapshot shape: every move
    /// references a resident VM at its true cell, no VM moves twice, no
    /// destination is pushed past its capacity, and the per-epoch move
    /// budget holds.
    #[test]
    fn plans_are_deterministic_valid_and_never_overcommit(
        cells in 1usize..6,
        cores in 1usize..5,
        max_moves in 1usize..8,
        threshold in 0.0f64..1500.0,
        policy in arb_policy(),
        vms in prop::collection::vec((0usize..6, 0.0f64..2000.0, 0u64..4), 0..16),
    ) {
        let snapshot = snapshot_from(cells, cores, &vms);
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(max_moves)
                .with_polluter_threshold(threshold),
        );
        let plan = planner.plan(&snapshot, policy);
        let again = planner.plan(&snapshot, policy);
        prop_assert_eq!(&plan, &again, "planner must be pure");
        prop_assert!(plan.len() <= max_moves, "move budget exceeded");
        if let Err(violation) = plan.validate(&snapshot) {
            prop_assert!(false, "invalid plan under {:?}: {}", policy, violation);
        }
    }

    /// Load balancing never increases the occupancy spread, whatever the
    /// starting placement.
    #[test]
    fn load_balance_narrows_the_occupancy_spread(
        cells in 2usize..5,
        vms in prop::collection::vec((0usize..5, 0.0f64..100.0, 0u64..1), 1..12),
    ) {
        let snapshot = snapshot_from(cells, 4, &vms);
        let planner = MigrationPlanner::new(PlannerConfig::default().with_max_moves(8));
        let plan = planner.plan(&snapshot, ConsolidationPolicy::LoadBalance);
        let mut occupancy: Vec<i64> =
            snapshot.cells.iter().map(|c| c.occupancy() as i64).collect();
        let spread_before =
            occupancy.iter().max().unwrap() - occupancy.iter().min().unwrap();
        for mv in &plan.moves {
            occupancy[mv.from.0] -= 1;
            occupancy[mv.to.0] += 1;
        }
        let spread_after =
            occupancy.iter().max().unwrap() - occupancy.iter().min().unwrap();
        prop_assert!(
            spread_after <= spread_before.max(1),
            "spread grew: {} -> {} ({:?})",
            spread_before,
            spread_after,
            plan
        );
    }
}

proptest! {
    // End-to-end cluster runs are costly; a handful of cases over the full
    // policy x cell-count grid is plenty because any divergence is
    // deterministic, not probabilistic.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serial and cell-parallel epochs produce bit-identical fleet reports
    /// and epoch histories across policies, cell counts and seedings.
    #[test]
    fn serial_and_parallel_cluster_epochs_are_bit_identical(
        cells in 2usize..5,
        vm_count in 2usize..9,
        policy in arb_policy(),
        seed in 0u64..1_000,
    ) {
        let apps = [
            SpecApp::Gcc,
            SpecApp::Lbm,
            SpecApp::Omnetpp,
            SpecApp::Mcf,
            SpecApp::Soplex,
            SpecApp::Milc,
        ];
        let run = |parallel: bool| {
            let config = ClusterConfig::new(cells, 256)
                .with_epoch_ticks(3)
                .with_policy(policy)
                .with_planner(
                    PlannerConfig::default()
                        .with_max_moves(3)
                        .with_polluter_threshold(200.0),
                )
                .with_parallel_cells(parallel);
            let mut cluster = Cluster::new(config);
            for i in 0..vm_count {
                let app = apps[i % apps.len()];
                cluster.add_vm(
                    CellId(i % cells),
                    VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(50.0),
                    Box::new(SpecWorkload::new(app, 256, seed.wrapping_add(i as u64))),
                );
            }
            cluster.run_epochs(3);
            (
                cluster.reports(),
                cluster.history().to_vec(),
                cluster.occupancies(),
                cluster.total_migrations(),
            )
        };
        prop_assert_eq!(run(false), run(true));
    }
}
