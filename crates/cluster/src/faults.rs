//! Fault injection: deterministic cell failures, slowdowns and migration
//! aborts.
//!
//! Real fleets lose machines. This module models that with a [`FaultPlan`]
//! mirroring the [`EventSchedule`](crate::events::EventSchedule) design: the
//! faults of epoch `e` are a **pure function of `(seed, e)`** — each epoch
//! derives its own RNG via SplitMix64 mixing, so no draw depends on how many
//! draws earlier epochs made, and serial vs cell-parallel runs inject
//! byte-identical fault streams.
//!
//! Three fault classes, in increasing subtlety:
//!
//! * [`FaultEvent::CellCrash`] — a cell dies at an epoch boundary. Its
//!   resident and in-flight VMs become *orphans* that re-enter admission
//!   through a bounded exponential-backoff retry queue; the machine reboots
//!   empty after a configured number of down epochs.
//! * [`FaultEvent::CellSlowdown`] — a cell keeps running but with its
//!   per-tick cycle budget divided (thermal throttling, a noisy co-tenant,
//!   a failing DIMM). It recovers on its own after a configured duration.
//! * [`FaultEvent::MigrationAbort`] — a planned live migration fails at one
//!   of three [`AbortPoint`]s. The VM rolls back atomically to its source
//!   cell: no VM is ever lost or duplicated, though downtime already paid is
//!   not refunded.
//!
//! Crash and slowdown events carry a raw `pick` (not a cell id): the plan
//! cannot know which cells are currently up, so the cluster folds the pick
//! onto the live population at apply time (`pick % up_cells`, cell-id
//! order) — the same trick [`FleetEvent::VmDeparture`](crate::events::FleetEvent)
//! uses for victims.

use crate::events::draw_count;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Where in the migration protocol an aborted move fails. Later points are
/// strictly more expensive for the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AbortPoint {
    /// Pre-copy fails before the VM is ever suspended: the move is simply
    /// cancelled. The VM keeps running at the source; nothing is charged.
    Source,
    /// The transfer fails mid-flight, after the VM was suspended and
    /// extracted. It rolls back to its source cell and re-admits there,
    /// paying the downtime blackout and arriving with a cold cache — all
    /// cost, no migration.
    InFlight,
    /// The handshake fails at the destination, after the dest cell already
    /// committed its blackout window. The VM rolls back exactly as in
    /// [`AbortPoint::InFlight`], *and* the destination stalls for a blackout
    /// it gets nothing for (a phantom blackout).
    Dest,
}

/// One injected fault, applied at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A cell crashes: residents are orphaned into the retry queue, the
    /// machine reboots empty after the configured down time. `pick` selects
    /// the victim among currently-up cells at apply time; a no-op when every
    /// cell is already down.
    CellCrash {
        /// Raw selector folded onto the up cells at apply time.
        pick: u64,
    },
    /// A cell's cycle budget is divided by the configured factor for the
    /// configured duration. `pick` selects among currently-up cells.
    CellSlowdown {
        /// Raw selector folded onto the up cells at apply time.
        pick: u64,
    },
    /// One of this epoch's planned migrations aborts at `at`. `pick`
    /// selects among the epoch's planned moves at apply time; a no-op when
    /// the planner moved nothing this epoch.
    MigrationAbort {
        /// Raw selector folded onto the plan's move list at apply time.
        pick: u64,
        /// Where in the protocol the move fails.
        at: AbortPoint,
    },
}

/// Configuration of a [`FaultPlan`]: seeded fault rates, recovery
/// parameters, and scripted faults for tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Seed of the fault streams (independent of the churn seed).
    pub seed: u64,
    /// Expected cell crashes per epoch (fractional rates are realised
    /// probabilistically but deterministically per epoch).
    pub crash_rate: f64,
    /// Expected cell slowdowns per epoch.
    pub slowdown_rate: f64,
    /// Expected migration aborts per epoch (only bites in epochs where the
    /// planner actually moves something).
    pub abort_rate: f64,
    /// How many epochs a crashed cell stays down before rebooting empty.
    pub down_epochs: u64,
    /// The cycle-budget divisor a slowed-down cell runs with.
    pub slowdown_factor: u64,
    /// How many epochs a slowdown lasts.
    pub slowdown_epochs: u64,
    /// How many failed re-admission attempts an orphan gets before it is
    /// permanently rejected (archived with its report — never silently
    /// dropped).
    pub max_retries: u32,
    /// Scripted `(epoch, fault)` entries, applied in list order at their
    /// epoch's boundary before any seeded fault of that epoch.
    pub scripted: Vec<(u64, FaultEvent)>,
}

impl FaultPlanConfig {
    /// A plan with the given seed, zero fault rates, and default recovery
    /// parameters (2 down epochs, 4x slowdown for 2 epochs, 4 retries).
    pub fn new(seed: u64) -> Self {
        FaultPlanConfig {
            seed,
            crash_rate: 0.0,
            slowdown_rate: 0.0,
            abort_rate: 0.0,
            down_epochs: 2,
            slowdown_factor: 4,
            slowdown_epochs: 2,
            max_retries: 4,
            scripted: Vec::new(),
        }
    }

    /// Sets the expected crashes per epoch.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate.max(0.0);
        self
    }

    /// Sets the expected slowdowns per epoch.
    pub fn with_slowdown_rate(mut self, rate: f64) -> Self {
        self.slowdown_rate = rate.max(0.0);
        self
    }

    /// Sets the expected migration aborts per epoch.
    pub fn with_abort_rate(mut self, rate: f64) -> Self {
        self.abort_rate = rate.max(0.0);
        self
    }

    /// Sets how long a crashed cell stays down (min 1 epoch).
    pub fn with_down_epochs(mut self, epochs: u64) -> Self {
        self.down_epochs = epochs.max(1);
        self
    }

    /// Sets the slowdown divisor (min 1, i.e. no slowdown).
    pub fn with_slowdown_factor(mut self, factor: u64) -> Self {
        self.slowdown_factor = factor.max(1);
        self
    }

    /// Sets how long a slowdown lasts (min 1 epoch).
    pub fn with_slowdown_epochs(mut self, epochs: u64) -> Self {
        self.slowdown_epochs = epochs.max(1);
        self
    }

    /// Sets the orphan retry budget (min 1 attempt).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries.max(1);
        self
    }

    /// Scripts a fault at the given epoch boundary.
    pub fn with_scripted(mut self, epoch: u64, fault: FaultEvent) -> Self {
        self.scripted.push((epoch, fault));
        self
    }
}

/// Recovery parameters the epoch loop needs at fault-application time,
/// extracted so the loop does not have to borrow the whole plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RecoveryParams {
    pub(crate) down_epochs: u64,
    pub(crate) slowdown_factor: u64,
    pub(crate) slowdown_epochs: u64,
    pub(crate) max_retries: u32,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        let defaults = FaultPlanConfig::new(0);
        RecoveryParams {
            down_epochs: defaults.down_epochs,
            slowdown_factor: defaults.slowdown_factor,
            slowdown_epochs: defaults.slowdown_epochs,
            max_retries: defaults.max_retries,
        }
    }
}

/// A deterministic stream of fault events, indexed by epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultPlanConfig,
}

/// Domain-separation constant: keeps a fault plan's draws independent of an
/// [`EventSchedule`](crate::events::EventSchedule) built from the same seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED;

impl FaultPlan {
    /// Creates a plan.
    pub fn new(config: FaultPlanConfig) -> Self {
        FaultPlan { config }
    }

    /// The plan configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    pub(crate) fn recovery(&self) -> RecoveryParams {
        RecoveryParams {
            down_epochs: self.config.down_epochs,
            slowdown_factor: self.config.slowdown_factor,
            slowdown_epochs: self.config.slowdown_epochs,
            max_retries: self.config.max_retries,
        }
    }

    /// The faults of epoch `epoch`, in application order: scripted faults
    /// first, then seeded crashes, slowdowns, and aborts. Pure: two calls
    /// with the same epoch return the same list.
    pub fn faults_for_epoch(&self, epoch: u64) -> Vec<FaultEvent> {
        let mut faults: Vec<FaultEvent> = self
            .config
            .scripted
            .iter()
            .filter(|(e, _)| *e == epoch)
            .map(|(_, fault)| *fault)
            .collect();
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed ^ FAULT_STREAM_SALT ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        for _ in 0..draw_count(&mut rng, self.config.crash_rate) {
            let pick = rng.next_u64();
            faults.push(FaultEvent::CellCrash { pick });
        }
        for _ in 0..draw_count(&mut rng, self.config.slowdown_rate) {
            let pick = rng.next_u64();
            faults.push(FaultEvent::CellSlowdown { pick });
        }
        for _ in 0..draw_count(&mut rng, self.config.abort_rate) {
            let at = match rng.next_u64() % 3 {
                0 => AbortPoint::Source,
                1 => AbortPoint::InFlight,
                _ => AbortPoint::Dest,
            };
            let pick = rng.next_u64();
            faults.push(FaultEvent::MigrationAbort { pick, at });
        }
        faults
    }
}

/// Per-epoch fault and recovery accounting, carried on every
/// [`EpochReport`](crate::cluster::EpochReport). Nothing is silently
/// dropped: every orphan eventually shows up as `readmitted` or
/// `rejected_orphans`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Cells crashed this epoch.
    pub crashes: u64,
    /// Cells that finished their down time and rebooted this epoch.
    pub recoveries: u64,
    /// Cells slowed down this epoch.
    pub slowdowns: u64,
    /// Planned migrations cancelled before suspension ([`AbortPoint::Source`]).
    pub aborted_source: u64,
    /// Planned migrations rolled back mid-flight ([`AbortPoint::InFlight`]).
    pub aborted_in_flight: u64,
    /// Planned migrations rolled back at the destination ([`AbortPoint::Dest`]).
    pub aborted_dest: u64,
    /// VMs orphaned by crashes this epoch.
    pub orphaned: u64,
    /// Orphans re-admitted from the retry queue this epoch.
    pub readmitted: u64,
    /// Due retry attempts that failed and backed off this epoch.
    pub retry_backoffs: u64,
    /// Orphans permanently rejected (retry budget exhausted) this epoch.
    pub rejected_orphans: u64,
}

impl FaultCounts {
    /// Total aborted migrations, at any point.
    pub fn aborted_migrations(&self) -> u64 {
        self.aborted_source + self.aborted_in_flight + self.aborted_dest
    }

    /// True when nothing fault-related happened this epoch.
    pub fn is_quiet(&self) -> bool {
        *self == FaultCounts::default()
    }

    pub(crate) fn accumulate(&mut self, other: &FaultCounts) {
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.slowdowns += other.slowdowns;
        self.aborted_source += other.aborted_source;
        self.aborted_in_flight += other.aborted_in_flight;
        self.aborted_dest += other.aborted_dest;
        self.orphaned += other.orphaned;
        self.readmitted += other.readmitted;
        self.retry_backoffs += other.retry_backoffs;
        self.rejected_orphans += other.rejected_orphans;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_streams_are_pure_per_epoch() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(7)
                .with_crash_rate(0.5)
                .with_slowdown_rate(0.25)
                .with_abort_rate(1.5),
        );
        for epoch in 0..16 {
            assert_eq!(
                plan.faults_for_epoch(epoch),
                plan.faults_for_epoch(epoch),
                "epoch {epoch} stream must be pure"
            );
        }
    }

    #[test]
    fn epochs_are_independent_of_query_order() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(99)
                .with_crash_rate(0.75)
                .with_abort_rate(1.25),
        );
        let forward: Vec<_> = (0..8).map(|e| plan.faults_for_epoch(e)).collect();
        let backward: Vec<_> = (0..8).rev().map(|e| plan.faults_for_epoch(e)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn fault_stream_differs_from_event_stream_on_the_same_seed() {
        // Same seed, same rate shape: the domain-separation salt must keep
        // the two streams decorrelated (a crash epoch should not force a
        // departure epoch).
        let faults = FaultPlan::new(FaultPlanConfig::new(42).with_crash_rate(0.5));
        let events = crate::events::EventSchedule::new(
            crate::events::EventScheduleConfig::new(42).with_departure_rate(0.5),
        );
        let crash_epochs: Vec<bool> = (0..64)
            .map(|e| !faults.faults_for_epoch(e).is_empty())
            .collect();
        let departure_epochs: Vec<bool> = (0..64)
            .map(|e| !events.events_for_epoch(e).is_empty())
            .collect();
        assert_ne!(crash_epochs, departure_epochs);
    }

    #[test]
    fn scripted_faults_lead_their_epoch() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(3)
                .with_abort_rate(2.0)
                .with_scripted(1, FaultEvent::CellCrash { pick: 0 }),
        );
        assert!(!plan
            .faults_for_epoch(0)
            .contains(&FaultEvent::CellCrash { pick: 0 }));
        assert_eq!(
            plan.faults_for_epoch(1)[0],
            FaultEvent::CellCrash { pick: 0 }
        );
    }

    #[test]
    fn fractional_rates_average_out() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(5)
                .with_crash_rate(0.25)
                .with_abort_rate(0.5),
        );
        let mut crashes = 0usize;
        let mut aborts = 0usize;
        for epoch in 0..400 {
            for fault in plan.faults_for_epoch(epoch) {
                match fault {
                    FaultEvent::CellCrash { .. } => crashes += 1,
                    FaultEvent::MigrationAbort { .. } => aborts += 1,
                    _ => {}
                }
            }
        }
        assert!((40..=160).contains(&crashes), "{crashes} crashes");
        assert!((120..=280).contains(&aborts), "{aborts} aborts");
    }

    #[test]
    fn abort_points_cover_all_three_stages() {
        let plan = FaultPlan::new(FaultPlanConfig::new(11).with_abort_rate(1.0));
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..64 {
            for fault in plan.faults_for_epoch(epoch) {
                if let FaultEvent::MigrationAbort { at, .. } = fault {
                    seen.insert(at);
                }
            }
        }
        assert_eq!(seen.len(), 3, "all abort points should occur: {seen:?}");
    }

    #[test]
    fn builders_clamp_their_arguments() {
        let config = FaultPlanConfig::new(1)
            .with_crash_rate(-1.0)
            .with_slowdown_factor(0)
            .with_down_epochs(0)
            .with_max_retries(0);
        assert_eq!(config.crash_rate, 0.0);
        assert_eq!(config.slowdown_factor, 1);
        assert_eq!(config.down_epochs, 1);
        assert_eq!(config.max_retries, 1);
    }

    #[test]
    fn counts_roll_up() {
        let mut total = FaultCounts::default();
        assert!(total.is_quiet());
        let epoch = FaultCounts {
            aborted_source: 1,
            aborted_dest: 2,
            ..FaultCounts::default()
        };
        total.accumulate(&epoch);
        total.accumulate(&epoch);
        assert_eq!(total.aborted_migrations(), 6);
        assert!(!total.is_quiet());
    }
}
