//! Typed errors for the fleet control loop.
//!
//! The cluster used to `panic!`/`expect` its way through fallible paths
//! (admission, planning, event application). With fault injection in the
//! picture those paths are *expected* to go wrong — a crash can race an
//! admission decision, a plan can name a cell that just went down — so the
//! epoch loop now surfaces a [`ClusterError`] instead of aborting the
//! process.

use crate::snapshot::{CellId, FleetVmId};
use kyoto_hypervisor::hypervisor::HypervisorError;

/// Why an admission controller turned a placement request away.
///
/// Rejection is a *decision*, not a malfunction: the control-plane service
/// (`kyoto-service`) accounts every rejection in its telemetry ledger, and
/// only its synchronous request/reply front surfaces one as a
/// [`ClusterError::Rejected`]. The reasons are typed so callers (and the
/// ledger) can distinguish a full fleet from an over-budget one.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum AdmissionRejection {
    /// No open (non-draining, non-down) cell has a free core, and the
    /// admission queue cannot hold the request either.
    FleetSaturated,
    /// Free cores exist, but placing the VM anywhere would push every
    /// candidate cell's projected contention past the admission
    /// controller's limit, and the admission queue is full.
    ContentionOverBudget {
        /// The lowest projected per-cell pollution (misses per CPU-ms) any
        /// candidate cell would reach with the VM placed.
        projected: f64,
        /// The controller's per-cell contention limit.
        limit: f64,
    },
}

impl std::fmt::Display for AdmissionRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionRejection::FleetSaturated => {
                write!(f, "fleet saturated: no open cell has a free core")
            }
            AdmissionRejection::ContentionOverBudget { projected, limit } => write!(
                f,
                "projected contention {projected:.1} misses/ms exceeds the {limit:.1} limit on every candidate cell"
            ),
        }
    }
}

/// Anything that can go wrong while driving the fleet.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// An API call named a cell id outside the fleet.
    UnknownCell {
        /// The offending cell id.
        cell: CellId,
    },
    /// An API call named a fleet VM id that does not exist (or no longer
    /// exists).
    UnknownVm {
        /// The offending fleet VM id.
        vm: FleetVmId,
    },
    /// Admitting a VM onto a cell's hypervisor failed.
    Admission {
        /// The cell that refused the placement.
        cell: CellId,
        /// The fleet VM being placed.
        vm: FleetVmId,
        /// The underlying hypervisor error.
        source: HypervisorError,
    },
    /// A per-cell hypervisor operation (extraction, lookup) failed.
    Hypervisor {
        /// The cell whose hypervisor errored.
        cell: CellId,
        /// The underlying hypervisor error.
        source: HypervisorError,
    },
    /// The planner produced a plan that fails validation against the
    /// snapshot it was derived from.
    InvalidPlan {
        /// The validator's explanation.
        reason: String,
    },
    /// Fleet state cannot be checkpointed because a cell's machine state
    /// does not support deep cloning (e.g. an uncloneable workload).
    Checkpoint {
        /// The cell that refused to clone.
        cell: CellId,
        /// The underlying hypervisor error.
        source: HypervisorError,
    },
    /// Fleet state cannot be checkpointed because a VM travelling outside
    /// any hypervisor (in-flight or orphaned) carries a workload that does
    /// not support cloning.
    UncloneableVm {
        /// The fleet VM whose workload refused to clone.
        vm: FleetVmId,
    },
    /// An admission controller rejected a placement request outright —
    /// surfaced by synchronous request/reply fronts (the `kyoto-service`
    /// control plane) where "no" is an answer, not an accident.
    Rejected {
        /// The typed rejection reason.
        reason: AdmissionRejection,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownCell { cell } => write!(f, "unknown cell {cell:?}"),
            ClusterError::UnknownVm { vm } => write!(f, "unknown fleet VM {vm:?}"),
            ClusterError::Admission { cell, vm, source } => {
                write!(f, "admission of {vm:?} onto {cell:?} failed: {source}")
            }
            ClusterError::Hypervisor { cell, source } => {
                write!(f, "hypervisor operation on {cell:?} failed: {source}")
            }
            ClusterError::InvalidPlan { reason } => {
                write!(f, "migration plan failed validation: {reason}")
            }
            ClusterError::Checkpoint { cell, source } => {
                write!(f, "cannot checkpoint {cell:?}: {source}")
            }
            ClusterError::UncloneableVm { vm } => {
                write!(
                    f,
                    "cannot checkpoint {vm:?}: its workload does not support cloning"
                )
            }
            ClusterError::Rejected { reason } => {
                write!(f, "placement rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Admission { source, .. }
            | ClusterError::Hypervisor { source, .. }
            | ClusterError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let err = ClusterError::UnknownCell { cell: CellId(7) };
        assert!(err.to_string().contains("CellId(7)"));
        let err = ClusterError::InvalidPlan {
            reason: "move 0: dest cell is down".to_string(),
        };
        assert!(err.to_string().contains("dest cell is down"));
    }

    #[test]
    fn rejection_reasons_explain_themselves() {
        let err = ClusterError::Rejected {
            reason: AdmissionRejection::FleetSaturated,
        };
        assert!(err.to_string().contains("fleet saturated"));
        let err = ClusterError::Rejected {
            reason: AdmissionRejection::ContentionOverBudget {
                projected: 12.5,
                limit: 8.0,
            },
        };
        let text = err.to_string();
        assert!(text.contains("12.5"), "{text}");
        assert!(text.contains("8.0"), "{text}");
    }

    #[test]
    fn hypervisor_errors_are_chained_as_sources() {
        use std::error::Error;
        let err = ClusterError::Hypervisor {
            cell: CellId(1),
            source: HypervisorError::UnknownVm {
                vm: kyoto_hypervisor::vm::VmId(3),
            },
        };
        assert!(err.source().is_some());
        let err = ClusterError::UnknownVm { vm: FleetVmId(2) };
        assert!(err.source().is_none());
    }
}
