//! Typed errors for the fleet control loop.
//!
//! The cluster used to `panic!`/`expect` its way through fallible paths
//! (admission, planning, event application). With fault injection in the
//! picture those paths are *expected* to go wrong — a crash can race an
//! admission decision, a plan can name a cell that just went down — so the
//! epoch loop now surfaces a [`ClusterError`] instead of aborting the
//! process.

use crate::snapshot::{CellId, FleetVmId};
use kyoto_hypervisor::hypervisor::HypervisorError;

/// Anything that can go wrong while driving the fleet.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// An API call named a cell id outside the fleet.
    UnknownCell {
        /// The offending cell id.
        cell: CellId,
    },
    /// An API call named a fleet VM id that does not exist (or no longer
    /// exists).
    UnknownVm {
        /// The offending fleet VM id.
        vm: FleetVmId,
    },
    /// Admitting a VM onto a cell's hypervisor failed.
    Admission {
        /// The cell that refused the placement.
        cell: CellId,
        /// The fleet VM being placed.
        vm: FleetVmId,
        /// The underlying hypervisor error.
        source: HypervisorError,
    },
    /// A per-cell hypervisor operation (extraction, lookup) failed.
    Hypervisor {
        /// The cell whose hypervisor errored.
        cell: CellId,
        /// The underlying hypervisor error.
        source: HypervisorError,
    },
    /// The planner produced a plan that fails validation against the
    /// snapshot it was derived from.
    InvalidPlan {
        /// The validator's explanation.
        reason: String,
    },
    /// Fleet state cannot be checkpointed because a cell's machine state
    /// does not support deep cloning (e.g. an uncloneable workload).
    Checkpoint {
        /// The cell that refused to clone.
        cell: CellId,
        /// The underlying hypervisor error.
        source: HypervisorError,
    },
    /// Fleet state cannot be checkpointed because a VM travelling outside
    /// any hypervisor (in-flight or orphaned) carries a workload that does
    /// not support cloning.
    UncloneableVm {
        /// The fleet VM whose workload refused to clone.
        vm: FleetVmId,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownCell { cell } => write!(f, "unknown cell {cell:?}"),
            ClusterError::UnknownVm { vm } => write!(f, "unknown fleet VM {vm:?}"),
            ClusterError::Admission { cell, vm, source } => {
                write!(f, "admission of {vm:?} onto {cell:?} failed: {source}")
            }
            ClusterError::Hypervisor { cell, source } => {
                write!(f, "hypervisor operation on {cell:?} failed: {source}")
            }
            ClusterError::InvalidPlan { reason } => {
                write!(f, "migration plan failed validation: {reason}")
            }
            ClusterError::Checkpoint { cell, source } => {
                write!(f, "cannot checkpoint {cell:?}: {source}")
            }
            ClusterError::UncloneableVm { vm } => {
                write!(
                    f,
                    "cannot checkpoint {vm:?}: its workload does not support cloning"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Admission { source, .. }
            | ClusterError::Hypervisor { source, .. }
            | ClusterError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let err = ClusterError::UnknownCell { cell: CellId(7) };
        assert!(err.to_string().contains("CellId(7)"));
        let err = ClusterError::InvalidPlan {
            reason: "move 0: dest cell is down".to_string(),
        };
        assert!(err.to_string().contains("dest cell is down"));
    }

    #[test]
    fn hypervisor_errors_are_chained_as_sources() {
        use std::error::Error;
        let err = ClusterError::Hypervisor {
            cell: CellId(1),
            source: HypervisorError::UnknownVm {
                vm: kyoto_hypervisor::vm::VmId(3),
            },
        };
        assert!(err.source().is_some());
        let err = ClusterError::UnknownVm { vm: FleetVmId(2) };
        assert!(err.source().is_none());
    }
}
