//! # kyoto-cluster — fleet-scale simulation for the Kyoto reproduction
//!
//! The paper enforces the polluter-pays principle on a single host; this
//! crate models the level above, where the principle actually earns its
//! keep: a **fleet** of machines whose VMs are placed — and re-placed — as
//! load and cache pollution shift.
//!
//! * [`cluster`] — the [`cluster::Cluster`]: N independent
//!   machine+hypervisor [`cluster::Cell`]s advanced by a deterministic,
//!   epoch-driven control loop (serially or one-cell-per-scoped-thread,
//!   bit-identically);
//! * [`planner`] — the pure [`planner::MigrationPlanner`] with its
//!   load-balancing, bin-packing, pollution-aware and density-capped
//!   consolidation policies, the live-migration cost model (downtime
//!   blackout + cold-cache arrival) and the cost-aware move gate;
//! * [`events`] — deterministic fleet dynamics: seeded VM
//!   arrival/departure streams and scripted cell drain/join maintenance
//!   events, driven through the epoch control loop;
//! * [`faults`] — deterministic fault injection: cell crashes (orphaned
//!   VMs re-enter admission through a bounded-backoff retry queue), cell
//!   slowdowns (divided cycle budgets) and mid-migration aborts that roll
//!   back atomically;
//! * [`checkpoint`] — deep fleet checkpoints that
//!   [`cluster::Cluster::restore`] resumes bit-identically;
//! * [`error`] — the typed [`error::ClusterError`] the control loop
//!   surfaces instead of panicking;
//! * [`snapshot`] — the per-epoch observations the planner consumes.
//!
//! # Example: four VMs rebalanced across two machines
//!
//! ```
//! use kyoto_cluster::cluster::{Cluster, ClusterConfig};
//! use kyoto_cluster::planner::ConsolidationPolicy;
//! use kyoto_cluster::snapshot::CellId;
//! use kyoto_hypervisor::vm::VmConfig;
//! use kyoto_workloads::spec::{SpecApp, SpecWorkload};
//!
//! let config = ClusterConfig::new(2, 256)
//!     .with_epoch_ticks(4)
//!     .with_policy(ConsolidationPolicy::LoadBalance);
//! let mut cluster = Cluster::new(config);
//! for i in 0..4 {
//!     cluster
//!         .add_vm(
//!             CellId(0),
//!             VmConfig::new(format!("vm{i}")),
//!             Box::new(SpecWorkload::new(SpecApp::Gcc, 256, i)),
//!         )
//!         .unwrap();
//! }
//! cluster.run_epochs(3).unwrap();
//! assert_eq!(cluster.occupancies(), vec![2, 2]);
//! assert!(cluster.total_migrations() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cluster;
pub mod error;
pub mod events;
pub mod faults;
pub mod planner;
pub mod snapshot;

pub use checkpoint::FleetCheckpoint;
pub use cluster::{
    Cell, CellEpochStats, Cluster, ClusterConfig, EpochReport, EventCounts, FleetVmReport,
};
pub use error::{AdmissionRejection, ClusterError};
pub use events::{EventSchedule, EventScheduleConfig, FleetEvent};
pub use faults::{AbortPoint, FaultCounts, FaultEvent, FaultPlan, FaultPlanConfig};
pub use planner::{
    ConsolidationPolicy, MigrationCostModel, MigrationMove, MigrationPlan, MigrationPlanner,
    PlannerConfig,
};
pub use snapshot::{CellId, CellSnapshot, ClusterSnapshot, FleetVmId, VmSnapshot};

// Re-exported so fleet consumers can configure tracing without a direct
// `kyoto-trace` dependency: `ClusterConfig::with_trace(TraceConfig::On)`.
pub use kyoto_trace::{TraceConfig, TraceSink};
