//! Fleet dynamics: deterministic churn and maintenance event streams.
//!
//! A static fleet is a laboratory convenience; the operational reality the
//! paper's cloud setting implies is *churn* — VMs arrive and depart
//! continuously, machines drain for maintenance and rejoin later. This
//! module models that as an [`EventSchedule`]: a seeded arrival/departure
//! stream plus scripted [`FleetEvent::CellDrain`]/[`FleetEvent::CellJoin`]
//! maintenance events, all applied at epoch boundaries by
//! [`Cluster::run_epoch_with_events`](crate::cluster::Cluster::run_epoch_with_events).
//!
//! # Determinism
//!
//! The schedule is **stateless**: the events of epoch `e` are a pure
//! function of `(seed, e)` — each epoch derives its own RNG via SplitMix64
//! mixing, so no draw depends on how many draws earlier epochs made. A
//! departure event does not name a VM (the schedule cannot know the
//! population); it carries a raw `pick` that the cluster folds onto the
//! live population (`pick % population`, fleet-id order). Event application
//! is therefore a pure function of (cluster state, event list), which is
//! what lets the churn property tests demand bit-identical serial and
//! cell-parallel runs.

use crate::snapshot::CellId;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fleet-dynamics event, applied at an epoch boundary before the epoch
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A new VM arrives. The cluster admits it onto the open (non-draining)
    /// cell with the most free cores; when every cell is draining or full,
    /// the arrival is rejected and counted.
    VmArrival,
    /// A VM departs. `pick` selects the victim among the currently resident
    /// VMs (`pick % population`, fleet-id order); the event is a no-op on an
    /// empty fleet.
    VmDeparture {
        /// Raw selector folded onto the live population at apply time.
        pick: u64,
    },
    /// The cell stops accepting placements and is evacuated by the planner
    /// (maintenance begins).
    CellDrain(CellId),
    /// The cell becomes a placement target again (maintenance over).
    CellJoin(CellId),
}

/// Configuration of an [`EventSchedule`]: seeded churn rates plus scripted
/// maintenance events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventScheduleConfig {
    /// Seed of the arrival/departure streams.
    pub seed: u64,
    /// Expected VM arrivals per epoch (fractional rates are realised
    /// probabilistically but deterministically per epoch).
    pub arrival_rate: f64,
    /// Expected VM departures per epoch.
    pub departure_rate: f64,
    /// Scripted `(epoch, event)` maintenance entries, applied in list order
    /// at their epoch's boundary (before any churn event of that epoch).
    pub maintenance: Vec<(u64, FleetEvent)>,
}

impl EventScheduleConfig {
    /// A schedule with the given seed and no churn or maintenance.
    pub fn new(seed: u64) -> Self {
        EventScheduleConfig {
            seed,
            arrival_rate: 0.0,
            departure_rate: 0.0,
            maintenance: Vec::new(),
        }
    }

    /// Sets the expected arrivals per epoch.
    pub fn with_arrival_rate(mut self, rate: f64) -> Self {
        self.arrival_rate = rate.max(0.0);
        self
    }

    /// Sets the expected departures per epoch.
    pub fn with_departure_rate(mut self, rate: f64) -> Self {
        self.departure_rate = rate.max(0.0);
        self
    }

    /// Scripts a cell drain at the given epoch boundary.
    pub fn with_drain(mut self, epoch: u64, cell: CellId) -> Self {
        self.maintenance.push((epoch, FleetEvent::CellDrain(cell)));
        self
    }

    /// Scripts a cell rejoin at the given epoch boundary.
    pub fn with_join(mut self, epoch: u64, cell: CellId) -> Self {
        self.maintenance.push((epoch, FleetEvent::CellJoin(cell)));
        self
    }
}

/// A deterministic stream of fleet events, indexed by epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSchedule {
    config: EventScheduleConfig,
}

impl EventSchedule {
    /// Creates a schedule.
    pub fn new(config: EventScheduleConfig) -> Self {
        EventSchedule { config }
    }

    /// The schedule configuration.
    pub fn config(&self) -> &EventScheduleConfig {
        &self.config
    }

    /// The events of epoch `epoch`, in application order: scripted
    /// maintenance first, then departures, then arrivals (so an arrival in
    /// the same epoch as a drain is never admitted onto the draining cell).
    /// Pure: two calls with the same epoch return the same list.
    pub fn events_for_epoch(&self, epoch: u64) -> Vec<FleetEvent> {
        let mut events: Vec<FleetEvent> = self
            .config
            .maintenance
            .iter()
            .filter(|(e, _)| *e == epoch)
            .map(|(_, event)| *event)
            .collect();
        // Per-epoch RNG: golden-ratio mixing keeps the stream of epoch `e`
        // independent of how many draws other epochs made.
        let mut rng =
            SmallRng::seed_from_u64(self.config.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let departures = draw_count(&mut rng, self.config.departure_rate);
        for _ in 0..departures {
            let pick = rng.next_u64();
            events.push(FleetEvent::VmDeparture { pick });
        }
        let arrivals = draw_count(&mut rng, self.config.arrival_rate);
        for _ in 0..arrivals {
            events.push(FleetEvent::VmArrival);
        }
        events
    }
}

/// Realises a fractional per-epoch rate as an integer count: the integer
/// part always happens, the fractional part happens with its probability.
/// Shared with the fault schedule in [`crate::faults`] and the
/// `kyoto-service` request-trace generators.
pub fn draw_count(rng: &mut SmallRng, rate: f64) -> u64 {
    let base = rate.floor();
    let frac = rate - base;
    let extra = frac > 0.0 && rng.gen_bool(frac);
    base as u64 + u64::from(extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_per_epoch() {
        let schedule = EventSchedule::new(
            EventScheduleConfig::new(7)
                .with_arrival_rate(1.5)
                .with_departure_rate(0.5)
                .with_drain(2, CellId(1))
                .with_join(4, CellId(1)),
        );
        for epoch in 0..8 {
            assert_eq!(
                schedule.events_for_epoch(epoch),
                schedule.events_for_epoch(epoch),
                "epoch {epoch} stream must be pure"
            );
        }
    }

    #[test]
    fn epochs_are_independent_of_query_order() {
        let schedule = EventSchedule::new(
            EventScheduleConfig::new(99)
                .with_arrival_rate(0.75)
                .with_departure_rate(1.25),
        );
        let forward: Vec<_> = (0..6).map(|e| schedule.events_for_epoch(e)).collect();
        let backward: Vec<_> = (0..6).rev().map(|e| schedule.events_for_epoch(e)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn maintenance_fires_at_its_epoch_and_leads_the_list() {
        let schedule = EventSchedule::new(
            EventScheduleConfig::new(3)
                .with_arrival_rate(2.0)
                .with_drain(1, CellId(0)),
        );
        assert!(!schedule
            .events_for_epoch(0)
            .contains(&FleetEvent::CellDrain(CellId(0))));
        let epoch1 = schedule.events_for_epoch(1);
        assert_eq!(epoch1[0], FleetEvent::CellDrain(CellId(0)));
    }

    #[test]
    fn integer_rates_are_exact() {
        let schedule = EventSchedule::new(EventScheduleConfig::new(11).with_arrival_rate(3.0));
        for epoch in 0..10 {
            let arrivals = schedule
                .events_for_epoch(epoch)
                .iter()
                .filter(|e| matches!(e, FleetEvent::VmArrival))
                .count();
            assert_eq!(arrivals, 3);
        }
    }

    #[test]
    fn fractional_rates_average_out() {
        let schedule = EventSchedule::new(
            EventScheduleConfig::new(5)
                .with_arrival_rate(0.5)
                .with_departure_rate(0.25),
        );
        let mut arrivals = 0usize;
        let mut departures = 0usize;
        for epoch in 0..400 {
            for event in schedule.events_for_epoch(epoch) {
                match event {
                    FleetEvent::VmArrival => arrivals += 1,
                    FleetEvent::VmDeparture { .. } => departures += 1,
                    _ => {}
                }
            }
        }
        assert!((120..=280).contains(&arrivals), "{arrivals} arrivals");
        assert!((40..=160).contains(&departures), "{departures} departures");
    }
}
