//! Fleet checkpointing: a deep copy of the whole cluster that
//! [`Cluster::restore`](crate::cluster::Cluster::restore) resumes
//! **bit-identically**.
//!
//! A checkpoint is a *value*, not a view: every cell's machine (caches,
//! PMCs), hypervisor (scheduler state, VM runtimes, workload progress),
//! every in-flight arrival, the crash-retry queue, the installed
//! [`FaultPlan`] and all control-plane counters
//! are cloned outright. Because the simulation is deterministic, resuming
//! from the copy replays exactly the epochs the original would have run —
//! `run(k) == restore(checkpoint(run(j))).run(k - j)` is property-tested
//! across every policy and planner mode.
//!
//! Cloning can fail: workloads are trait objects, and only those
//! implementing [`Workload::try_clone_box`](kyoto_sim::workload::Workload)
//! participate. [`Cluster::checkpoint`](crate::cluster::Cluster::checkpoint)
//! surfaces the offender instead of panicking.

use crate::cluster::{Cell, ClusterConfig, EpochReport, FleetVm, FleetVmReport, Orphan};
use crate::faults::{FaultCounts, FaultPlan};
use kyoto_trace::TraceSink;
use serde::{Deserialize, Serialize};

/// A deep copy of a [`Cluster`](crate::cluster::Cluster) at an epoch
/// boundary. Opaque by design — the only useful operation is
/// [`Cluster::restore`](crate::cluster::Cluster::restore) — but a few
/// read-only accessors support sanity checks without a restore.
#[derive(Serialize, Deserialize)]
pub struct FleetCheckpoint {
    pub(crate) config: ClusterConfig,
    pub(crate) cells: Vec<Cell>,
    pub(crate) vms: Vec<FleetVm>,
    pub(crate) departed: Vec<FleetVmReport>,
    pub(crate) retry: Vec<Orphan>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) next_fleet_id: u32,
    pub(crate) arrival_index: u64,
    pub(crate) epoch: u64,
    pub(crate) total_migrations: u64,
    pub(crate) total_arrivals: u64,
    pub(crate) total_departures: u64,
    pub(crate) rejected_arrivals: u64,
    pub(crate) total_faults: FaultCounts,
    pub(crate) readmission_latency_epochs: u64,
    pub(crate) history: Vec<EpochReport>,
    pub(crate) freq_khz: u64,
    pub(crate) trace: TraceSink,
    pub(crate) control_cursor: u64,
}

impl FleetCheckpoint {
    /// The epoch the checkpointed cluster had completed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of cells in the checkpointed fleet.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Live VMs captured (residents, in-flight arrivals and orphans alike).
    pub fn live_vms(&self) -> usize {
        self.vms.len()
    }

    /// Crash-orphaned VMs captured in the retry queue.
    pub fn queued_orphans(&self) -> usize {
        self.retry.len()
    }
}

impl std::fmt::Debug for FleetCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetCheckpoint")
            .field("epoch", &self.epoch)
            .field("cells", &self.cells.len())
            .field("vms", &self.vms.len())
            .field("orphans", &self.retry.len())
            .field("departed", &self.departed.len())
            .finish_non_exhaustive()
    }
}
