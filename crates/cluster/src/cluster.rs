//! The cluster: N independent machine+hypervisor cells under one
//! deterministic, epoch-driven control plane.
//!
//! # Ownership model
//!
//! Each [`Cell`] *owns* its simulated machine, engine and KS4Xen hypervisor
//! outright — cells share no state whatsoever. An epoch runs every cell for
//! [`ClusterConfig::epoch_ticks`] scheduler ticks; because the cells are
//! disjoint, the cluster can execute them serially or one-per-scoped-thread
//! ([`ClusterConfig::parallel_cells`]) with **bit-identical** results — the
//! same split-borrow argument that made socket-parallel engine execution
//! safe, applied one level up. The only cross-cell communication is the
//! control plane between epochs: snapshot → plan → apply, all single
//! threaded and pure.
//!
//! # Migration mechanics
//!
//! Applying a [`MigrationPlan`] extracts each VM from its source hypervisor
//! ([`Hypervisor::take_vm`]: workload state travels, cache lines are
//! flushed) and queues it as an arrival on the destination cell. At the
//! start of the next epoch the destination first runs
//! [`MigrationCostModel::downtime_ticks`](crate::planner::MigrationCostModel)
//! ticks *without* the arrival (the stop-and-copy blackout), then adds it —
//! pinned to a free core — for the rest of the epoch, where it re-fetches
//! its whole working set through a cold cache. Downtime is therefore charged
//! exactly once per move, and the cold-cache penalty emerges from the LLC
//! simulation instead of being a constant.
//!
//! # Faults and recovery
//!
//! With a [`FaultPlan`] installed ([`Cluster::install_faults`]) the epoch
//! boundary also applies deterministic faults (see [`crate::faults`]):
//! crashed cells orphan their VMs into a bounded exponential-backoff retry
//! queue (re-admission goes through the normal admission path and charges
//! the arrival blackout), slowed-down cells run with a divided cycle
//! budget, and planned migrations can abort at the source, in flight, or at
//! the destination — always rolling the VM back to its source cell so no VM
//! is ever lost or duplicated (the conservation property test pins this).
//! Without a plan installed the fault path is never entered.
//!
//! # Checkpoint / restore
//!
//! [`Cluster::checkpoint`] deep-clones the entire fleet — machine state,
//! hypervisors, in-flight arrivals, the retry queue, counters and history —
//! into a [`FleetCheckpoint`];
//! [`Cluster::restore`] rebuilds a cluster that resumes **bit-identically**
//! (property-tested across policies and planner modes).

use crate::checkpoint::FleetCheckpoint;
use crate::error::ClusterError;
use crate::events::{EventSchedule, FleetEvent};
use crate::faults::{AbortPoint, FaultCounts, FaultEvent, FaultPlan, RecoveryParams};
use crate::planner::{
    ConsolidationPolicy, MigrationMove, MigrationPlan, MigrationPlanner, PlannerConfig,
};
use crate::snapshot::{CellId, CellSnapshot, ClusterSnapshot, FleetVmId, VmSnapshot};
use kyoto_core::ks4::{ks4xen_hypervisor, Ks4Xen};
use kyoto_core::monitor::MonitoringStrategy;
use kyoto_hypervisor::hypervisor::{Hypervisor, HypervisorConfig, TakenVm};
use kyoto_hypervisor::lifecycle::VcpuState;
use kyoto_hypervisor::vm::{VcpuId, VmConfig, VmId, VmReport};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig, SocketId};
use kyoto_sim::workload::Workload;
use kyoto_trace::{TraceConfig, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Control-cursor positions reserved per epoch: at every epoch boundary the
/// cursor realigns to `(epoch + 1) * CONTROL_EPOCH_STRIDE`, so boundary
/// spans of different epochs land in disjoint, stably-spaced windows
/// regardless of how many control-plane events each epoch recorded.
const CONTROL_EPOCH_STRIDE: u64 = 1 << 20;

/// Static configuration of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of cells (machines).
    pub cells: usize,
    /// Sockets per cell machine (the paper's per-socket geometry replicated,
    /// as in `MachineConfig::cloud_machine`).
    pub sockets_per_cell: usize,
    /// Machine scale factor (caches, frequency and working sets divided by
    /// this factor), as everywhere else in the reproduction.
    pub scale: u64,
    /// Scheduler ticks per epoch (the control-loop period).
    pub epoch_ticks: u64,
    /// Run each cell's epoch on its own scoped thread. Results are
    /// bit-identical to the serial loop — cells share no state — so this is
    /// purely a wall-clock switch (property-tested).
    pub parallel_cells: bool,
    /// Consolidation policy driving the migration planner.
    pub policy: ConsolidationPolicy,
    /// Planner configuration (migration budget, polluter threshold, cost
    /// model).
    pub planner: PlannerConfig,
    /// Per-cell hypervisor timing.
    pub hypervisor: HypervisorConfig,
    /// Pollution-monitoring strategy of each cell's KS4Xen scheduler.
    pub strategy: MonitoringStrategy,
    /// Whether the cluster and every cell engine record cycle-domain
    /// traces (see `kyoto-trace`). Off by default; the disabled path is a
    /// single branch per record site, bench-gated by `trace_overhead`.
    pub trace: TraceConfig,
}

impl ClusterConfig {
    /// A cluster of `cells` single-socket cells at the given scale, with the
    /// default control loop (6-tick epochs, load-balancing, serial cells).
    pub fn new(cells: usize, scale: u64) -> Self {
        ClusterConfig {
            cells: cells.max(1),
            sockets_per_cell: 1,
            scale: scale.max(1),
            epoch_ticks: 6,
            parallel_cells: false,
            policy: ConsolidationPolicy::LoadBalance,
            planner: PlannerConfig::default(),
            hypervisor: HypervisorConfig::default(),
            strategy: MonitoringStrategy::DirectPmc,
            trace: TraceConfig::Off,
        }
    }

    /// Enables or disables cycle-domain tracing for the cluster and every
    /// cell engine. Tracing never changes simulation results — figures and
    /// telemetry are byte-identical with it on or off (property-tested).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the number of sockets per cell.
    pub fn with_sockets_per_cell(mut self, sockets: usize) -> Self {
        self.sockets_per_cell = sockets.max(1);
        self
    }

    /// Sets the epoch length in scheduler ticks.
    pub fn with_epoch_ticks(mut self, ticks: u64) -> Self {
        self.epoch_ticks = ticks.max(1);
        self
    }

    /// Enables or disables cell-parallel epoch execution.
    pub fn with_parallel_cells(mut self, parallel: bool) -> Self {
        self.parallel_cells = parallel;
        self
    }

    /// Sets the consolidation policy.
    pub fn with_policy(mut self, policy: ConsolidationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the planner configuration.
    pub fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Sets the per-cell hypervisor timing (and its engine-parallelism
    /// switch).
    pub fn with_hypervisor(mut self, hypervisor: HypervisorConfig) -> Self {
        self.hypervisor = hypervisor;
        self
    }

    /// Sets the pollution-monitoring strategy of every cell's KS4Xen
    /// scheduler. With [`MonitoringStrategy::SimulatorAttribution`] each
    /// cell's shadow LLC is enabled, so per-VM pollution estimates are
    /// *solo* miss rates — uninflated by co-runner evictions — which is what
    /// keeps pollution-aware classification stable.
    pub fn with_strategy(mut self, strategy: MonitoringStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The machine configuration of one cell.
    pub fn cell_machine_config(&self) -> MachineConfig {
        MachineConfig::scaled_cloud_machine(self.sockets_per_cell, self.scale)
    }
}

/// A VM arriving on a cell at the next epoch (the in-flight half of a live
/// migration): the pieces `take_vm` extracted at the source, re-placed by
/// the control plane.
pub(crate) struct Arrival {
    pub(crate) fleet: FleetVmId,
    pub(crate) taken: TakenVm,
}

impl Arrival {
    fn try_clone(&self) -> Option<Arrival> {
        Some(Arrival {
            fleet: self.fleet,
            taken: self.taken.try_clone()?,
        })
    }
}

/// One machine of the fleet: a simulated machine plus its own KS4Xen
/// hypervisor. Cells own all their state; the cluster never reaches into a
/// cell while another cell is running.
pub struct Cell {
    pub(crate) id: CellId,
    pub(crate) hv: Hypervisor<Ks4Xen>,
    pub(crate) arrivals: Vec<Arrival>,
    /// Draining for maintenance: the cell accepts no placements and the
    /// planner evacuates it at every epoch boundary until it rejoins.
    pub(crate) draining: bool,
    /// Crashed: the cell runs nothing and accepts nothing until the epoch
    /// this holds (exclusive), at which point it reboots empty.
    pub(crate) down_until: Option<u64>,
    /// Slowed down: the cycle-budget divisor resets to 1 at the epoch this
    /// holds (exclusive).
    pub(crate) slow_until: Option<u64>,
    /// Blackout windows owed to migrations that aborted at this cell after
    /// it committed its handshake ([`AbortPoint::Dest`]): the cell stalls
    /// for the downtime window without admitting anyone.
    pub(crate) phantom_blackouts: u64,
}

impl Cell {
    /// The cell's identifier.
    pub fn id(&self) -> CellId {
        self.id
    }

    /// The cell's hypervisor.
    pub fn hypervisor(&self) -> &Hypervisor<Ks4Xen> {
        &self.hv
    }

    /// Whether the cell is draining for maintenance.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the cell is down after a crash.
    pub fn is_down(&self) -> bool {
        self.down_until.is_some()
    }

    /// Runs one epoch. Phantom blackouts left by dest-side migration aborts
    /// stall the *whole cell* first (its residents run nowhere during the
    /// stall — the handshake cost of a migration the cell never got); then,
    /// when arrivals are pending, `downtime_ticks` of blackout run without
    /// them (the cost lands on the arriving VM), the arrivals join (in plan
    /// order, through the admit half of the live-migration path), and the
    /// rest of the epoch runs. Returns the local ids handed to the
    /// arrivals. A down cell runs nothing.
    fn run_epoch(
        &mut self,
        epoch_ticks: u64,
        downtime_ticks: u64,
    ) -> Result<Vec<(FleetVmId, VmId)>, ClusterError> {
        if self.down_until.is_some() {
            debug_assert!(
                self.arrivals.is_empty() && self.phantom_blackouts == 0,
                "a down cell can hold no pending work"
            );
            return Ok(Vec::new());
        }
        let span_start = self.hv.engine().elapsed_cycles();
        let arrivals = std::mem::take(&mut self.arrivals);
        let phantoms = std::mem::take(&mut self.phantom_blackouts);
        let stall = (downtime_ticks * phantoms).min(epoch_ticks);
        let remaining = epoch_ticks - stall;
        let mut placed = Vec::with_capacity(arrivals.len());
        if arrivals.is_empty() {
            self.hv.run_ticks(remaining);
        } else {
            let blackout = downtime_ticks.min(remaining);
            self.hv.run_ticks(blackout);
            for arrival in arrivals {
                let local =
                    self.hv
                        .admit_vm(arrival.taken)
                        .map_err(|source| ClusterError::Admission {
                            cell: self.id,
                            vm: arrival.fleet,
                            source,
                        })?;
                placed.push((arrival.fleet, local));
            }
            self.hv.run_ticks(remaining - blackout);
        }
        // The whole epoch body becomes one span on the cell engine's own
        // cycle clock, enclosing the per-batch `engine.run_slots` spans it
        // ran (its self-time in the profile rollup is the cell's
        // stall/blackout overhead).
        let engine = self.hv.engine_mut();
        if engine.trace().is_enabled() {
            let dur = engine.elapsed_cycles() - span_start;
            engine
                .trace_mut()
                .span("engine", "cell.epoch", span_start, dur);
        }
        Ok(placed)
    }
}

/// Lifetime counters of a fleet VM, accumulated across every cell it lived
/// on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct Totals {
    pmcs: PmcSet,
    cycles_run: u64,
    ticks_scheduled: u64,
    ticks_elapsed: u64,
    punishments: u64,
    ticks_blocked: u64,
}

impl Totals {
    fn of(report: &VmReport) -> Totals {
        Totals {
            pmcs: report.pmcs,
            cycles_run: report.cycles_run,
            ticks_scheduled: report.ticks_scheduled,
            ticks_elapsed: report.ticks_elapsed,
            punishments: report.punishments,
            ticks_blocked: report.ticks_blocked,
        }
    }

    fn plus(mut self, other: Totals) -> Totals {
        self.pmcs += other.pmcs;
        self.cycles_run += other.cycles_run;
        self.ticks_scheduled += other.ticks_scheduled;
        self.ticks_elapsed += other.ticks_elapsed;
        self.punishments += other.punishments;
        self.ticks_blocked += other.ticks_blocked;
        self
    }

    fn minus(self, earlier: Totals) -> Totals {
        Totals {
            pmcs: self.pmcs.delta_since(&earlier.pmcs),
            cycles_run: self.cycles_run.saturating_sub(earlier.cycles_run),
            ticks_scheduled: self.ticks_scheduled.saturating_sub(earlier.ticks_scheduled),
            ticks_elapsed: self.ticks_elapsed.saturating_sub(earlier.ticks_elapsed),
            punishments: self.punishments.saturating_sub(earlier.punishments),
            ticks_blocked: self.ticks_blocked.saturating_sub(earlier.ticks_blocked),
        }
    }
}

/// Control-plane state of one fleet VM.
#[derive(Debug, Clone)]
pub(crate) struct FleetVm {
    id: FleetVmId,
    name: String,
    cell: CellId,
    /// Local id on the current cell; `None` while in flight between cells
    /// or orphaned by a crash.
    local: Option<VmId>,
    core: usize,
    working_set_bytes: u64,
    /// Totals accumulated on cells the VM has since left.
    carried: Totals,
    /// Fleet-wide totals at the last epoch boundary (for epoch deltas).
    last: Totals,
    migrations: u64,
    /// Cache lines dropped at sources by this VM's migrations.
    flushed_lines: u64,
    /// Cluster tick at which the VM was added (so VMs arriving mid-run get
    /// a correct wall-clock denominator).
    added_at_tick: u64,
    /// Waiting in the crash-recovery retry queue: the VM claims no cell
    /// resources (core, snapshot slot, occupancy) until re-admitted.
    orphaned: bool,
}

/// One crash-orphaned VM waiting in the retry queue: the pieces `take_vm`
/// salvaged from the crashed cell, plus the backoff bookkeeping.
pub(crate) struct Orphan {
    pub(crate) fleet: FleetVmId,
    pub(crate) taken: TakenVm,
    /// Epoch of the crash that orphaned the VM (re-admission latency is
    /// measured from here).
    pub(crate) crashed_at: u64,
    /// Failed re-admission attempts so far.
    pub(crate) attempts: u32,
    /// Next epoch at which admission is retried (exponential backoff).
    pub(crate) next_attempt: u64,
}

impl Orphan {
    fn try_clone(&self) -> Option<Orphan> {
        Some(Orphan {
            fleet: self.fleet,
            taken: self.taken.try_clone()?,
            crashed_at: self.crashed_at,
            attempts: self.attempts,
            next_attempt: self.next_attempt,
        })
    }
}

/// What the fleet-dynamics events of one epoch boundary did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// VMs admitted by arrival events.
    pub arrivals: u64,
    /// Arrivals rejected because every cell was draining or full.
    pub rejected_arrivals: u64,
    /// VMs removed by departure events.
    pub departures: u64,
    /// Cells that began draining.
    pub drains: u64,
    /// Cells that rejoined.
    pub joins: u64,
}

/// Aggregate of one cell over one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEpochStats {
    /// The cell.
    pub cell: CellId,
    /// Whether the cell was draining at the epoch boundary.
    pub draining: bool,
    /// Whether the cell was down (crashed) at the epoch boundary.
    pub down: bool,
    /// VMs resident at the epoch boundary.
    pub vms: usize,
    /// Instructions its VMs retired during the epoch.
    pub instructions: u64,
    /// LLC misses of its VMs during the epoch.
    pub llc_misses: u64,
    /// Punishments its VMs received during the epoch.
    pub punishments: u64,
    /// Summed pollution rate (misses per CPU-ms) of its VMs.
    pub pollution_rate: f64,
}

/// What one epoch did: per-cell aggregates plus the migrations planned at
/// its boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Per-cell aggregates, in cell order.
    pub cells: Vec<CellEpochStats>,
    /// Migrations planned at this epoch's boundary (they materialise during
    /// the next epoch).
    pub migrations: Vec<MigrationMove>,
    /// Fleet-dynamics events applied at the boundary *before* this epoch
    /// ran (all-zero for epochs driven without an event stream).
    pub events: EventCounts,
    /// Faults injected and recoveries performed at the boundary *before*
    /// this epoch ran (all-zero without an installed [`FaultPlan`]).
    pub faults: FaultCounts,
}

/// Fleet-wide execution report of one VM, spanning every cell it lived on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetVmReport {
    /// The VM.
    pub vm: FleetVmId,
    /// Its configured name.
    pub name: String,
    /// The cell currently hosting it.
    pub cell: CellId,
    /// Cumulative counters across all cells.
    pub pmcs: PmcSet,
    /// Cycles scheduled across all cells.
    pub cycles_run: u64,
    /// Ticks during which the VM ran, across all cells.
    pub ticks_scheduled: u64,
    /// Ticks the VM existed on *some* cell (excludes migration downtime).
    pub ticks_resident: u64,
    /// Wall-clock ticks of the cluster since the VM could first run
    /// (includes migration downtime — the denominator for fleet-level
    /// throughput).
    pub cluster_ticks: u64,
    /// Punishments across all cells.
    pub punishments: u64,
    /// Times the VM was live-migrated.
    pub migrations: u64,
    /// Warm cache lines the VM's migrations dropped at their source cells —
    /// the footprint it had to re-fetch cold on arrival.
    pub flushed_lines: u64,
    /// Ticks the VM spent Blocked (WFI) across all cells — no cycles are
    /// charged for these, whatever cell the VM slept on.
    pub ticks_blocked: u64,
}

impl FleetVmReport {
    /// Instructions per cycle while scheduled.
    pub fn ipc(&self) -> f64 {
        self.pmcs.ipc()
    }

    /// Instructions retired per elapsed *cluster* tick — migration downtime
    /// lowers this, which is exactly the cost the planner must amortise.
    pub fn instructions_per_tick(&self) -> f64 {
        if self.cluster_ticks == 0 {
            0.0
        } else {
            self.pmcs.instructions as f64 / self.cluster_ticks as f64
        }
    }

    /// Measured pollution in LLC misses per CPU-millisecond.
    pub fn llc_misses_per_cpu_ms(&self, freq_khz: u64) -> f64 {
        if self.pmcs.unhalted_core_cycles == 0 {
            0.0
        } else {
            self.pmcs.llc_misses as f64 * freq_khz as f64 / self.pmcs.unhalted_core_cycles as f64
        }
    }
}

/// The fleet: cells + control plane.
pub struct Cluster {
    pub(crate) config: ClusterConfig,
    pub(crate) planner: MigrationPlanner,
    pub(crate) cells: Vec<Cell>,
    pub(crate) vms: Vec<FleetVm>,
    /// Final reports of VMs that departed the fleet (or were permanently
    /// rejected after a crash), in departure order.
    pub(crate) departed: Vec<FleetVmReport>,
    /// Crash-orphaned VMs waiting for re-admission, in orphaning order.
    pub(crate) retry: Vec<Orphan>,
    /// The installed fault plan, if any. `None` keeps the fault path
    /// entirely out of the epoch loop.
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) next_fleet_id: u32,
    /// Monotonic index handed to the arrival spawner (also counts rejected
    /// arrivals, so the spawned stream is independent of admission luck).
    pub(crate) arrival_index: u64,
    pub(crate) epoch: u64,
    pub(crate) total_migrations: u64,
    pub(crate) total_arrivals: u64,
    pub(crate) total_departures: u64,
    pub(crate) rejected_arrivals: u64,
    /// Lifetime fault/recovery totals (sums of the per-epoch
    /// [`EpochReport::faults`] counts).
    pub(crate) total_faults: FaultCounts,
    /// Summed re-admission latency (epochs from crash to re-queue) of every
    /// readmitted orphan, for the mean latency metric.
    pub(crate) readmission_latency_epochs: u64,
    pub(crate) history: Vec<EpochReport>,
    pub(crate) freq_khz: u64,
    /// The cluster-level trace sink: boundary-phase spans and fault/event
    /// instants in the control-cursor domain, plus every cell engine's
    /// per-epoch trace absorbed under a `cellN.` prefix — always in
    /// cell-id order after all cells finish, so serial and cell-parallel
    /// epochs merge byte-identically.
    pub(crate) trace: TraceSink,
    /// Monotone control-plane clock (in "operations", not cycles): the
    /// timestamp domain of boundary spans and control-plane instants.
    /// Realigned to an epoch-proportional base at every boundary (see
    /// [`CONTROL_EPOCH_STRIDE`]); bumped once per recorded control event.
    pub(crate) control_cursor: u64,
}

/// Builds one cell's hypervisor (shared by construction and post-crash
/// reboot, so a rebooted cell is indistinguishable from a fresh one).
fn build_cell_hv(config: &ClusterConfig, machine_config: &MachineConfig) -> Hypervisor<Ks4Xen> {
    let mut hv = ks4xen_hypervisor(
        Machine::new(machine_config.clone()),
        config.hypervisor,
        config.strategy,
    );
    if matches!(config.strategy, MonitoringStrategy::SimulatorAttribution) {
        hv.engine_mut()
            .enable_shadow_attribution()
            // kyoto-lint: allow(cluster-no-panic): Machine::new above already validated this exact LLC geometry
            .expect("valid LLC geometry");
    }
    // Enabled here — the one construction path — so a cell rebooted after
    // a crash traces exactly like a fresh one.
    if config.trace.is_on() {
        hv.engine_mut().trace_mut().enable();
    }
    hv
}

impl Cluster {
    /// Builds an empty cluster of `config.cells` identical cells.
    pub fn new(config: ClusterConfig) -> Self {
        let machine_config = config.cell_machine_config();
        let freq_khz = machine_config.freq_khz;
        let cells = (0..config.cells)
            .map(|i| Cell {
                id: CellId(i),
                hv: build_cell_hv(&config, &machine_config),
                arrivals: Vec::new(),
                draining: false,
                down_until: None,
                slow_until: None,
                phantom_blackouts: 0,
            })
            .collect();
        Cluster {
            planner: MigrationPlanner::new(config.planner),
            trace: TraceSink::new(config.trace),
            control_cursor: 0,
            config,
            cells,
            vms: Vec::new(),
            departed: Vec::new(),
            retry: Vec::new(),
            faults: None,
            next_fleet_id: 1,
            arrival_index: 0,
            epoch: 0,
            total_migrations: 0,
            total_arrivals: 0,
            total_departures: 0,
            rejected_arrivals: 0,
            total_faults: FaultCounts::default(),
            readmission_latency_epochs: 0,
            history: Vec::new(),
            freq_khz,
        }
    }

    /// Installs (or replaces) the fault plan driving crash/slowdown/abort
    /// injection at every subsequent epoch boundary. Without a plan the
    /// fault machinery is never entered.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The cluster-level trace sink (control-plane spans plus absorbed
    /// per-cell engine traces; empty and disabled unless the configuration
    /// enabled tracing).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable access to the cluster trace sink. Upper layers (the
    /// kyoto-service control plane) record their control-plane events
    /// here, in the same control-cursor timestamp domain.
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Advances the control-plane trace cursor by one event slot and
    /// returns the new position — the timestamp an upper layer should
    /// stamp on a control-plane instant it records via
    /// [`Cluster::trace_mut`].
    pub fn trace_cursor_bump(&mut self) -> u64 {
        self.control_cursor += 1;
        self.control_cursor
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Physical cores of one cell.
    pub fn cores_per_cell(&self) -> usize {
        self.config.cell_machine_config().num_cores()
    }

    /// The cells, in id order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Elapsed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Elapsed cluster ticks (every cell advances in lock-step).
    pub fn elapsed_ticks(&self) -> u64 {
        self.epoch * self.config.epoch_ticks
    }

    /// Total migrations applied since construction.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// VMs admitted by arrival events since construction (excludes VMs
    /// added directly through [`Cluster::add_vm`]).
    pub fn total_arrivals(&self) -> u64 {
        self.total_arrivals
    }

    /// VMs removed by departure events since construction.
    pub fn total_departures(&self) -> u64 {
        self.total_departures
    }

    /// Arrival events rejected because every cell was draining or full.
    pub fn rejected_arrivals(&self) -> u64 {
        self.rejected_arrivals
    }

    /// Whether `cell` is draining for maintenance.
    ///
    /// # Panics
    ///
    /// Panics when `cell` does not exist.
    pub fn is_draining(&self, cell: CellId) -> bool {
        self.cells[cell.0].draining
    }

    /// Whether `cell` is down after a crash.
    ///
    /// # Panics
    ///
    /// Panics when `cell` does not exist.
    pub fn is_down(&self, cell: CellId) -> bool {
        self.cells[cell.0].is_down()
    }

    /// Lifetime fault and recovery totals (sums of the per-epoch
    /// [`EpochReport::faults`] counts).
    pub fn total_faults(&self) -> FaultCounts {
        self.total_faults
    }

    /// Crash-orphaned VMs currently waiting in the re-admission retry
    /// queue.
    pub fn orphan_count(&self) -> usize {
        self.retry.len()
    }

    /// Mean epochs from crash to successful re-admission across every
    /// readmitted orphan so far (`None` until one has been readmitted).
    pub fn mean_readmission_latency_epochs(&self) -> Option<f64> {
        if self.total_faults.readmitted == 0 {
            None
        } else {
            Some(self.readmission_latency_epochs as f64 / self.total_faults.readmitted as f64)
        }
    }

    /// Starts or stops draining `cell`. A draining cell accepts no churn
    /// arrivals and no planner moves, and the planner evacuates its
    /// resident VMs (via the live-migration path) at every epoch boundary
    /// until the cell is empty or rejoins.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownCell`] when `cell` does not exist.
    pub fn set_draining(&mut self, cell: CellId, draining: bool) -> Result<(), ClusterError> {
        if cell.0 >= self.cells.len() {
            return Err(ClusterError::UnknownCell { cell });
        }
        self.cells[cell.0].draining = draining;
        Ok(())
    }

    /// Total warm cache lines dropped at source cells by every migration so
    /// far — the fleet-wide cold-cache bill of the consolidation policy.
    pub fn total_flushed_lines(&self) -> u64 {
        self.vms.iter().map(|vm| vm.flushed_lines).sum()
    }

    /// Per-epoch history.
    pub fn history(&self) -> &[EpochReport] {
        &self.history
    }

    /// Creates a single-vCPU VM on `cell`, pinned to the cell's lowest free
    /// core. `config`'s pinning and NUMA node are overridden by the cluster
    /// (placement is the control plane's job); its name, weight, cap and
    /// `llc_cap` permit are kept.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownCell`] when `cell` does not exist;
    /// [`ClusterError::Admission`] when the cell's hypervisor refuses the
    /// placement.
    pub fn add_vm(
        &mut self,
        cell: CellId,
        config: VmConfig,
        workload: Box<dyn Workload>,
    ) -> Result<FleetVmId, ClusterError> {
        if cell.0 >= self.cells.len() {
            return Err(ClusterError::UnknownCell { cell });
        }
        let fleet = FleetVmId(self.next_fleet_id);
        let core = self.free_core(cell);
        let working_set_bytes = workload.working_set_bytes();
        let config = VmConfig {
            pinning: Some(vec![CoreId(core)]),
            numa_node: None,
            ..config.with_vcpus(1)
        };
        let name = config.name.clone();
        let local = self.cells[cell.0]
            .hv
            .add_vm(config, vec![workload])
            .map_err(|source| ClusterError::Admission {
                cell,
                vm: fleet,
                source,
            })?;
        self.next_fleet_id += 1;
        self.vms.push(FleetVm {
            id: fleet,
            name,
            cell,
            local: Some(local),
            core,
            working_set_bytes,
            carried: Totals::default(),
            last: Totals::default(),
            migrations: 0,
            flushed_lines: 0,
            added_at_tick: self.elapsed_ticks(),
            orphaned: false,
        });
        Ok(fleet)
    }

    /// Lowest core of `cell` not claimed by a resident or in-flight VM
    /// (wraps into time-sharing when the cell is overfull). Orphaned VMs
    /// claim nothing.
    fn free_core(&self, cell: CellId) -> usize {
        let cores = self.cores_per_cell();
        let used: Vec<usize> = self
            .vms
            .iter()
            .filter(|vm| vm.cell == cell && !vm.orphaned)
            .map(|vm| vm.core)
            .collect();
        (0..cores)
            .find(|core| !used.contains(core))
            .unwrap_or(used.len() % cores.max(1))
    }

    /// Runs one epoch: the fault boundary fires first (recoveries, then the
    /// [`FaultPlan`]'s faults, then the orphan retry queue), every cell
    /// executes `epoch_ticks` (serially or on scoped threads,
    /// bit-identically), then the control plane snapshots the fleet, plans
    /// migrations under the configured policy and applies them — minus any
    /// move an injected [`FaultEvent::MigrationAbort`] claims (arrivals
    /// materialise during the *next* epoch). Returns the epoch's report.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Admission`] when a cell refuses an arrival it
    /// previously had capacity for, [`ClusterError::InvalidPlan`] when the
    /// planner emits a plan that fails validation — both indicate control-
    /// plane bugs, surfaced instead of panicking the fleet.
    pub fn run_epoch(&mut self) -> Result<&EpochReport, ClusterError> {
        // Realign the control-plane clock to this epoch's window. Events
        // recorded *before* this boundary (fleet dynamics, service
        // admissions) keep their earlier positions, so the cursor stays
        // monotone and chronological.
        self.control_cursor = self
            .control_cursor
            .max((self.epoch + 1) * CONTROL_EPOCH_STRIDE);
        let mut faults = FaultCounts::default();
        let aborts = self.apply_fault_boundary(&mut faults)?;
        let epoch_ticks = self.config.epoch_ticks;
        let downtime = self.planner.config().cost.downtime_ticks;
        let parallel = self.config.parallel_cells && self.cells.len() >= 2;
        let placements: Vec<Result<Vec<(FleetVmId, VmId)>, ClusterError>> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .cells
                    .iter_mut()
                    .map(|cell| scope.spawn(move || cell.run_epoch(epoch_ticks, downtime)))
                    .collect();
                handles
                    .into_iter()
                    // kyoto-lint: allow(cluster-no-panic): join() only errs if the child panicked; re-raising that panic is the correct propagation
                    .map(|handle| handle.join().expect("cell epoch thread"))
                    .collect()
            })
        } else {
            self.cells
                .iter_mut()
                .map(|cell| cell.run_epoch(epoch_ticks, downtime))
                .collect()
        };
        for placed in placements {
            for (fleet, local) in placed? {
                let vm = self
                    .vms
                    .iter_mut()
                    .find(|vm| vm.id == fleet)
                    .ok_or(ClusterError::UnknownVm { vm: fleet })?;
                vm.local = Some(local);
            }
        }
        self.absorb_cell_traces();
        let snapshot = self.snapshot_and_advance();
        let plan = self.planner.plan(&snapshot, self.config.policy);
        if let Err(reason) = plan.validate(&snapshot) {
            return Err(ClusterError::InvalidPlan { reason });
        }
        self.apply(&plan, &aborts, &mut faults)?;
        self.total_faults.accumulate(&faults);
        self.history.push(EpochReport {
            epoch: self.epoch,
            cells: snapshot
                .cells
                .iter()
                .map(|cell| CellEpochStats {
                    cell: cell.cell,
                    draining: cell.draining,
                    down: cell.down,
                    vms: cell.vms.len(),
                    instructions: cell.vms.iter().map(|vm| vm.instructions).sum(),
                    llc_misses: cell.vms.iter().map(|vm| vm.llc_misses).sum(),
                    punishments: cell.vms.iter().map(|vm| vm.punishments).sum(),
                    pollution_rate: cell.pollution_rate(),
                })
                .collect(),
            migrations: plan.moves,
            events: EventCounts::default(),
            faults,
        });
        self.record_boundary_trace();
        self.epoch += 1;
        // kyoto-lint: allow(cluster-no-panic): history.push above makes last() infallible
        Ok(self.history.last().expect("just pushed"))
    }

    /// Drains each cell engine's per-epoch trace into the cluster sink
    /// under a `cellN.` prefix — strictly in cell-id order, after every
    /// cell has finished the epoch, so the serial and cell-parallel paths
    /// merge byte-identically (property-tested).
    fn absorb_cell_traces(&mut self) {
        if !self.trace.is_enabled() {
            return;
        }
        for (index, cell) in self.cells.iter_mut().enumerate() {
            let drained = cell.hv.engine_mut().trace_mut().drain();
            self.trace.absorb(&drained, &format!("cell{index}."));
        }
    }

    /// Records the just-pushed epoch's boundary phases as spans in the
    /// control-cursor domain — fault handling, planning, plan application
    /// (with one `cluster.migrate` instant per planned move) and the
    /// retry queue, wrapped in one `cluster.boundary` span — plus the
    /// control-plane counters. Phase durations are `1 + <operation
    /// count>`, so span widths read as operation volume.
    fn record_boundary_trace(&mut self) {
        if !self.trace.is_enabled() {
            return;
        }
        let Some(report) = self.history.last() else {
            return;
        };
        let migrations = report.migrations.clone();
        let faults = report.faults;
        let epoch = report.epoch;
        let start = self.control_cursor + 1;
        let mut cursor = start;

        let fault_ops = faults.crashes
            + faults.recoveries
            + faults.slowdowns
            + faults.aborted_migrations()
            + faults.orphaned;
        let fault_dur = 1 + fault_ops;
        self.trace.span_with(
            "cluster",
            "cluster.faults",
            cursor,
            fault_dur,
            format!(
                "crashes={} recoveries={} slowdowns={} aborts={}",
                faults.crashes,
                faults.recoveries,
                faults.slowdowns,
                faults.aborted_migrations()
            ),
        );
        cursor += fault_dur;

        let plan_dur = 1 + migrations.len() as u64;
        self.trace.span_with(
            "cluster",
            "planner.plan",
            cursor,
            plan_dur,
            format!("moves={}", migrations.len()),
        );
        cursor += plan_dur;

        let apply_start = cursor;
        for mv in &migrations {
            cursor += 1;
            self.trace.instant_with(
                "cluster",
                "cluster.migrate",
                cursor,
                format!("vm={} from={} to={}", mv.vm.0, mv.from.0, mv.to.0),
            );
        }
        cursor += 1;
        self.trace.span(
            "cluster",
            "cluster.apply",
            apply_start,
            cursor - apply_start,
        );

        let retry_ops = faults.readmitted + faults.retry_backoffs + faults.rejected_orphans;
        let retry_dur = 1 + retry_ops;
        self.trace.span_with(
            "cluster",
            "cluster.retry",
            cursor,
            retry_dur,
            format!(
                "readmitted={} backoffs={} rejected={}",
                faults.readmitted, faults.retry_backoffs, faults.rejected_orphans
            ),
        );
        cursor += retry_dur;

        self.trace.span_with(
            "cluster",
            "cluster.boundary",
            start,
            cursor - start,
            format!("epoch={epoch}"),
        );
        self.control_cursor = cursor;

        self.trace.counter_add("cluster.epochs", 1);
        self.trace
            .counter_add("cluster.migrations", migrations.len() as u64);
        self.trace.counter_add("cluster.crashes", faults.crashes);
        self.trace
            .counter_add("cluster.aborted_migrations", faults.aborted_migrations());
        self.trace
            .counter_add("cluster.readmitted", faults.readmitted);
    }

    /// Runs `epochs` epochs, stopping at the first error.
    pub fn run_epochs(&mut self, epochs: u64) -> Result<(), ClusterError> {
        for _ in 0..epochs {
            self.run_epoch()?;
        }
        Ok(())
    }

    /// Applies fleet-dynamics events at this epoch boundary, then runs one
    /// epoch. `spawn` supplies the configuration and workload of each
    /// arrival, keyed by a monotonic arrival index (counted across the
    /// cluster's lifetime, rejected arrivals included) so the arrival
    /// stream is a pure function of the index sequence.
    ///
    /// Event semantics, applied in list order:
    ///
    /// * [`FleetEvent::CellDrain`]/[`FleetEvent::CellJoin`] toggle the
    ///   cell's draining flag (evacuation itself is the planner's job at
    ///   the epoch boundary that follows the epoch run);
    /// * [`FleetEvent::VmDeparture`] folds its `pick` onto the resident
    ///   population (`pick % population`, fleet-id order), archives the
    ///   victim's final report and removes it through the extraction path
    ///   (cache lines flushed at the source);
    /// * [`FleetEvent::VmArrival`] admits a new VM onto the open cell with
    ///   the most free cores (ties toward the lowest id), or rejects it
    ///   loudly in the counters when every cell is draining or full.
    ///
    /// # Example
    ///
    /// Drive one epoch with an inline event list — an arrival spawned from
    /// the arrival index, then a scripted departure:
    ///
    /// ```
    /// use kyoto_cluster::cluster::{Cluster, ClusterConfig};
    /// use kyoto_cluster::events::FleetEvent;
    /// use kyoto_hypervisor::vm::VmConfig;
    /// use kyoto_workloads::spec::{SpecApp, SpecWorkload};
    ///
    /// let mut cluster = Cluster::new(ClusterConfig::new(2, 256).with_epoch_ticks(4));
    /// let events = [FleetEvent::VmArrival, FleetEvent::VmDeparture { pick: 3 }];
    /// let report = cluster
    ///     .run_epoch_with_events(&events, &mut |index| {
    ///         (
    ///             VmConfig::new(format!("vm-{index}")),
    ///             Box::new(SpecWorkload::new(SpecApp::Gcc, 256, 0xf1ee7 + index)) as _,
    ///         )
    ///     })
    ///     .unwrap();
    /// assert_eq!(report.events.arrivals, 1);
    /// assert_eq!(report.events.departures, 1); // the arrival departed again
    /// assert_eq!(cluster.epoch(), 1);
    /// ```
    pub fn run_epoch_with_events(
        &mut self,
        events: &[FleetEvent],
        spawn: &mut dyn FnMut(u64) -> (VmConfig, Box<dyn Workload>),
    ) -> Result<&EpochReport, ClusterError> {
        let mut counts = EventCounts::default();
        for &event in events {
            self.apply_event(event, spawn, &mut counts)?;
        }
        self.run_epoch()?;
        // kyoto-lint: allow(cluster-no-panic): run_epoch just pushed a report, so both last() calls are infallible
        self.history.last_mut().expect("just pushed").events = counts;
        // kyoto-lint: allow(cluster-no-panic): same push as the line above — the report exists
        Ok(self.history.last().expect("just pushed"))
    }

    /// Runs `epochs` epochs under `schedule`, applying each epoch's events
    /// at its boundary (see [`Cluster::run_epoch_with_events`]).
    pub fn run_epochs_with_schedule(
        &mut self,
        schedule: &EventSchedule,
        epochs: u64,
        spawn: &mut dyn FnMut(u64) -> (VmConfig, Box<dyn Workload>),
    ) -> Result<(), ClusterError> {
        for _ in 0..epochs {
            let events = schedule.events_for_epoch(self.epoch);
            self.run_epoch_with_events(&events, spawn)?;
        }
        Ok(())
    }

    /// Applies one fleet-dynamics event. Referencing a cell that does not
    /// exist is a schedule-configuration bug; silently dropping the event
    /// would quietly measure a different scenario, so it surfaces as
    /// [`ClusterError::UnknownCell`].
    fn apply_event(
        &mut self,
        event: FleetEvent,
        spawn: &mut dyn FnMut(u64) -> (VmConfig, Box<dyn Workload>),
        counts: &mut EventCounts,
    ) -> Result<(), ClusterError> {
        match event {
            FleetEvent::CellDrain(cell) => {
                if cell.0 >= self.cells.len() {
                    return Err(ClusterError::UnknownCell { cell });
                }
                if !self.cells[cell.0].draining {
                    self.cells[cell.0].draining = true;
                    counts.drains += 1;
                    if self.trace.is_enabled() {
                        let ts = self.trace_cursor_bump();
                        self.trace.instant_with(
                            "cluster",
                            "cluster.drain",
                            ts,
                            format!("cell={}", cell.0),
                        );
                    }
                }
            }
            FleetEvent::CellJoin(cell) => {
                if cell.0 >= self.cells.len() {
                    return Err(ClusterError::UnknownCell { cell });
                }
                // Joining clears the draining flag only: a crashed cell
                // stays down until its reboot epoch regardless of joins.
                if self.cells[cell.0].draining {
                    self.cells[cell.0].draining = false;
                    counts.joins += 1;
                    if self.trace.is_enabled() {
                        let ts = self.trace_cursor_bump();
                        self.trace.instant_with(
                            "cluster",
                            "cluster.join",
                            ts,
                            format!("cell={}", cell.0),
                        );
                    }
                }
            }
            FleetEvent::VmDeparture { pick } => {
                if self.depart_vm(pick)? {
                    counts.departures += 1;
                    if self.trace.is_enabled() {
                        let ts = self.trace_cursor_bump();
                        self.trace.instant("cluster", "cluster.depart", ts);
                    }
                }
            }
            FleetEvent::VmArrival => {
                let index = self.arrival_index;
                self.arrival_index += 1;
                let (config, workload) = spawn(index);
                match self.admission_cell() {
                    Some(cell) => {
                        self.add_vm(cell, config, workload)?;
                        counts.arrivals += 1;
                        self.total_arrivals += 1;
                        if self.trace.is_enabled() {
                            let ts = self.trace_cursor_bump();
                            self.trace.instant_with(
                                "cluster",
                                "cluster.arrival",
                                ts,
                                format!("cell={}", cell.0),
                            );
                        }
                    }
                    None => {
                        counts.rejected_arrivals += 1;
                        self.rejected_arrivals += 1;
                        if self.trace.is_enabled() {
                            let ts = self.trace_cursor_bump();
                            self.trace.instant("cluster", "cluster.reject_arrival", ts);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The admission target for a churn arrival or an orphan re-admission:
    /// the open (neither draining nor down) cell with the most free cores,
    /// ties toward the lowest id. `None` when every cell is draining, down
    /// or full.
    ///
    /// Public so external admission controllers (the `kyoto-service`
    /// control plane) can reproduce the cluster's own placement choice —
    /// and veto or re-rank it — before committing a request.
    pub fn admission_cell(&self) -> Option<CellId> {
        let cores = self.cores_per_cell();
        let occupancy = self.occupancies();
        (0..self.cells.len())
            .filter(|&c| {
                !self.cells[c].draining && !self.cells[c].is_down() && occupancy[c] < cores
            })
            .max_by_key(|&c| (cores - occupancy[c], std::cmp::Reverse(c)))
            .map(CellId)
    }

    /// Removes the VM a departure event selects: `pick % population` over
    /// the resident *and orphaned* VMs in fleet-id order (a customer can
    /// cancel a VM that is waiting out a crash; it leaves the retry queue
    /// with its report archived). In-flight VMs (mid-migration) are not
    /// candidates. Returns `Ok(false)` on an empty fleet.
    ///
    /// Public so request/reply fronts (the `kyoto-service` control plane)
    /// can serve a `DepartVm` request between epochs with the same
    /// fold-onto-population semantics as [`FleetEvent::VmDeparture`].
    pub fn depart_vm(&mut self, pick: u64) -> Result<bool, ClusterError> {
        let candidates: Vec<usize> = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, vm)| vm.local.is_some() || vm.orphaned)
            .map(|(index, _)| index)
            .collect();
        if candidates.is_empty() {
            return Ok(false);
        }
        let index = candidates[(pick % candidates.len() as u64) as usize];
        let fleet = self.vms[index].id;
        let report = self
            .report(fleet)
            .ok_or(ClusterError::UnknownVm { vm: fleet })?;
        if self.vms[index].orphaned {
            // The VM never made it back from its crash: drop its retry
            // entry along with it.
            self.retry.retain(|orphan| orphan.fleet != fleet);
        } else {
            // kyoto-lint: allow(cluster-no-panic): the candidate filter admits only resident-or-orphaned VMs and this is the non-orphaned branch, so `local` is Some
            let local = self.vms[index].local.take().expect("resident VM");
            let cell = self.vms[index].cell;
            // Extraction flushes the VM's cache lines at the source; the
            // pieces leave the fleet, so nothing is re-admitted anywhere.
            let _ = self.cells[cell.0]
                .hv
                .take_vm(local)
                .map_err(|source| ClusterError::Hypervisor { cell, source })?;
        }
        self.vms.remove(index);
        self.departed.push(report);
        self.total_departures += 1;
        Ok(true)
    }

    /// The fleet at the last epoch boundary (epoch deltas relative to the
    /// boundary before it). Does not advance any bookkeeping — both the
    /// control loop (via the private `snapshot_and_advance`) and external
    /// observers share this one builder, so the planner can never see a
    /// different snapshot shape than a caller of `snapshot()`.
    pub fn snapshot(&self) -> ClusterSnapshot {
        let cores = self.cores_per_cell();
        let mut cells: Vec<CellSnapshot> = self
            .cells
            .iter()
            .map(|cell| CellSnapshot {
                cell: cell.id,
                cores,
                draining: cell.draining,
                down: cell.is_down(),
                vms: Vec::new(),
            })
            .collect();
        for vm in self.vms.iter().filter(|vm| !vm.orphaned) {
            cells[vm.cell.0].vms.push(self.vm_snapshot(vm, vm.last));
        }
        ClusterSnapshot {
            epoch: self.epoch,
            cells,
        }
    }

    /// Lifetime totals of a VM: cells it left plus its current residence.
    fn current_totals(&self, vm: &FleetVm) -> Totals {
        let current = vm
            .local
            .and_then(|local| self.cells[vm.cell.0].hv.report(local))
            .map(|report| Totals::of(&report))
            .unwrap_or_default();
        vm.carried.plus(current)
    }

    fn vm_snapshot(&self, vm: &FleetVm, since: Totals) -> VmSnapshot {
        let delta = self.current_totals(vm).minus(since);
        let raw_rate = if delta.pmcs.unhalted_core_cycles == 0 {
            0.0
        } else {
            delta.pmcs.llc_misses as f64 * self.freq_khz as f64
                / delta.pmcs.unhalted_core_cycles as f64
        };
        // Prefer the scheduler's smoothed Equation-1 estimate: it honours
        // the monitoring strategy, so under shadow attribution it reports
        // the VM's *solo* pollution, uninflated by co-runner evictions —
        // the stable signal the pollution-aware planner needs. Raw epoch
        // counters are the fallback for VMs the scheduler has not yet
        // estimated (e.g. just arrived from a migration).
        let pollution_rate = vm
            .local
            .and_then(|local| {
                self.cells[vm.cell.0]
                    .hv
                    .scheduler()
                    .measured_llc_cap(VcpuId::new(local, 0))
            })
            .unwrap_or(raw_rate);
        // What flush_owner would invalidate if the VM migrated now — the
        // cost-aware planner's cold-cache refill estimate.
        let resident_lines = vm
            .local
            .map(|local| {
                let machine = self.cells[vm.cell.0].hv.engine().machine();
                (0..machine.num_sockets())
                    .map(|socket| machine.llc_occupancy_of(SocketId(socket), local.0))
                    .sum()
            })
            .unwrap_or(0);
        let blocked_fraction = if delta.ticks_elapsed == 0 {
            0.0
        } else {
            delta.ticks_blocked as f64 / delta.ticks_elapsed as f64
        };
        VmSnapshot {
            vm: vm.id,
            name: vm.name.clone(),
            pollution_rate,
            punishments: delta.punishments,
            instructions: delta.pmcs.instructions,
            llc_misses: delta.pmcs.llc_misses,
            ipc: delta.pmcs.ipc(),
            working_set_bytes: vm.working_set_bytes,
            resident_lines,
            blocked_fraction,
        }
    }

    /// Takes the epoch snapshot, then moves every VM's "last boundary"
    /// totals forward so the next epoch's deltas start here.
    fn snapshot_and_advance(&mut self) -> ClusterSnapshot {
        let snapshot = self.snapshot();
        let totals: Vec<Totals> = self.vms.iter().map(|vm| self.current_totals(vm)).collect();
        for (vm, total) in self.vms.iter_mut().zip(totals) {
            vm.last = total;
        }
        snapshot
    }

    /// Applies a migration plan: extract each VM from its source cell (cache
    /// flushed, workload state kept) and queue it on the destination, where
    /// it lands on the lowest free core after the downtime blackout.
    ///
    /// `aborts` carries the epoch's injected [`FaultEvent::MigrationAbort`]
    /// picks; each is folded onto the move list at apply time (`pick %
    /// moves`), first claim wins. An aborted move rolls back atomically —
    /// the VM ends the boundary attached to its source cell, never lost or
    /// duplicated — but the cost already sunk is not refunded (see
    /// [`AbortPoint`]). Only completed moves count as migrations.
    ///
    /// A plan naming a VM the fleet does not know, or one that is not
    /// resident on its claimed source cell, indicates a planner bug that
    /// slipped past validation; it surfaces as an error instead of
    /// panicking the fleet.
    fn apply(
        &mut self,
        plan: &MigrationPlan,
        aborts: &[(u64, AbortPoint)],
        counts: &mut FaultCounts,
    ) -> Result<(), ClusterError> {
        let mut claimed: BTreeMap<usize, AbortPoint> = BTreeMap::new();
        if !plan.moves.is_empty() {
            for &(pick, at) in aborts {
                claimed
                    .entry((pick % plan.moves.len() as u64) as usize)
                    .or_insert(at);
            }
        }
        let mut completed = 0u64;
        for (mv_index, mv) in plan.moves.iter().enumerate() {
            match claimed.get(&mv_index).copied() {
                Some(AbortPoint::Source) => {
                    // Pre-copy failed before suspension: the move is simply
                    // cancelled and the VM keeps running at the source.
                    counts.aborted_source += 1;
                    continue;
                }
                Some(at @ (AbortPoint::InFlight | AbortPoint::Dest)) => {
                    // The protocol got as far as extraction, so the rollback
                    // re-admits the VM on its *source* cell: it pays the
                    // blackout and arrives with a cold cache — all the cost
                    // of a migration with none of the benefit. The move
                    // never completed, so `migrations` is not incremented.
                    let index = self
                        .vms
                        .iter()
                        .position(|vm| vm.id == mv.vm)
                        .ok_or(ClusterError::UnknownVm { vm: mv.vm })?;
                    let local =
                        self.vms[index]
                            .local
                            .take()
                            .ok_or_else(|| ClusterError::InvalidPlan {
                                reason: format!("move of {:?}: VM is not resident", mv.vm),
                            })?;
                    let mut taken = self.cells[mv.from.0].hv.take_vm(local).map_err(|source| {
                        ClusterError::Hypervisor {
                            cell: mv.from,
                            source,
                        }
                    })?;
                    let core = self.vms[index].core;
                    {
                        let vm = &mut self.vms[index];
                        vm.carried = vm.carried.plus(Totals::of(&taken.report));
                        vm.flushed_lines += taken.flushed_lines;
                    }
                    taken.config = VmConfig {
                        pinning: Some(vec![CoreId(core)]),
                        numa_node: None,
                        ..taken.config
                    };
                    self.cells[mv.from.0].arrivals.push(Arrival {
                        fleet: mv.vm,
                        taken,
                    });
                    if at == AbortPoint::Dest {
                        // The destination had already committed its blackout
                        // window: it stalls for a handshake it got nothing
                        // for.
                        self.cells[mv.to.0].phantom_blackouts += 1;
                        counts.aborted_dest += 1;
                    } else {
                        counts.aborted_in_flight += 1;
                    }
                }
                None => {
                    let index = self
                        .vms
                        .iter()
                        .position(|vm| vm.id == mv.vm)
                        .ok_or(ClusterError::UnknownVm { vm: mv.vm })?;
                    let local =
                        self.vms[index]
                            .local
                            .take()
                            .ok_or_else(|| ClusterError::InvalidPlan {
                                reason: format!("move of {:?}: VM is not resident", mv.vm),
                            })?;
                    let mut taken = self.cells[mv.from.0].hv.take_vm(local).map_err(|source| {
                        ClusterError::Hypervisor {
                            cell: mv.from,
                            source,
                        }
                    })?;
                    let core = self.free_core(mv.to);
                    {
                        let vm = &mut self.vms[index];
                        vm.carried = vm.carried.plus(Totals::of(&taken.report));
                        vm.cell = mv.to;
                        vm.core = core;
                        vm.migrations += 1;
                        vm.flushed_lines += taken.flushed_lines;
                    }
                    // Re-place for the destination cell; everything else the
                    // source extracted travels as-is through the admit path.
                    taken.config = VmConfig {
                        pinning: Some(vec![CoreId(core)]),
                        numa_node: None,
                        ..taken.config
                    };
                    self.cells[mv.to.0].arrivals.push(Arrival {
                        fleet: mv.vm,
                        taken,
                    });
                    completed += 1;
                }
            }
        }
        self.total_migrations += completed;
        Ok(())
    }

    /// Applies the fault boundary of the current epoch: expire slowdowns and
    /// reboot cells whose down time is over, inject the [`FaultPlan`]'s
    /// faults for this epoch (crashes and slowdowns act immediately;
    /// migration-abort picks are collected and returned for
    /// [`Cluster::apply`] to fold onto the plan), then walk the orphan
    /// retry queue. A no-op returning no aborts when no plan is installed.
    fn apply_fault_boundary(
        &mut self,
        counts: &mut FaultCounts,
    ) -> Result<Vec<(u64, AbortPoint)>, ClusterError> {
        let Some(plan) = &self.faults else {
            return Ok(Vec::new());
        };
        let params = plan.recovery();
        let planned = plan.faults_for_epoch(self.epoch);
        let epoch = self.epoch;
        for index in 0..self.cells.len() {
            if self.cells[index]
                .down_until
                .is_some_and(|until| epoch >= until)
            {
                // The machine finished rebooting: it rejoins empty (its
                // hypervisor was rebuilt fresh at crash time).
                self.cells[index].down_until = None;
                counts.recoveries += 1;
                if self.trace.is_enabled() {
                    let ts = self.trace_cursor_bump();
                    self.trace.instant_with(
                        "cluster",
                        "cluster.recover",
                        ts,
                        format!("cell={index}"),
                    );
                }
            }
            if self.cells[index]
                .slow_until
                .is_some_and(|until| epoch >= until)
            {
                self.cells[index].slow_until = None;
                self.cells[index].hv.set_cycle_budget_divisor(1);
            }
        }
        let mut aborts = Vec::new();
        for fault in planned {
            match fault {
                FaultEvent::CellCrash { pick } => {
                    let up: Vec<usize> = (0..self.cells.len())
                        .filter(|&c| !self.cells[c].is_down())
                        .collect();
                    if up.is_empty() {
                        continue;
                    }
                    let victim = up[(pick % up.len() as u64) as usize];
                    self.crash_cell_now(CellId(victim), params, counts)?;
                }
                FaultEvent::CellSlowdown { pick } => {
                    let up: Vec<usize> = (0..self.cells.len())
                        .filter(|&c| !self.cells[c].is_down())
                        .collect();
                    if up.is_empty() {
                        continue;
                    }
                    let victim_index = up[(pick % up.len() as u64) as usize];
                    let victim = &mut self.cells[victim_index];
                    victim.hv.set_cycle_budget_divisor(params.slowdown_factor);
                    victim.slow_until = Some(epoch + params.slowdown_epochs);
                    counts.slowdowns += 1;
                    if self.trace.is_enabled() {
                        let ts = self.trace_cursor_bump();
                        self.trace.instant_with(
                            "cluster",
                            "cluster.slowdown",
                            ts,
                            format!("cell={victim_index} factor={}", params.slowdown_factor),
                        );
                    }
                }
                FaultEvent::MigrationAbort { pick, at } => aborts.push((pick, at)),
            }
        }
        self.process_retry_queue(params, counts)?;
        Ok(aborts)
    }

    /// Crashes `cell` right now: resident VMs are extracted (their totals
    /// and flushed lines charged) and orphaned into the retry queue,
    /// in-flight arrivals headed here are orphaned too (their totals were
    /// already charged at extraction), pending phantom blackouts die with
    /// the machine, the hypervisor is rebuilt fresh, and the cell stays
    /// down for the configured number of epochs. The draining flag
    /// survives the crash — a crashed maintenance drain resumes as a drain
    /// after reboot instead of deadlocking.
    fn crash_cell_now(
        &mut self,
        cell: CellId,
        params: RecoveryParams,
        counts: &mut FaultCounts,
    ) -> Result<(), ClusterError> {
        let epoch = self.epoch;
        counts.crashes += 1;
        if self.trace.is_enabled() {
            let ts = self.trace_cursor_bump();
            self.trace
                .instant_with("cluster", "cluster.crash", ts, format!("cell={}", cell.0));
        }
        let residents: Vec<usize> = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, vm)| vm.cell == cell && vm.local.is_some())
            .map(|(index, _)| index)
            .collect();
        for index in residents {
            // kyoto-lint: allow(cluster-no-panic): the residents filter above selected only VMs with `local.is_some()`
            let local = self.vms[index].local.take().expect("resident VM");
            let taken = self.cells[cell.0]
                .hv
                .take_vm(local)
                .map_err(|source| ClusterError::Hypervisor { cell, source })?;
            let fleet = {
                let vm = &mut self.vms[index];
                vm.carried = vm.carried.plus(Totals::of(&taken.report));
                vm.flushed_lines += taken.flushed_lines;
                vm.orphaned = true;
                vm.id
            };
            counts.orphaned += 1;
            self.retry.push(Orphan {
                fleet,
                taken,
                crashed_at: epoch,
                attempts: 0,
                next_attempt: epoch + 1,
            });
        }
        for arrival in std::mem::take(&mut self.cells[cell.0].arrivals) {
            if let Some(vm) = self.vms.iter_mut().find(|vm| vm.id == arrival.fleet) {
                vm.orphaned = true;
            }
            counts.orphaned += 1;
            self.retry.push(Orphan {
                fleet: arrival.fleet,
                taken: arrival.taken,
                crashed_at: epoch,
                attempts: 0,
                next_attempt: epoch + 1,
            });
        }
        let machine_config = self.config.cell_machine_config();
        let crashed = &mut self.cells[cell.0];
        crashed.phantom_blackouts = 0;
        crashed.slow_until = None;
        crashed.hv = build_cell_hv(&self.config, &machine_config);
        crashed.down_until = Some(epoch + params.down_epochs);
        Ok(())
    }

    /// Walks the orphan retry queue in orphaning order: every due orphan is
    /// re-admitted onto the best open cell (through the normal arrival
    /// path, so the blackout is charged naturally), or backs off
    /// exponentially, or — once its retry budget is exhausted — is
    /// permanently rejected with its final report archived. Nothing is
    /// silently dropped.
    fn process_retry_queue(
        &mut self,
        params: RecoveryParams,
        counts: &mut FaultCounts,
    ) -> Result<(), ClusterError> {
        let epoch = self.epoch;
        let mut index = 0;
        while index < self.retry.len() {
            if self.retry[index].next_attempt > epoch {
                index += 1;
                continue;
            }
            match self.admission_cell() {
                Some(cell) => {
                    let orphan = self.retry.remove(index);
                    let core = self.free_core(cell);
                    let mut taken = orphan.taken;
                    taken.config = VmConfig {
                        pinning: Some(vec![CoreId(core)]),
                        numa_node: None,
                        ..taken.config
                    };
                    let vm = self
                        .vms
                        .iter_mut()
                        .find(|vm| vm.id == orphan.fleet)
                        .ok_or(ClusterError::UnknownVm { vm: orphan.fleet })?;
                    vm.cell = cell;
                    vm.core = core;
                    vm.orphaned = false;
                    self.cells[cell.0].arrivals.push(Arrival {
                        fleet: orphan.fleet,
                        taken,
                    });
                    counts.readmitted += 1;
                    self.readmission_latency_epochs += epoch - orphan.crashed_at;
                    if self.trace.is_enabled() {
                        let ts = self.trace_cursor_bump();
                        self.trace.instant_with(
                            "cluster",
                            "cluster.readmit",
                            ts,
                            format!("vm={} cell={}", orphan.fleet.0, cell.0),
                        );
                    }
                }
                None => {
                    self.retry[index].attempts += 1;
                    if self.retry[index].attempts >= params.max_retries {
                        let orphan = self.retry.remove(index);
                        let report = self
                            .report(orphan.fleet)
                            .ok_or(ClusterError::UnknownVm { vm: orphan.fleet })?;
                        let position = self
                            .vms
                            .iter()
                            .position(|vm| vm.id == orphan.fleet)
                            .ok_or(ClusterError::UnknownVm { vm: orphan.fleet })?;
                        self.vms.remove(position);
                        self.departed.push(report);
                        counts.rejected_orphans += 1;
                        if self.trace.is_enabled() {
                            let ts = self.trace_cursor_bump();
                            self.trace.instant_with(
                                "cluster",
                                "cluster.reject_orphan",
                                ts,
                                format!("vm={}", orphan.fleet.0),
                            );
                        }
                    } else {
                        let attempts = self.retry[index].attempts;
                        self.retry[index].next_attempt = epoch + (1u64 << attempts.min(6));
                        counts.retry_backoffs += 1;
                        if self.trace.is_enabled() {
                            let vm = self.retry[index].fleet.0;
                            let ts = self.trace_cursor_bump();
                            self.trace.instant_with(
                                "cluster",
                                "cluster.retry_backoff",
                                ts,
                                format!("vm={vm}"),
                            );
                        }
                        index += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the fleet's VM-conservation invariants — the property the
    /// fault machinery must never break: every VM ever admitted is
    /// accounted for exactly once (live or departed), the retry queue and
    /// the `orphaned` flags mirror each other, no VM is resident on a down
    /// cell, and every in-flight VM sits in exactly one arrival queue.
    /// Returns a description of the first violation.
    pub fn verify_conservation(&self) -> Result<(), String> {
        for orphan in &self.retry {
            match self.vms.iter().find(|vm| vm.id == orphan.fleet) {
                None => {
                    return Err(format!(
                        "{} is retry-queued but missing from the fleet",
                        orphan.fleet
                    ))
                }
                Some(vm) if !vm.orphaned => {
                    return Err(format!(
                        "{} is retry-queued but not flagged orphaned",
                        vm.id
                    ))
                }
                Some(vm) if vm.local.is_some() => {
                    return Err(format!("{} is both orphaned and resident", vm.id))
                }
                _ => {}
            }
        }
        for vm in self.vms.iter().filter(|vm| vm.orphaned) {
            if !self.retry.iter().any(|orphan| orphan.fleet == vm.id) {
                return Err(format!(
                    "{} is flagged orphaned but missing from the retry queue",
                    vm.id
                ));
            }
        }
        let mut ids: Vec<u32> = self
            .vms
            .iter()
            .map(|vm| vm.id.0)
            .chain(self.departed.iter().map(|report| report.vm.0))
            .collect();
        ids.sort_unstable();
        let assigned = ids.len();
        ids.dedup();
        if ids.len() != assigned {
            return Err("a fleet VM is accounted for twice across live and departed".to_string());
        }
        if assigned as u32 != self.next_fleet_id - 1 {
            return Err(format!(
                "{} fleet ids were assigned but only {assigned} VMs are accounted for",
                self.next_fleet_id - 1
            ));
        }
        for vm in self.vms.iter().filter(|vm| !vm.orphaned) {
            if vm.local.is_none() {
                let queued = self
                    .cells
                    .iter()
                    .flat_map(|cell| cell.arrivals.iter())
                    .filter(|arrival| arrival.fleet == vm.id)
                    .count();
                if queued != 1 {
                    return Err(format!(
                        "{} is in flight but sits in {queued} arrival queues",
                        vm.id
                    ));
                }
            } else if self.cells[vm.cell.0].is_down() {
                return Err(format!("{} is resident on down {}", vm.id, vm.cell));
            }
        }
        Ok(())
    }

    /// Deep-copies the entire fleet — machine state, hypervisors, in-flight
    /// arrivals, the retry queue, counters and history — into a
    /// [`FleetCheckpoint`]. [`Cluster::restore`] resumes bit-identically.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Checkpoint`] when a cell's hypervisor hosts a
    /// workload without [`Workload::try_clone_box`] support;
    /// [`ClusterError::UncloneableVm`] when such a workload is travelling
    /// outside any hypervisor (in flight or orphaned).
    pub fn checkpoint(&self) -> Result<FleetCheckpoint, ClusterError> {
        let mut cells = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let hv = cell
                .hv
                .try_clone()
                .map_err(|source| ClusterError::Checkpoint {
                    cell: cell.id,
                    source,
                })?;
            let mut arrivals = Vec::with_capacity(cell.arrivals.len());
            for arrival in &cell.arrivals {
                arrivals.push(
                    arrival
                        .try_clone()
                        .ok_or(ClusterError::UncloneableVm { vm: arrival.fleet })?,
                );
            }
            cells.push(Cell {
                id: cell.id,
                hv,
                arrivals,
                draining: cell.draining,
                down_until: cell.down_until,
                slow_until: cell.slow_until,
                phantom_blackouts: cell.phantom_blackouts,
            });
        }
        let mut retry = Vec::with_capacity(self.retry.len());
        for orphan in &self.retry {
            retry.push(
                orphan
                    .try_clone()
                    .ok_or(ClusterError::UncloneableVm { vm: orphan.fleet })?,
            );
        }
        Ok(FleetCheckpoint {
            config: self.config,
            cells,
            vms: self.vms.clone(),
            departed: self.departed.clone(),
            retry,
            faults: self.faults.clone(),
            next_fleet_id: self.next_fleet_id,
            arrival_index: self.arrival_index,
            epoch: self.epoch,
            total_migrations: self.total_migrations,
            total_arrivals: self.total_arrivals,
            total_departures: self.total_departures,
            rejected_arrivals: self.rejected_arrivals,
            total_faults: self.total_faults,
            readmission_latency_epochs: self.readmission_latency_epochs,
            history: self.history.clone(),
            freq_khz: self.freq_khz,
            trace: self.trace.clone(),
            control_cursor: self.control_cursor,
        })
    }

    /// Rebuilds a cluster from a [`FleetCheckpoint`]. The restored cluster
    /// resumes **bit-identically**: `run(k)` equals
    /// `restore(checkpoint(run(j))).run(k - j)` for every `j <= k`
    /// (property-tested across policies and planner modes).
    pub fn restore(checkpoint: FleetCheckpoint) -> Cluster {
        Cluster {
            planner: MigrationPlanner::new(checkpoint.config.planner),
            config: checkpoint.config,
            cells: checkpoint.cells,
            vms: checkpoint.vms,
            departed: checkpoint.departed,
            retry: checkpoint.retry,
            faults: checkpoint.faults,
            next_fleet_id: checkpoint.next_fleet_id,
            arrival_index: checkpoint.arrival_index,
            epoch: checkpoint.epoch,
            total_migrations: checkpoint.total_migrations,
            total_arrivals: checkpoint.total_arrivals,
            total_departures: checkpoint.total_departures,
            rejected_arrivals: checkpoint.rejected_arrivals,
            total_faults: checkpoint.total_faults,
            readmission_latency_epochs: checkpoint.readmission_latency_epochs,
            history: checkpoint.history,
            freq_khz: checkpoint.freq_khz,
            trace: checkpoint.trace,
            control_cursor: checkpoint.control_cursor,
        }
    }

    /// The fleet-wide report of one VM.
    pub fn report(&self, fleet: FleetVmId) -> Option<FleetVmReport> {
        let vm = self.vms.iter().find(|vm| vm.id == fleet)?;
        let total = self.current_totals(vm);
        Some(FleetVmReport {
            vm: vm.id,
            name: vm.name.clone(),
            cell: vm.cell,
            pmcs: total.pmcs,
            cycles_run: total.cycles_run,
            ticks_scheduled: total.ticks_scheduled,
            ticks_resident: total.ticks_elapsed,
            cluster_ticks: self.elapsed_ticks().saturating_sub(vm.added_at_tick),
            punishments: total.punishments,
            migrations: vm.migrations,
            flushed_lines: vm.flushed_lines,
            ticks_blocked: total.ticks_blocked,
        })
    }

    /// The lifecycle state of a fleet VM's vCPU 0 on its current cell, or
    /// `None` while the VM is in flight between cells or crash-orphaned.
    /// Between epochs this is always `Ready` or `Blocked`, and a Blocked
    /// VM stays Blocked across migrations until its wake source fires.
    pub fn vcpu_state(&self, fleet: FleetVmId) -> Option<VcpuState> {
        let vm = self.vms.iter().find(|vm| vm.id == fleet)?;
        let local = vm.local?;
        self.cells[vm.cell.0].hv.vcpu_state(VcpuId::new(local, 0))
    }

    /// The wake-event clock of a fleet VM on its current cell (`None`
    /// while in flight or orphaned). The clock travels with the VM, so
    /// pending timer wakes stay scheduled across migrations and crashes.
    pub fn wake_clock(&self, fleet: FleetVmId) -> Option<u64> {
        let vm = self.vms.iter().find(|vm| vm.id == fleet)?;
        let local = vm.local?;
        self.cells[vm.cell.0].hv.wake_clock(local)
    }

    /// Fleet-wide reports of every VM, in fleet-id order.
    pub fn reports(&self) -> Vec<FleetVmReport> {
        self.vms
            .iter()
            .filter_map(|vm| self.report(vm.id))
            .collect()
    }

    /// Final reports of VMs that departed the fleet, in departure order
    /// (their `cluster_ticks` denominator is frozen at the departure
    /// boundary).
    pub fn departed_reports(&self) -> &[FleetVmReport] {
        &self.departed
    }

    /// Reports of every VM that ever ran on the fleet — departed and live —
    /// in fleet-id order.
    pub fn all_reports(&self) -> Vec<FleetVmReport> {
        let mut reports = self.departed.clone();
        reports.extend(self.reports());
        reports.sort_by_key(|report| report.vm);
        reports
    }

    /// Current VM count per cell (including in-flight arrivals headed
    /// there, excluding orphans — they claim no cell until re-admitted),
    /// in cell order.
    pub fn occupancies(&self) -> Vec<usize> {
        let mut occupancy = vec![0usize; self.cells.len()];
        for vm in self.vms.iter().filter(|vm| !vm.orphaned) {
            occupancy[vm.cell.0] += 1;
        }
        occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_workloads::spec::{SpecApp, SpecWorkload};

    const SCALE: u64 = 256;

    fn workload(app: SpecApp, seed: u64) -> Box<dyn Workload> {
        Box::new(SpecWorkload::new(app, SCALE, seed))
    }

    fn seeded(config: ClusterConfig, vms: usize) -> Cluster {
        let mut cluster = Cluster::new(config);
        let apps = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
        for i in 0..vms {
            let app = apps[i % apps.len()];
            let cell = CellId(i % cluster.num_cells());
            cluster
                .add_vm(
                    cell,
                    VmConfig::new(format!("vm{i}-{}", app.name())),
                    workload(app, 0xf1ee7 + i as u64),
                )
                .unwrap();
        }
        cluster
    }

    #[test]
    fn vms_run_and_report_across_epochs() {
        let mut cluster = seeded(ClusterConfig::new(2, SCALE).with_epoch_ticks(4), 4);
        cluster.run_epochs(2).unwrap();
        assert_eq!(cluster.epoch(), 2);
        assert_eq!(cluster.elapsed_ticks(), 8);
        let reports = cluster.reports();
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert!(report.pmcs.instructions > 0, "{} never ran", report.vm);
            assert!(report.instructions_per_tick() > 0.0);
        }
        assert_eq!(cluster.history().len(), 2);
    }

    #[test]
    fn load_balance_migrates_from_overfull_to_empty_cells() {
        // All 4 VMs start on cell 0 of a 2-cell cluster: load balancing must
        // even the counts out to 2/2 within a few epochs.
        let config = ClusterConfig::new(2, SCALE)
            .with_epoch_ticks(4)
            .with_policy(ConsolidationPolicy::LoadBalance);
        let mut cluster = Cluster::new(config);
        for i in 0..4 {
            cluster
                .add_vm(
                    CellId(0),
                    VmConfig::new(format!("vm{i}")),
                    workload(SpecApp::Gcc, i as u64),
                )
                .unwrap();
        }
        assert_eq!(cluster.occupancies(), vec![4, 0]);
        cluster.run_epochs(3).unwrap();
        assert_eq!(cluster.occupancies(), vec![2, 2]);
        assert!(cluster.total_migrations() >= 2);
        let migrated: u64 = cluster.reports().iter().map(|r| r.migrations).sum();
        assert_eq!(migrated, cluster.total_migrations());
    }

    #[test]
    fn bin_pack_consolidates_onto_fewer_cells() {
        let config = ClusterConfig::new(3, SCALE)
            .with_epoch_ticks(4)
            .with_policy(ConsolidationPolicy::BinPack);
        let mut cluster = Cluster::new(config);
        // One VM per cell; the machine has 4 cores per cell, so all three
        // fit on one cell.
        for i in 0..3 {
            cluster
                .add_vm(
                    CellId(i),
                    VmConfig::new(format!("vm{i}")),
                    workload(SpecApp::Gcc, i as u64),
                )
                .unwrap();
        }
        cluster.run_epochs(3).unwrap();
        let occupancies = cluster.occupancies();
        let empty = occupancies.iter().filter(|&&n| n == 0).count();
        assert_eq!(
            empty, 2,
            "bin packing should empty two cells: {occupancies:?}"
        );
    }

    #[test]
    fn migration_charges_downtime_exactly_once_per_move() {
        let config = ClusterConfig::new(2, SCALE)
            .with_epoch_ticks(6)
            .with_policy(ConsolidationPolicy::LoadBalance)
            .with_planner(
                PlannerConfig::default()
                    .with_max_moves(1)
                    .with_downtime_ticks(2),
            );
        let mut cluster = Cluster::new(config);
        for i in 0..2 {
            cluster
                .add_vm(
                    CellId(0),
                    VmConfig::new(format!("vm{i}")),
                    workload(SpecApp::Gcc, i as u64),
                )
                .unwrap();
        }
        cluster.run_epochs(3).unwrap();
        let reports = cluster.reports();
        let moved: Vec<_> = reports.iter().filter(|r| r.migrations > 0).collect();
        assert_eq!(moved.len(), 1);
        let report = moved[0];
        assert_eq!(report.migrations, 1);
        // 3 epochs x 6 ticks, minus 2 blackout ticks for the single move.
        assert_eq!(report.cluster_ticks, 18);
        assert_eq!(report.ticks_resident, 16);
        let anchored = reports.iter().find(|r| r.migrations == 0).unwrap();
        assert_eq!(anchored.ticks_resident, 18);
    }

    #[test]
    fn migrated_vm_arrives_with_a_cold_cache() {
        let config = ClusterConfig::new(2, SCALE)
            .with_epoch_ticks(6)
            .with_policy(ConsolidationPolicy::LoadBalance)
            .with_planner(PlannerConfig::default().with_max_moves(1));
        let mut cluster = Cluster::new(config);
        let a = cluster
            .add_vm(CellId(0), VmConfig::new("a"), workload(SpecApp::Gcc, 1))
            .unwrap();
        cluster
            .add_vm(CellId(0), VmConfig::new("b"), workload(SpecApp::Gcc, 2))
            .unwrap();
        cluster.run_epoch().unwrap();
        // The balancer moved the most recent arrival (b) — a stays warm.
        let b = cluster.reports()[1].vm;
        let before = cluster.report(b).unwrap().pmcs.llc_misses;
        cluster.run_epoch().unwrap();
        let after = cluster.report(b).unwrap().pmcs.llc_misses;
        assert!(
            after > before,
            "the migrated VM re-faults its working set through a cold LLC"
        );
        let moved = cluster.report(b).unwrap();
        assert!(
            moved.flushed_lines > 0,
            "extraction must have dropped warm lines at the source"
        );
        assert_eq!(cluster.total_flushed_lines(), moved.flushed_lines);
        assert_eq!(cluster.report(a).unwrap().flushed_lines, 0);
    }

    #[test]
    fn serial_and_parallel_epochs_are_bit_identical() {
        let run = |parallel: bool| {
            let config = ClusterConfig::new(3, SCALE)
                .with_epoch_ticks(5)
                .with_policy(ConsolidationPolicy::LoadBalance)
                .with_parallel_cells(parallel);
            let mut cluster = seeded(config, 6);
            cluster.run_epochs(3).unwrap();
            (cluster.reports(), cluster.history().to_vec())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn vms_added_mid_run_get_a_correct_tick_denominator() {
        let mut cluster = seeded(ClusterConfig::new(2, SCALE).with_epoch_ticks(4), 2);
        cluster.run_epochs(2).unwrap();
        let late = cluster
            .add_vm(CellId(1), VmConfig::new("late"), workload(SpecApp::Gcc, 99))
            .unwrap();
        cluster.run_epochs(1).unwrap();
        let report = cluster.report(late).unwrap();
        assert_eq!(
            report.cluster_ticks, 4,
            "wall-clock denominator starts at arrival, not cluster birth"
        );
        assert_eq!(report.ticks_resident, 4);
        assert!(report.instructions_per_tick() > 0.0);
        let early = &cluster.reports()[0];
        assert_eq!(early.cluster_ticks, 12);
    }

    #[test]
    fn snapshot_is_stable_and_pure() {
        let mut cluster = seeded(ClusterConfig::new(2, SCALE).with_epoch_ticks(4), 4);
        cluster.run_epoch().unwrap();
        let a = cluster.snapshot();
        let b = cluster.snapshot();
        assert_eq!(a, b, "snapshot() must not mutate bookkeeping");
        assert_eq!(a.total_vms(), 4);
        for cell in &a.cells {
            for vm in &cell.vms {
                assert!(
                    vm.resident_lines > 0,
                    "{} ran an epoch and must own warm lines",
                    vm.vm
                );
            }
        }
    }

    #[test]
    fn draining_cells_are_evacuated_and_rejoin() {
        use crate::events::FleetEvent;
        let config = ClusterConfig::new(2, SCALE)
            .with_epoch_ticks(4)
            .with_policy(ConsolidationPolicy::LoadBalance);
        let mut cluster = seeded(config, 2);
        assert_eq!(cluster.occupancies(), vec![1, 1]);
        let mut spawn =
            |_: u64| -> (VmConfig, Box<dyn Workload>) { unreachable!("no arrivals scheduled") };
        cluster
            .run_epoch_with_events(&[FleetEvent::CellDrain(CellId(0))], &mut spawn)
            .unwrap();
        assert!(cluster.is_draining(CellId(0)));
        assert_eq!(
            cluster.history().last().unwrap().events.drains,
            1,
            "the drain is counted"
        );
        // The boundary after the drained epoch plans the evacuation; one
        // more epoch materialises it.
        cluster.run_epoch_with_events(&[], &mut spawn).unwrap();
        assert_eq!(cluster.occupancies(), vec![0, 2], "cell 0 evacuated");
        // Rejoin: load balancing spreads the fleet back out.
        cluster
            .run_epoch_with_events(&[FleetEvent::CellJoin(CellId(0))], &mut spawn)
            .unwrap();
        assert!(!cluster.is_draining(CellId(0)));
        cluster.run_epoch_with_events(&[], &mut spawn).unwrap();
        assert_eq!(cluster.occupancies(), vec![1, 1], "cell 0 repopulated");
    }

    #[test]
    fn departures_archive_final_reports() {
        let mut cluster = seeded(ClusterConfig::new(2, SCALE).with_epoch_ticks(4), 4);
        cluster.run_epoch().unwrap();
        let mut spawn =
            |_: u64| -> (VmConfig, Box<dyn Workload>) { unreachable!("no arrivals scheduled") };
        use crate::events::FleetEvent;
        cluster
            .run_epoch_with_events(&[FleetEvent::VmDeparture { pick: 1 }], &mut spawn)
            .unwrap();
        assert_eq!(cluster.total_departures(), 1);
        assert_eq!(cluster.reports().len(), 3);
        let departed = cluster.departed_reports();
        assert_eq!(departed.len(), 1);
        // pick % 4 = 1 selects the second VM in fleet-id order.
        assert_eq!(departed[0].vm, FleetVmId(2));
        assert!(departed[0].pmcs.instructions > 0);
        assert_eq!(
            departed[0].cluster_ticks, 4,
            "the departed denominator freezes at the departure boundary"
        );
        assert_eq!(cluster.all_reports().len(), 4, "archive + live");
        // The departed VM's cache lines are gone from its source cell
        // (fleet VM 2 was the second add: cell 1, local id 1).
        let machine = cluster.cells()[1].hypervisor().engine().machine();
        let total: u64 = (0..machine.num_sockets())
            .map(|s| machine.llc_occupancy_of(SocketId(s), 1))
            .sum();
        assert_eq!(total, 0, "extraction flushed the departed VM");
    }

    #[test]
    fn arrivals_land_on_the_emptiest_open_cell_or_are_rejected() {
        use crate::events::FleetEvent;
        let config = ClusterConfig::new(2, SCALE).with_epoch_ticks(4);
        let mut cluster = seeded(config, 3); // cell0: 2 VMs, cell1: 1 VM
        let mut spawned = 0u64;
        let mut spawn = |index: u64| -> (VmConfig, Box<dyn Workload>) {
            spawned += 1;
            (
                VmConfig::new(format!("arrival{index}")),
                workload(SpecApp::Gcc, 0xa0 + index),
            )
        };
        cluster
            .run_epoch_with_events(&[FleetEvent::VmArrival], &mut spawn)
            .unwrap();
        assert_eq!(cluster.total_arrivals(), 1);
        assert_eq!(
            cluster.occupancies(),
            vec![2, 2],
            "the arrival picked the emptier cell"
        );
        // Drain both cells: the next arrival has nowhere to go.
        cluster
            .run_epoch_with_events(
                &[
                    FleetEvent::CellDrain(CellId(0)),
                    FleetEvent::CellDrain(CellId(1)),
                    FleetEvent::VmArrival,
                ],
                &mut spawn,
            )
            .unwrap();
        assert_eq!(cluster.rejected_arrivals(), 1);
        assert_eq!(cluster.total_arrivals(), 1, "no admission while draining");
        assert_eq!(spawned, 2, "the spawner still consumed the index");
    }
}
