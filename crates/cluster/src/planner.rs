//! The migration planner: pure, deterministic consolidation decisions.
//!
//! At every epoch boundary the cluster hands the planner a
//! [`ClusterSnapshot`] and gets back a [`MigrationPlan`] — a list of VM
//! moves. The planner is a pure function of the snapshot: identical
//! snapshots produce identical plans (a property test pins this), no plan
//! ever moves the same VM twice, and no move pushes a destination cell past
//! its core capacity (the no-overcommit rule).
//!
//! Three consolidation policies are provided:
//!
//! * [`ConsolidationPolicy::LoadBalance`] — equalise VM counts across cells,
//!   the classic "spread" strategy of schedulers that ignore cache
//!   behaviour;
//! * [`ConsolidationPolicy::BinPack`] — consolidate VMs onto as few cells as
//!   possible (the provider's cost-saving strategy), draining lightly
//!   loaded cells into fuller ones;
//! * [`ConsolidationPolicy::PollutionAware`] — the Kyoto-native strategy:
//!   use per-VM PMC/punishment data to co-locate LLC polluters with each
//!   other on dedicated cells, away from cache-sensitive VMs.

use crate::snapshot::{CellId, CellSnapshot, ClusterSnapshot, FleetVmId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the cluster re-places VMs at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsolidationPolicy {
    /// Equalise VM counts across cells.
    LoadBalance,
    /// Consolidate VMs onto as few cells as possible.
    BinPack,
    /// Co-locate polluters away from sensitive VMs, using measured
    /// pollution rates and Kyoto punishment counts.
    PollutionAware,
}

impl ConsolidationPolicy {
    /// Every policy, in display order.
    pub const ALL: [ConsolidationPolicy; 3] = [
        ConsolidationPolicy::LoadBalance,
        ConsolidationPolicy::BinPack,
        ConsolidationPolicy::PollutionAware,
    ];

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ConsolidationPolicy::LoadBalance => "load-balance",
            ConsolidationPolicy::BinPack => "bin-pack",
            ConsolidationPolicy::PollutionAware => "pollution-aware",
        }
    }
}

/// One VM live migration: `vm` leaves `from` and arrives on `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationMove {
    /// The VM to migrate.
    pub vm: FleetVmId,
    /// Source cell.
    pub from: CellId,
    /// Destination cell.
    pub to: CellId,
}

/// The cost a single live migration inflicts on the migrated VM.
///
/// Two components, mirroring what real live migration costs a guest:
///
/// * **Downtime** — the stop-and-copy blackout. The VM runs on *neither*
///   cell for [`MigrationCostModel::downtime_ticks`] scheduler ticks at the
///   start of the arrival epoch.
/// * **Cold cache on arrival** — nothing of the VM's cache footprint
///   travels. The source cell flushes the VM's lines on extraction and the
///   destination LLC knows nothing about it, so the post-arrival warm-up
///   penalty *emerges* from the cache simulation itself rather than being
///   charged as a constant. [`MigrationCostModel::cold_lines`] estimates how
///   many lines must be re-fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationCostModel {
    /// Scheduler ticks the VM runs nowhere after a move.
    pub downtime_ticks: u64,
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        // One 10 ms tick of blackout — in the ballpark of the sub-100 ms
        // downtimes live migration achieves on a local network.
        MigrationCostModel { downtime_ticks: 1 }
    }
}

impl MigrationCostModel {
    /// Downtime expressed in core cycles (what the VM loses outright).
    pub fn downtime_cycles(&self, freq_khz: u64, tick_ms: u64) -> u64 {
        self.downtime_ticks * freq_khz * tick_ms
    }

    /// Cache lines the VM must re-fetch at the destination (its whole
    /// working set arrives cold).
    pub fn cold_lines(&self, working_set_bytes: u64, line_bytes: u64) -> u64 {
        working_set_bytes.div_ceil(line_bytes.max(1))
    }
}

/// A batch of migrations for one epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The moves, in application order.
    pub moves: Vec<MigrationMove>,
}

impl MigrationPlan {
    /// Whether the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of planned moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Total blackout the plan inflicts, in ticks (one downtime window per
    /// migrated VM).
    pub fn total_downtime_ticks(&self, cost: &MigrationCostModel) -> u64 {
        self.moves.len() as u64 * cost.downtime_ticks
    }

    /// Checks the plan against the snapshot it was derived from: every move
    /// must reference a resident VM at its actual cell, no VM may move
    /// twice, no move may target its own source, and applying the moves in
    /// order must never push a cell past its core capacity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn validate(&self, snapshot: &ClusterSnapshot) -> Result<(), String> {
        let mut occupancy: Vec<usize> =
            snapshot.cells.iter().map(CellSnapshot::occupancy).collect();
        let cores: Vec<usize> = snapshot.cells.iter().map(|c| c.cores).collect();
        let mut moved = BTreeSet::new();
        for mv in &self.moves {
            if mv.from == mv.to {
                return Err(format!("{} moves to its own cell {}", mv.vm, mv.to));
            }
            let Some((cell, _)) = snapshot.find(mv.vm) else {
                return Err(format!("{} is not resident anywhere", mv.vm));
            };
            if cell.cell != mv.from {
                return Err(format!(
                    "{} is on {} but the plan moves it from {}",
                    mv.vm, cell.cell, mv.from
                ));
            }
            if !moved.insert(mv.vm) {
                return Err(format!("{} is moved twice", mv.vm));
            }
            let (from, to) = (mv.from.0, mv.to.0);
            if to >= occupancy.len() {
                return Err(format!("{} does not exist", mv.to));
            }
            if occupancy[to] + 1 > cores[to] {
                return Err(format!(
                    "{} would overcommit {} ({} VMs on {} cores)",
                    mv.vm,
                    mv.to,
                    occupancy[to] + 1,
                    cores[to]
                ));
            }
            occupancy[from] -= 1;
            occupancy[to] += 1;
        }
        Ok(())
    }
}

/// Static planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Maximum migrations per epoch boundary (models the migration
    /// bandwidth of the fleet's network).
    pub max_moves_per_epoch: usize,
    /// Pollution rate (LLC misses per CPU-millisecond) at or above which a
    /// VM counts as a polluter, independently of punishments. The default
    /// is infinite, i.e. classification is purely permit-driven: a VM is a
    /// polluter only when the Kyoto scheduler punished it during the epoch.
    pub polluter_threshold: f64,
    /// The migration cost model (consumed by the cluster when applying a
    /// plan).
    pub cost: MigrationCostModel,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_moves_per_epoch: 4,
            polluter_threshold: f64::INFINITY,
            cost: MigrationCostModel::default(),
        }
    }
}

impl PlannerConfig {
    /// Sets the per-epoch migration budget.
    pub fn with_max_moves(mut self, max_moves: usize) -> Self {
        self.max_moves_per_epoch = max_moves;
        self
    }

    /// Sets the polluter classification threshold (misses per CPU-ms).
    pub fn with_polluter_threshold(mut self, threshold: f64) -> Self {
        self.polluter_threshold = threshold.max(0.0);
        self
    }

    /// Sets the migration downtime in ticks.
    pub fn with_downtime_ticks(mut self, ticks: u64) -> Self {
        self.cost.downtime_ticks = ticks;
        self
    }
}

/// Mutable planning state: the snapshot's occupancy with planned moves
/// virtually applied, so capacity checks see the plan so far.
struct PlanState {
    cores: Vec<usize>,
    /// Resident VM ids per cell, updated as moves are planned. Order within
    /// a cell: snapshot order, with planned arrivals appended.
    residents: Vec<Vec<FleetVmId>>,
    moved: BTreeSet<FleetVmId>,
    moves: Vec<MigrationMove>,
    budget: usize,
}

impl PlanState {
    fn new(snapshot: &ClusterSnapshot, budget: usize) -> Self {
        PlanState {
            cores: snapshot.cells.iter().map(|c| c.cores).collect(),
            residents: snapshot
                .cells
                .iter()
                .map(|c| c.vms.iter().map(|vm| vm.vm).collect())
                .collect(),
            moved: BTreeSet::new(),
            moves: Vec::new(),
            budget,
        }
    }

    fn occupancy(&self, cell: usize) -> usize {
        self.residents[cell].len()
    }

    fn has_capacity(&self, cell: usize) -> bool {
        self.occupancy(cell) < self.cores[cell]
    }

    fn exhausted(&self) -> bool {
        self.moves.len() >= self.budget
    }

    /// Plans one move. Returns false (and plans nothing) when the budget is
    /// exhausted, the VM already moved, or the destination is full.
    fn push(&mut self, vm: FleetVmId, from: usize, to: usize) -> bool {
        if self.exhausted() || from == to || self.moved.contains(&vm) || !self.has_capacity(to) {
            return false;
        }
        let Some(pos) = self.residents[from].iter().position(|&v| v == vm) else {
            return false;
        };
        self.residents[from].remove(pos);
        self.residents[to].push(vm);
        self.moved.insert(vm);
        self.moves.push(MigrationMove {
            vm,
            from: CellId(from),
            to: CellId(to),
        });
        true
    }

    fn into_plan(self) -> MigrationPlan {
        MigrationPlan { moves: self.moves }
    }
}

/// The deterministic migration planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlanner {
    config: PlannerConfig,
}

impl MigrationPlanner {
    /// Creates a planner.
    pub fn new(config: PlannerConfig) -> Self {
        MigrationPlanner { config }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// Computes the migration plan for `snapshot` under `policy`.
    ///
    /// Pure: two calls with equal arguments return equal plans. The result
    /// always passes [`MigrationPlan::validate`] against `snapshot`.
    pub fn plan(&self, snapshot: &ClusterSnapshot, policy: ConsolidationPolicy) -> MigrationPlan {
        if snapshot.cells.len() < 2 {
            return MigrationPlan::default();
        }
        let mut state = PlanState::new(snapshot, self.config.max_moves_per_epoch);
        match policy {
            ConsolidationPolicy::LoadBalance => self.plan_load_balance(&mut state),
            ConsolidationPolicy::BinPack => self.plan_bin_pack(&mut state),
            ConsolidationPolicy::PollutionAware => self.plan_pollution_aware(snapshot, &mut state),
        }
        state.into_plan()
    }

    /// Repeatedly moves a VM from the fullest cell to the emptiest until the
    /// counts differ by at most one (or a budget/capacity limit bites). The
    /// most recently arrived VM of the full cell moves first, which keeps
    /// long-resident VMs (and their warm caches) anchored.
    fn plan_load_balance(&self, state: &mut PlanState) {
        loop {
            if state.exhausted() {
                break;
            }
            let cells = state.cores.len();
            let src = (0..cells)
                .max_by_key(|&c| (state.occupancy(c), std::cmp::Reverse(c)))
                .expect("at least one cell");
            let dst = (0..cells)
                .min_by_key(|&c| (state.occupancy(c), c))
                .expect("at least one cell");
            if state.occupancy(src) <= state.occupancy(dst) + 1 || !state.has_capacity(dst) {
                break;
            }
            let Some(&vm) = state.residents[src]
                .iter()
                .rev()
                .find(|vm| !state.moved.contains(vm))
            else {
                break;
            };
            if !state.push(vm, src, dst) {
                break;
            }
        }
    }

    /// Keeps the fullest cells (enough of them to hold every VM) and drains
    /// everyone else into their free cores, emptiest donor first — the
    /// consolidation move that lets a provider power cells down.
    fn plan_bin_pack(&self, state: &mut PlanState) {
        let cells = state.cores.len();
        let total: usize = (0..cells).map(|c| state.occupancy(c)).sum();
        // Cells to keep: fullest first (ties toward low ids), until their
        // combined capacity covers the fleet.
        let mut by_occupancy: Vec<usize> = (0..cells).collect();
        by_occupancy.sort_by_key(|&c| (std::cmp::Reverse(state.occupancy(c)), c));
        let mut kept: BTreeSet<usize> = BTreeSet::new();
        let mut capacity = 0usize;
        for &c in &by_occupancy {
            if capacity >= total {
                break;
            }
            kept.insert(c);
            capacity += state.cores[c];
        }
        // Drain donors, emptiest first (ties toward high ids, so low ids
        // persist), each VM to the fullest kept cell with room.
        let mut donors: Vec<usize> = (0..cells).filter(|c| !kept.contains(c)).collect();
        donors.sort_by_key(|&c| (state.occupancy(c), std::cmp::Reverse(c)));
        for src in donors {
            let vms: Vec<FleetVmId> = state.residents[src].clone();
            for vm in vms {
                let Some(&dst) = kept
                    .iter()
                    .filter(|&&c| state.has_capacity(c))
                    .max_by_key(|&&c| (state.occupancy(c), std::cmp::Reverse(c)))
                else {
                    return;
                };
                if !state.push(vm, src, dst) {
                    return;
                }
            }
        }
    }

    /// Separates polluters from sensitive VMs using the epoch's measured
    /// PMC/punishment data: designate enough "sin bin" cells to hold every
    /// polluter (preferring cells that already host the most polluters),
    /// evacuate sensitive VMs from those cells, then pull stray polluters
    /// in. Converges over a few epochs when the per-epoch migration budget
    /// is smaller than the required shuffle.
    fn plan_pollution_aware(&self, snapshot: &ClusterSnapshot, state: &mut PlanState) {
        let threshold = self.config.polluter_threshold;
        let is_polluter =
            |vm: &crate::snapshot::VmSnapshot| vm.punishments > 0 || vm.pollution_rate >= threshold;
        // (vm, cell, rate) of every polluter, worst first.
        let mut polluters: Vec<(FleetVmId, usize, f64)> = Vec::new();
        let mut polluters_on: Vec<usize> = vec![0; snapshot.cells.len()];
        for cell in &snapshot.cells {
            for vm in &cell.vms {
                if is_polluter(vm) {
                    polluters.push((vm.vm, cell.cell.0, vm.pollution_rate));
                    polluters_on[cell.cell.0] += 1;
                }
            }
        }
        if polluters.is_empty() {
            return;
        }
        polluters.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        // Designate sin-bin cells: most polluters first, ties toward high
        // ids (the bin gravitates to the end of the fleet), until their
        // capacity covers every polluter.
        let cells = snapshot.cells.len();
        let mut by_polluters: Vec<usize> = (0..cells).collect();
        by_polluters.sort_by_key(|&c| (std::cmp::Reverse(polluters_on[c]), std::cmp::Reverse(c)));
        let mut bins: Vec<usize> = Vec::new();
        let mut capacity = 0usize;
        for &c in &by_polluters {
            if capacity >= polluters.len() {
                break;
            }
            bins.push(c);
            capacity += state.cores[c];
        }
        if bins.len() == cells {
            // Every cell would be a sin bin: separation is impossible.
            return;
        }
        let bin_set: BTreeSet<usize> = bins.iter().copied().collect();
        // Phase 1: evacuate sensitive VMs from the bins (fleet-id order) to
        // the clean cell with the most free cores.
        for &bin in &bins {
            let sensitive: Vec<FleetVmId> = snapshot.cells[bin]
                .vms
                .iter()
                .filter(|vm| !is_polluter(vm))
                .map(|vm| vm.vm)
                .collect();
            for vm in sensitive {
                let Some(dst) = (0..cells)
                    .filter(|c| !bin_set.contains(c) && state.has_capacity(*c))
                    .max_by_key(|&c| (state.cores[c] - state.occupancy(c), std::cmp::Reverse(c)))
                else {
                    break;
                };
                if !state.push(vm, bin, dst) {
                    return;
                }
            }
        }
        // Phase 2: pull stray polluters into the bins, worst polluter first.
        for &(vm, cell, _) in &polluters {
            if bin_set.contains(&cell) {
                continue;
            }
            let Some(&dst) = bins.iter().find(|&&b| state.has_capacity(b)) else {
                break;
            };
            if !state.push(vm, cell, dst) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::VmSnapshot;

    fn vm(id: u32, pollution: f64, punishments: u64) -> VmSnapshot {
        VmSnapshot {
            vm: FleetVmId(id),
            name: format!("fvm{id}"),
            pollution_rate: pollution,
            punishments,
            instructions: 1000,
            llc_misses: 100,
            ipc: 1.0,
            working_set_bytes: 64 * 1024,
        }
    }

    fn snapshot(cells: Vec<(usize, Vec<VmSnapshot>)>) -> ClusterSnapshot {
        ClusterSnapshot {
            epoch: 0,
            cells: cells
                .into_iter()
                .enumerate()
                .map(|(i, (cores, vms))| CellSnapshot {
                    cell: CellId(i),
                    cores,
                    vms,
                })
                .collect(),
        }
    }

    fn planner() -> MigrationPlanner {
        MigrationPlanner::new(PlannerConfig::default().with_max_moves(16))
    }

    #[test]
    fn load_balance_equalises_counts() {
        let snap = snapshot(vec![
            (
                4,
                vec![vm(1, 0.0, 0), vm(2, 0.0, 0), vm(3, 0.0, 0), vm(4, 0.0, 0)],
            ),
            (4, vec![]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(plan.moves.iter().all(|m| m.to == CellId(1)));
        // Most recently arrived VMs move first.
        assert_eq!(plan.moves[0].vm, FleetVmId(4));
        assert_eq!(plan.moves[1].vm, FleetVmId(3));
    }

    #[test]
    fn bin_pack_drains_the_emptiest_cells() {
        let snap = snapshot(vec![
            (4, vec![vm(1, 0.0, 0), vm(2, 0.0, 0), vm(3, 0.0, 0)]),
            (4, vec![vm(4, 0.0, 0)]),
            (4, vec![vm(5, 0.0, 0), vm(6, 0.0, 0)]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::BinPack);
        plan.validate(&snap).unwrap();
        // 6 VMs fit on two 4-core cells: cell 1 (the emptiest donor) drains.
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan.moves[0],
            MigrationMove {
                vm: FleetVmId(4),
                from: CellId(1),
                to: CellId(0),
            }
        );
    }

    #[test]
    fn bin_pack_does_nothing_when_already_packed() {
        let snap = snapshot(vec![
            (2, vec![vm(1, 0.0, 0), vm(2, 0.0, 0)]),
            (2, vec![vm(3, 0.0, 0)]),
            (2, vec![]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::BinPack);
        plan.validate(&snap).unwrap();
        assert!(plan.is_empty(), "3 VMs need two 2-core cells: {:?}", plan);
    }

    #[test]
    fn pollution_aware_separates_polluters_from_sensitive_vms() {
        // Polluters (punished or above threshold) spread across both cells;
        // the plan must gather them on one cell and the sensitive VMs on the
        // other.
        let snap = snapshot(vec![
            (4, vec![vm(1, 900.0, 3), vm(2, 10.0, 0)]),
            (4, vec![vm(3, 800.0, 2), vm(4, 5.0, 0)]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::PollutionAware);
        plan.validate(&snap).unwrap();
        // Apply the plan and check the separation.
        let mut location: Vec<(u32, usize)> = vec![(1, 0), (2, 0), (3, 1), (4, 1)];
        for mv in &plan.moves {
            let entry = location
                .iter_mut()
                .find(|(id, _)| *id == mv.vm.0)
                .expect("known VM");
            entry.1 = mv.to.0;
        }
        let cell_of = |id: u32| location.iter().find(|(v, _)| *v == id).unwrap().1;
        assert_eq!(cell_of(1), cell_of(3), "polluters co-located");
        assert_eq!(cell_of(2), cell_of(4), "sensitive VMs co-located");
        assert_ne!(cell_of(1), cell_of(2), "groups separated");
    }

    #[test]
    fn pollution_aware_uses_the_rate_threshold_without_punishments() {
        let snap = snapshot(vec![
            (4, vec![vm(1, 900.0, 0), vm(2, 10.0, 0)]),
            (4, vec![vm(3, 800.0, 0), vm(4, 5.0, 0)]),
        ]);
        let quiet = planner().plan(&snap, ConsolidationPolicy::PollutionAware);
        assert!(
            quiet.is_empty(),
            "no punishments and an infinite threshold: nobody is a polluter"
        );
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(16)
                .with_polluter_threshold(500.0),
        );
        let plan = planner.plan(&snap, ConsolidationPolicy::PollutionAware);
        plan.validate(&snap).unwrap();
        assert!(!plan.is_empty(), "threshold classification must kick in");
    }

    #[test]
    fn move_budget_is_respected() {
        let snap = snapshot(vec![
            (8, (1..=8).map(|i| vm(i, 0.0, 0)).collect()),
            (8, vec![]),
        ]);
        let planner = MigrationPlanner::new(PlannerConfig::default().with_max_moves(2));
        let plan = planner.plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn full_destinations_are_never_overcommitted() {
        let snap = snapshot(vec![
            (2, vec![vm(1, 0.0, 0), vm(2, 0.0, 0)]),
            // Cell 1 is at capacity: nothing may move there, and balancing
            // toward cell 2 is the only option.
            (1, vec![vm(3, 0.0, 0)]),
            (1, vec![]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        for mv in &plan.moves {
            assert_ne!(mv.to, CellId(1));
        }
    }

    #[test]
    fn single_cell_clusters_never_migrate() {
        let snap = snapshot(vec![(4, vec![vm(1, 1000.0, 5), vm(2, 1.0, 0)])]);
        for policy in ConsolidationPolicy::ALL {
            assert!(planner().plan(&snap, policy).is_empty());
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let snap = snapshot(vec![(2, vec![vm(1, 0.0, 0)]), (1, vec![vm(2, 0.0, 0)])]);
        let self_move = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(1),
                from: CellId(0),
                to: CellId(0),
            }],
        };
        assert!(self_move.validate(&snap).is_err());
        let ghost = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(9),
                from: CellId(0),
                to: CellId(1),
            }],
        };
        assert!(ghost.validate(&snap).is_err());
        let overcommit = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(1),
                from: CellId(0),
                to: CellId(1),
            }],
        };
        assert!(overcommit.validate(&snap).is_err(), "cell 1 is full");
    }

    #[test]
    fn cost_model_arithmetic() {
        let cost = MigrationCostModel { downtime_ticks: 3 };
        assert_eq!(cost.downtime_cycles(1000, 10), 30_000);
        assert_eq!(cost.cold_lines(130, 64), 3);
        let plan = MigrationPlan {
            moves: vec![
                MigrationMove {
                    vm: FleetVmId(1),
                    from: CellId(0),
                    to: CellId(1),
                },
                MigrationMove {
                    vm: FleetVmId(2),
                    from: CellId(0),
                    to: CellId(1),
                },
            ],
        };
        assert_eq!(plan.total_downtime_ticks(&cost), 6);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ConsolidationPolicy::LoadBalance.label(), "load-balance");
        assert_eq!(ConsolidationPolicy::BinPack.label(), "bin-pack");
        assert_eq!(
            ConsolidationPolicy::PollutionAware.label(),
            "pollution-aware"
        );
        assert_eq!(ConsolidationPolicy::ALL.len(), 3);
    }
}
