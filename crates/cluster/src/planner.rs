//! The migration planner: pure, deterministic consolidation decisions.
//!
//! At every epoch boundary the cluster hands the planner a
//! [`ClusterSnapshot`] and gets back a [`MigrationPlan`] — a list of VM
//! moves. The planner is a pure function of the snapshot: identical
//! snapshots produce identical plans (a property test pins this), no plan
//! ever moves the same VM twice, and no move pushes a destination cell past
//! its core capacity (the no-overcommit rule).
//!
//! Four consolidation policies are provided:
//!
//! * [`ConsolidationPolicy::LoadBalance`] — equalise VM counts across cells,
//!   the classic "spread" strategy of schedulers that ignore cache
//!   behaviour;
//! * [`ConsolidationPolicy::BinPack`] — consolidate VMs onto as few cells as
//!   possible (the provider's cost-saving strategy), draining lightly
//!   loaded cells into fuller ones;
//! * [`ConsolidationPolicy::PollutionAware`] — the Kyoto-native strategy:
//!   use per-VM PMC/punishment data to co-locate LLC polluters with each
//!   other on dedicated cells, away from cache-sensitive VMs;
//! * [`ConsolidationPolicy::PollutionAwareDensity`] — pollution-aware with a
//!   cap on sensitive co-location, so separation keeps paying at high
//!   packing density (3+ VMs per cell), where plain separation concentrates
//!   the sensitive VMs until they contend with *each other*.
//!
//! Two planner mechanics sit across every policy:
//!
//! * **Drain evacuation** — cells marked draining in the snapshot are
//!   evacuated before any policy move is considered, and no move (policy or
//!   evacuation) ever *targets* a draining cell.
//! * **Cost awareness** ([`PlannerConfig::cost_aware`]) — instead of
//!   spending the whole fixed move budget, each candidate policy move is
//!   admitted only when its projected contention savings outweigh its cost
//!   (downtime ticks plus the cold-cache refill implied by the VM's
//!   resident line count). Evacuations are mandatory and never gated. The
//!   cost-aware plan is always a subset of the fixed-budget plan, so its
//!   total downtime can never exceed the fixed-budget planner's.

use crate::snapshot::{CellId, CellSnapshot, ClusterSnapshot, FleetVmId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the cluster re-places VMs at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsolidationPolicy {
    /// Equalise VM counts across cells.
    LoadBalance,
    /// Consolidate VMs onto as few cells as possible.
    BinPack,
    /// Co-locate polluters away from sensitive VMs, using measured
    /// pollution rates and Kyoto punishment counts.
    PollutionAware,
    /// Pollution-aware separation with a cap on how many sensitive VMs may
    /// share a clean cell ([`PlannerConfig::max_sensitive_per_cell`]). At
    /// high density plain separation piles the sensitive VMs onto few clean
    /// cells where they degrade each other; this variant spreads them and
    /// leaves the overflow mixed rather than concentrated.
    PollutionAwareDensity,
}

impl ConsolidationPolicy {
    /// Every policy, in display order.
    pub const ALL: [ConsolidationPolicy; 4] = [
        ConsolidationPolicy::LoadBalance,
        ConsolidationPolicy::BinPack,
        ConsolidationPolicy::PollutionAware,
        ConsolidationPolicy::PollutionAwareDensity,
    ];

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ConsolidationPolicy::LoadBalance => "load-balance",
            ConsolidationPolicy::BinPack => "bin-pack",
            ConsolidationPolicy::PollutionAware => "pollution-aware",
            ConsolidationPolicy::PollutionAwareDensity => "pollution-density",
        }
    }
}

/// One VM live migration: `vm` leaves `from` and arrives on `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationMove {
    /// The VM to migrate.
    pub vm: FleetVmId,
    /// Source cell.
    pub from: CellId,
    /// Destination cell.
    pub to: CellId,
}

/// The cost a single live migration inflicts on the migrated VM.
///
/// Two components, mirroring what real live migration costs a guest:
///
/// * **Downtime** — the stop-and-copy blackout. The VM runs on *neither*
///   cell for [`MigrationCostModel::downtime_ticks`] scheduler ticks at the
///   start of the arrival epoch.
/// * **Cold cache on arrival** — nothing of the VM's cache footprint
///   travels. The source cell flushes the VM's lines on extraction and the
///   destination LLC knows nothing about it, so the post-arrival warm-up
///   penalty *emerges* from the cache simulation itself rather than being
///   charged as a constant. [`MigrationCostModel::cold_lines`] estimates how
///   many lines must be re-fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationCostModel {
    /// Scheduler ticks the VM runs nowhere after a move.
    pub downtime_ticks: u64,
    /// Cold cache lines one tick's worth of memory bandwidth re-fetches at
    /// the destination — converts a VM's resident line count (what
    /// `flush_owner` drops at the source) into the refill ticks the
    /// cost-aware planner charges a candidate move.
    pub refill_lines_per_tick: u64,
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        MigrationCostModel {
            // One 10 ms tick of blackout — in the ballpark of the sub-100 ms
            // downtimes live migration achieves on a local network.
            downtime_ticks: 1,
            // A few hundred lines per tick: a scaled LLC's worth of refill
            // costs roughly one extra tick.
            refill_lines_per_tick: 512,
        }
    }
}

impl MigrationCostModel {
    /// Downtime expressed in core cycles (what the VM loses outright).
    pub fn downtime_cycles(&self, freq_khz: u64, tick_ms: u64) -> u64 {
        self.downtime_ticks * freq_khz * tick_ms
    }

    /// Cache lines the VM must re-fetch at the destination (its whole
    /// working set arrives cold).
    pub fn cold_lines(&self, working_set_bytes: u64, line_bytes: u64) -> u64 {
        working_set_bytes.div_ceil(line_bytes.max(1))
    }

    /// Projected cost of moving a VM that owns `resident_lines` warm lines
    /// at its source, in scheduler ticks: the downtime blackout plus the
    /// cold-cache refill those lines imply at the destination.
    pub fn move_cost_ticks(&self, resident_lines: u64) -> f64 {
        self.downtime_ticks as f64
            + resident_lines as f64 / self.refill_lines_per_tick.max(1) as f64
    }
}

/// A batch of migrations for one epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The moves, in application order.
    pub moves: Vec<MigrationMove>,
}

impl MigrationPlan {
    /// Whether the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of planned moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Total blackout the plan inflicts, in ticks (one downtime window per
    /// migrated VM).
    pub fn total_downtime_ticks(&self, cost: &MigrationCostModel) -> u64 {
        self.moves.len() as u64 * cost.downtime_ticks
    }

    /// Checks the plan against the snapshot it was derived from: every move
    /// must reference a resident VM at its actual cell, no VM may move
    /// twice, no move may target its own source or a draining cell, and
    /// applying the moves in order must never push a cell past its core
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn validate(&self, snapshot: &ClusterSnapshot) -> Result<(), String> {
        let mut occupancy: Vec<usize> =
            snapshot.cells.iter().map(CellSnapshot::occupancy).collect();
        let cores: Vec<usize> = snapshot.cells.iter().map(|c| c.cores).collect();
        let mut moved = BTreeSet::new();
        for mv in &self.moves {
            if mv.from == mv.to {
                return Err(format!("{} moves to its own cell {}", mv.vm, mv.to));
            }
            let Some((cell, _)) = snapshot.find(mv.vm) else {
                return Err(format!("{} is not resident anywhere", mv.vm));
            };
            if cell.cell != mv.from {
                return Err(format!(
                    "{} is on {} but the plan moves it from {}",
                    mv.vm, cell.cell, mv.from
                ));
            }
            if !moved.insert(mv.vm) {
                return Err(format!("{} is moved twice", mv.vm));
            }
            let (from, to) = (mv.from.0, mv.to.0);
            if to >= occupancy.len() {
                return Err(format!("{} does not exist", mv.to));
            }
            if snapshot.cells[to].draining {
                return Err(format!(
                    "{} is moved into {} while it is draining",
                    mv.vm, mv.to
                ));
            }
            if snapshot.cells[to].down {
                return Err(format!(
                    "{} is moved into {} while it is down",
                    mv.vm, mv.to
                ));
            }
            if occupancy[to] + 1 > cores[to] {
                return Err(format!(
                    "{} would overcommit {} ({} VMs on {} cores)",
                    mv.vm,
                    mv.to,
                    occupancy[to] + 1,
                    cores[to]
                ));
            }
            occupancy[from] -= 1;
            occupancy[to] += 1;
        }
        Ok(())
    }
}

/// Static planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Maximum migrations per epoch boundary (models the migration
    /// bandwidth of the fleet's network).
    pub max_moves_per_epoch: usize,
    /// Pollution rate (LLC misses per CPU-millisecond) at or above which a
    /// VM counts as a polluter, independently of punishments. The default
    /// is infinite, i.e. classification is purely permit-driven: a VM is a
    /// polluter only when the Kyoto scheduler punished it during the epoch.
    pub polluter_threshold: f64,
    /// The migration cost model (consumed by the cluster when applying a
    /// plan, and by the cost-aware gate when weighing one).
    pub cost: MigrationCostModel,
    /// Weigh each candidate policy move's projected contention savings
    /// against its projected cost instead of spending the whole fixed move
    /// budget. Drain evacuations are mandatory and never gated. The
    /// resulting plan is a subset of the fixed-budget plan, so enabling
    /// this can only lower total downtime.
    pub cost_aware: bool,
    /// Contention savings (summed misses-per-CPU-ms pressure relief across
    /// the two touched cells) that justify one tick of migration cost. A
    /// cost-aware move is admitted when
    /// `savings >= savings_per_tick * move_cost_ticks`.
    pub savings_per_tick: f64,
    /// Sensitive VMs allowed to share one clean cell under
    /// [`ConsolidationPolicy::PollutionAwareDensity`].
    pub max_sensitive_per_cell: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_moves_per_epoch: 4,
            polluter_threshold: f64::INFINITY,
            cost: MigrationCostModel::default(),
            cost_aware: false,
            savings_per_tick: 10.0,
            max_sensitive_per_cell: 2,
        }
    }
}

impl PlannerConfig {
    /// Sets the per-epoch migration budget.
    pub fn with_max_moves(mut self, max_moves: usize) -> Self {
        self.max_moves_per_epoch = max_moves;
        self
    }

    /// Sets the polluter classification threshold (misses per CPU-ms).
    pub fn with_polluter_threshold(mut self, threshold: f64) -> Self {
        self.polluter_threshold = threshold.max(0.0);
        self
    }

    /// Sets the migration downtime in ticks.
    pub fn with_downtime_ticks(mut self, ticks: u64) -> Self {
        self.cost.downtime_ticks = ticks;
        self
    }

    /// Enables or disables the cost-aware move gate.
    pub fn with_cost_aware(mut self, cost_aware: bool) -> Self {
        self.cost_aware = cost_aware;
        self
    }

    /// Sets the contention savings worth one tick of migration cost.
    pub fn with_savings_per_tick(mut self, savings: f64) -> Self {
        self.savings_per_tick = savings.max(0.0);
        self
    }

    /// Sets the sensitive co-location cap of the density-aware policy.
    pub fn with_max_sensitive_per_cell(mut self, cap: usize) -> Self {
        self.max_sensitive_per_cell = cap.max(1);
        self
    }
}

/// Mutable planning state: the snapshot's occupancy with planned moves
/// virtually applied, so capacity checks see the plan so far.
struct PlanState {
    cores: Vec<usize>,
    /// Draining cells: never a valid destination.
    draining: Vec<bool>,
    /// Crashed (down) cells: they host nothing and may receive nothing
    /// until they reboot.
    down: Vec<bool>,
    /// Resident VM ids per cell, updated as moves are planned. Order within
    /// a cell: snapshot order, with planned arrivals appended.
    residents: Vec<Vec<FleetVmId>>,
    moved: BTreeSet<FleetVmId>,
    moves: Vec<MigrationMove>,
    budget: usize,
}

impl PlanState {
    fn new(snapshot: &ClusterSnapshot, budget: usize) -> Self {
        PlanState {
            cores: snapshot.cells.iter().map(|c| c.cores).collect(),
            draining: snapshot.cells.iter().map(|c| c.draining).collect(),
            down: snapshot.cells.iter().map(|c| c.down).collect(),
            residents: snapshot
                .cells
                .iter()
                .map(|c| c.vms.iter().map(|vm| vm.vm).collect())
                .collect(),
            moved: BTreeSet::new(),
            moves: Vec::new(),
            budget,
        }
    }

    fn occupancy(&self, cell: usize) -> usize {
        self.residents[cell].len()
    }

    fn has_capacity(&self, cell: usize) -> bool {
        self.occupancy(cell) < self.cores[cell]
    }

    /// Whether the cell refuses all placements: draining or down.
    fn blocked(&self, cell: usize) -> bool {
        self.draining[cell] || self.down[cell]
    }

    /// Whether the cell may receive a VM: neither draining nor down, and
    /// below capacity.
    fn is_open(&self, cell: usize) -> bool {
        !self.blocked(cell) && self.has_capacity(cell)
    }

    fn free_cores(&self, cell: usize) -> usize {
        self.cores[cell].saturating_sub(self.occupancy(cell))
    }

    fn exhausted(&self) -> bool {
        self.moves.len() >= self.budget
    }

    /// Plans one move. Returns false (and plans nothing) when the budget is
    /// exhausted, the VM already moved, or the destination is full or
    /// draining.
    fn push(&mut self, vm: FleetVmId, from: usize, to: usize) -> bool {
        if self.exhausted() || from == to || self.moved.contains(&vm) || !self.is_open(to) {
            return false;
        }
        let Some(pos) = self.residents[from].iter().position(|&v| v == vm) else {
            return false;
        };
        self.residents[from].remove(pos);
        self.residents[to].push(vm);
        self.moved.insert(vm);
        self.moves.push(MigrationMove {
            vm,
            from: CellId(from),
            to: CellId(to),
        });
        true
    }

    fn into_plan(self) -> MigrationPlan {
        MigrationPlan { moves: self.moves }
    }
}

/// The deterministic migration planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlanner {
    config: PlannerConfig,
}

impl MigrationPlanner {
    /// Creates a planner.
    pub fn new(config: PlannerConfig) -> Self {
        MigrationPlanner { config }
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// Computes the migration plan for `snapshot` under `policy`.
    ///
    /// Pure: two calls with equal arguments return equal plans. The result
    /// always passes [`MigrationPlan::validate`] against `snapshot`.
    ///
    /// Draining cells are evacuated first (a mandatory pre-pass shared by
    /// every policy); policy moves follow, never targeting a draining cell.
    /// With [`PlannerConfig::cost_aware`] set, policy moves are additionally
    /// filtered through the cost gate — the result is a subset of the
    /// fixed-budget plan.
    ///
    /// # Example
    ///
    /// Four VMs piled onto cell 0 of a two-cell fleet: load balancing must
    /// move some of them to the empty cell, and the plan validates against
    /// the snapshot it came from:
    ///
    /// ```
    /// use kyoto_cluster::cluster::{Cluster, ClusterConfig};
    /// use kyoto_cluster::planner::{ConsolidationPolicy, MigrationPlanner, PlannerConfig};
    /// use kyoto_cluster::snapshot::CellId;
    /// use kyoto_hypervisor::vm::VmConfig;
    /// use kyoto_workloads::spec::{SpecApp, SpecWorkload};
    ///
    /// let mut cluster = Cluster::new(ClusterConfig::new(2, 256));
    /// for i in 0..4u64 {
    ///     cluster.add_vm(
    ///         CellId(0),
    ///         VmConfig::new(format!("vm-{i}")),
    ///         Box::new(SpecWorkload::new(SpecApp::Lbm, 256, i)),
    ///     ).unwrap();
    /// }
    /// let snapshot = cluster.snapshot();
    /// let planner = MigrationPlanner::new(PlannerConfig::default());
    /// let plan = planner.plan(&snapshot, ConsolidationPolicy::LoadBalance);
    /// assert!(!plan.moves.is_empty());
    /// assert!(plan.moves.iter().all(|m| m.to == CellId(1)));
    /// assert!(plan.validate(&snapshot).is_ok());
    /// ```
    pub fn plan(&self, snapshot: &ClusterSnapshot, policy: ConsolidationPolicy) -> MigrationPlan {
        if snapshot.cells.len() < 2 {
            return MigrationPlan::default();
        }
        let mut state = PlanState::new(snapshot, self.config.max_moves_per_epoch);
        self.plan_evacuations(snapshot, &mut state);
        let mandatory = state.moves.len();
        match policy {
            ConsolidationPolicy::LoadBalance => self.plan_load_balance(&mut state),
            ConsolidationPolicy::BinPack => self.plan_bin_pack(&mut state),
            ConsolidationPolicy::PollutionAware => {
                self.plan_pollution_aware(snapshot, &mut state, false)
            }
            ConsolidationPolicy::PollutionAwareDensity => {
                self.plan_pollution_aware(snapshot, &mut state, true)
            }
        }
        let plan = state.into_plan();
        if self.config.cost_aware {
            self.cost_filter(snapshot, plan, mandatory)
        } else {
            plan
        }
    }

    /// Mandatory pre-pass: move every VM off a draining cell onto the open
    /// cell with the most free cores (ties toward low ids). Runs before any
    /// policy move so maintenance always outranks consolidation; when the
    /// budget or open capacity runs out, the remaining VMs stay put and are
    /// evacuated at later epoch boundaries.
    fn plan_evacuations(&self, snapshot: &ClusterSnapshot, state: &mut PlanState) {
        for cell in &snapshot.cells {
            if !cell.draining {
                continue;
            }
            for vm in &cell.vms {
                if state.exhausted() {
                    return;
                }
                let Some(dst) = (0..state.cores.len())
                    .filter(|&c| state.is_open(c))
                    .max_by_key(|&c| (state.free_cores(c), std::cmp::Reverse(c)))
                else {
                    return;
                };
                state.push(vm.vm, cell.cell.0, dst);
            }
        }
    }

    /// The cost-aware gate: walks the fixed-budget plan's moves in order and
    /// keeps each one only when (a) it still fits (dropping an earlier move
    /// leaves its VM in place, which can consume a destination's room) and
    /// (b) it is mandatory (the first `mandatory` moves are drain
    /// evacuations) or its projected contention savings pay for its
    /// projected cost in ticks. Keeping a subset of the plan's moves means
    /// total downtime can only shrink.
    fn cost_filter(
        &self,
        snapshot: &ClusterSnapshot,
        plan: MigrationPlan,
        mandatory: usize,
    ) -> MigrationPlan {
        let threshold = self.config.polluter_threshold;
        let cores: Vec<usize> = snapshot.cells.iter().map(|c| c.cores).collect();
        let mut residents: Vec<Vec<VmPressure>> = snapshot
            .cells
            .iter()
            .map(|c| {
                c.vms
                    .iter()
                    .map(|vm| VmPressure {
                        vm: vm.vm,
                        rate: vm.pollution_rate,
                        weight: if is_polluter(vm, threshold) {
                            POLLUTER_PRESSURE_WEIGHT
                        } else {
                            1.0
                        },
                    })
                    .collect()
            })
            .collect();
        let lines: std::collections::BTreeMap<FleetVmId, u64> = snapshot
            .cells
            .iter()
            .flat_map(|c| c.vms.iter().map(|vm| (vm.vm, vm.resident_lines)))
            .collect();
        let mut kept = Vec::new();
        for (index, mv) in plan.moves.iter().enumerate() {
            let (from, to) = (mv.from.0, mv.to.0);
            if residents[to].len() >= cores[to] {
                continue;
            }
            let Some(pos) = residents[from].iter().position(|vm| vm.vm == mv.vm) else {
                continue;
            };
            let mover = residents[from][pos];
            if index >= mandatory {
                let cost_ticks = self
                    .config
                    .cost
                    .move_cost_ticks(lines.get(&mv.vm).copied().unwrap_or(0));
                let savings = contention_savings(&residents[from], &residents[to], mover);
                if savings < self.config.savings_per_tick * cost_ticks {
                    continue;
                }
            }
            residents[from].remove(pos);
            residents[to].push(mover);
            kept.push(*mv);
        }
        MigrationPlan { moves: kept }
    }

    /// Repeatedly moves a VM from the fullest cell to the emptiest open cell
    /// until the counts differ by at most one (or a budget/capacity limit
    /// bites). The most recently arrived VM of the full cell moves first,
    /// which keeps long-resident VMs (and their warm caches) anchored.
    fn plan_load_balance(&self, state: &mut PlanState) {
        loop {
            if state.exhausted() {
                break;
            }
            let cells = state.cores.len();
            let Some(src) = (0..cells).max_by_key(|&c| (state.occupancy(c), std::cmp::Reverse(c)))
            else {
                // Zero-cell fleet: nothing to balance.
                break;
            };
            let Some(dst) = (0..cells)
                .filter(|&c| !state.blocked(c))
                .min_by_key(|&c| (state.occupancy(c), c))
            else {
                break;
            };
            if state.occupancy(src) <= state.occupancy(dst) + 1 || !state.is_open(dst) {
                break;
            }
            let Some(&vm) = state.residents[src]
                .iter()
                .rev()
                .find(|vm| !state.moved.contains(vm))
            else {
                break;
            };
            if !state.push(vm, src, dst) {
                break;
            }
        }
    }

    /// Keeps the fullest open cells (enough of them to hold every VM) and
    /// drains everyone else into their free cores, emptiest donor first —
    /// the consolidation move that lets a provider power cells down.
    /// Draining cells are never kept: their VMs must leave anyway.
    fn plan_bin_pack(&self, state: &mut PlanState) {
        let cells = state.cores.len();
        let total: usize = (0..cells).map(|c| state.occupancy(c)).sum();
        // Cells to keep: fullest open cells first (ties toward low ids),
        // until their combined capacity covers the fleet.
        let mut by_occupancy: Vec<usize> = (0..cells).filter(|&c| !state.blocked(c)).collect();
        by_occupancy.sort_by_key(|&c| (std::cmp::Reverse(state.occupancy(c)), c));
        let mut kept: BTreeSet<usize> = BTreeSet::new();
        let mut capacity = 0usize;
        for &c in &by_occupancy {
            if capacity >= total {
                break;
            }
            kept.insert(c);
            capacity += state.cores[c];
        }
        // Drain donors, emptiest first (ties toward high ids, so low ids
        // persist), each VM to the fullest kept cell with room.
        let mut donors: Vec<usize> = (0..cells).filter(|c| !kept.contains(c)).collect();
        donors.sort_by_key(|&c| (state.occupancy(c), std::cmp::Reverse(c)));
        for src in donors {
            let vms: Vec<FleetVmId> = state.residents[src].clone();
            for vm in vms {
                let Some(&dst) = kept
                    .iter()
                    .filter(|&&c| state.has_capacity(c))
                    .max_by_key(|&&c| (state.occupancy(c), std::cmp::Reverse(c)))
                else {
                    return;
                };
                if !state.push(vm, src, dst) {
                    return;
                }
            }
        }
    }

    /// Separates polluters from sensitive VMs using the epoch's measured
    /// PMC/punishment data: designate enough open "sin bin" cells to hold
    /// every polluter (preferring cells that already host the most
    /// polluters), evacuate sensitive VMs from those cells, then pull stray
    /// polluters in. Converges over a few epochs when the per-epoch
    /// migration budget is smaller than the required shuffle.
    ///
    /// With `density` set (the [`ConsolidationPolicy::PollutionAwareDensity`]
    /// policy), sensitive VMs are *spread* across the clean cells — each
    /// taking at most [`PlannerConfig::max_sensitive_per_cell`] of them —
    /// and over-cap concentrations are rebalanced; sensitive VMs that no
    /// clean cell can take under the cap stay mixed where they are instead
    /// of being piled onto a shared clean cell.
    fn plan_pollution_aware(
        &self,
        snapshot: &ClusterSnapshot,
        state: &mut PlanState,
        density: bool,
    ) {
        let threshold = self.config.polluter_threshold;
        // Classification and rates come from the snapshot; locations come
        // from `state`, which may already hold drain evacuations.
        let mut polluter_set: BTreeSet<FleetVmId> = BTreeSet::new();
        for cell in &snapshot.cells {
            for vm in &cell.vms {
                if is_polluter(vm, threshold) {
                    polluter_set.insert(vm.vm);
                }
            }
        }
        if polluter_set.is_empty() {
            return;
        }
        // Worst polluters first (rate desc, id asc).
        let mut polluters: Vec<(FleetVmId, f64)> = snapshot
            .cells
            .iter()
            .flat_map(|c| c.vms.iter())
            .filter(|vm| polluter_set.contains(&vm.vm))
            .map(|vm| (vm.vm, vm.pollution_rate))
            .collect();
        polluters.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let cells = state.cores.len();
        let polluters_on = |state: &PlanState, c: usize| {
            state.residents[c]
                .iter()
                .filter(|vm| polluter_set.contains(vm))
                .count()
        };
        let sensitive_on = |state: &PlanState, c: usize| {
            state.residents[c]
                .iter()
                .filter(|vm| !polluter_set.contains(vm))
                .count()
        };
        // Designate sin-bin cells among the open cells: most polluters
        // first, ties toward high ids (the bin gravitates to the end of the
        // fleet), until their capacity covers every polluter.
        let mut by_polluters: Vec<usize> = (0..cells).filter(|&c| !state.blocked(c)).collect();
        by_polluters.sort_by_key(|&c| {
            (
                std::cmp::Reverse(polluters_on(state, c)),
                std::cmp::Reverse(c),
            )
        });
        let mut bins: Vec<usize> = Vec::new();
        let mut capacity = 0usize;
        for &c in &by_polluters {
            if capacity >= polluters.len() {
                break;
            }
            bins.push(c);
            capacity += state.cores[c];
        }
        if bins.len() >= by_polluters.len() {
            // Every open cell would be a sin bin: separation is impossible.
            return;
        }
        let bin_set: BTreeSet<usize> = bins.iter().copied().collect();
        let cap = if density {
            self.config.max_sensitive_per_cell.max(1)
        } else {
            usize::MAX
        };
        let is_clean = |state: &PlanState, c: usize| !bin_set.contains(&c) && !state.blocked(c);
        // Destination for a sensitive VM: under the density cap the clean
        // cell with the fewest sensitive VMs (then most free cores, then
        // low id); otherwise the clean cell with the most free cores (low
        // id ties).
        let sensitive_dst = |state: &PlanState| {
            (0..cells)
                .filter(|&c| {
                    is_clean(state, c) && state.has_capacity(c) && sensitive_on(state, c) < cap
                })
                .min_by_key(|&c| {
                    (
                        if density { sensitive_on(state, c) } else { 0 },
                        std::cmp::Reverse(state.free_cores(c)),
                        c,
                    )
                })
        };
        // Phase 1: evacuate sensitive VMs from the bins (resident order).
        for &bin in &bins {
            let sensitive: Vec<FleetVmId> = state.residents[bin]
                .iter()
                .copied()
                .filter(|vm| !polluter_set.contains(vm))
                .collect();
            for vm in sensitive {
                if state.exhausted() {
                    return;
                }
                let Some(dst) = sensitive_dst(state) else {
                    break;
                };
                state.push(vm, bin, dst);
            }
        }
        // Phase 2: pull stray polluters into the bins, worst polluter first.
        for &(vm, _) in &polluters {
            if state.exhausted() {
                return;
            }
            let Some(src) = (0..cells).find(|&c| state.residents[c].contains(&vm)) else {
                continue;
            };
            if bin_set.contains(&src) {
                continue;
            }
            let Some(&dst) = bins.iter().find(|&&b| state.has_capacity(b)) else {
                break;
            };
            state.push(vm, src, dst);
        }
        // Phase 3 (density only): spread over-cap sensitive concentrations
        // across the clean cells, most recent arrival first.
        if density {
            loop {
                if state.exhausted() {
                    return;
                }
                let Some(src) = (0..cells)
                    .filter(|&c| is_clean(state, c) && sensitive_on(state, c) > cap)
                    .max_by_key(|&c| (sensitive_on(state, c), std::cmp::Reverse(c)))
                else {
                    break;
                };
                let Some(dst) = (0..cells)
                    .filter(|&c| {
                        c != src
                            && is_clean(state, c)
                            && state.has_capacity(c)
                            && sensitive_on(state, c) < cap
                    })
                    .min_by_key(|&c| {
                        (
                            sensitive_on(state, c),
                            std::cmp::Reverse(state.free_cores(c)),
                            c,
                        )
                    })
                else {
                    break;
                };
                let Some(&vm) = state.residents[src]
                    .iter()
                    .rev()
                    .find(|vm| !polluter_set.contains(vm) && !state.moved.contains(vm))
                else {
                    break;
                };
                if !state.push(vm, src, dst) {
                    break;
                }
            }
        }
    }
}

/// Whether a VM counts as a polluter under the planner's classification:
/// punished by the Kyoto scheduler during the epoch, or estimated above the
/// configured pollution-rate threshold. Shared by the pollution-aware
/// policies and the cost gate so both always price with the same polluter
/// definition.
fn is_polluter(vm: &crate::snapshot::VmSnapshot, threshold: f64) -> bool {
    vm.punishments > 0 || vm.pollution_rate >= threshold
}

/// How much a polluter's own suffered pressure counts in the contention
/// model, relative to a sensitive VM's. Polluters are streaming,
/// cache-insensitive workloads: extra misses barely slow them, so pressure
/// inflicted *on* them is mostly free — which is exactly why sin-binning
/// pays even though it concentrates pollution.
const POLLUTER_PRESSURE_WEIGHT: f64 = 0.25;

/// One VM in the cost gate's pressure model.
#[derive(Debug, Clone, Copy)]
struct VmPressure {
    vm: FleetVmId,
    /// Pollution the VM inflicts on co-residents (misses per CPU-ms).
    rate: f64,
    /// How much pressure suffered by this VM counts (1.0 for sensitive
    /// VMs, [`POLLUTER_PRESSURE_WEIGHT`] for polluters).
    weight: f64,
}

/// Weighted contention pressure inside one cell: every VM suffers the
/// summed pollution rates of its co-residents, scaled by its own
/// sensitivity weight. The cost-aware gate scores a candidate move by how
/// much this quantity drops across the two touched cells.
fn cell_contention(vms: &[VmPressure]) -> f64 {
    if vms.len() < 2 {
        return 0.0;
    }
    let total: f64 = vms.iter().map(|vm| vm.rate).sum();
    vms.iter().map(|vm| vm.weight * (total - vm.rate)).sum()
}

/// Projected contention savings of moving `mover` from `src` to `dst` (both
/// in their pre-move state). Positive when the move relieves more weighted
/// pressure at the source than it adds at the destination.
fn contention_savings(src: &[VmPressure], dst: &[VmPressure], mover: VmPressure) -> f64 {
    let before = cell_contention(src) + cell_contention(dst);
    let src_after: Vec<VmPressure> = src.iter().copied().filter(|vm| vm.vm != mover.vm).collect();
    let mut dst_after: Vec<VmPressure> = dst.to_vec();
    dst_after.push(mover);
    before - (cell_contention(&src_after) + cell_contention(&dst_after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::VmSnapshot;

    fn vm(id: u32, pollution: f64, punishments: u64) -> VmSnapshot {
        VmSnapshot {
            vm: FleetVmId(id),
            name: format!("fvm{id}"),
            pollution_rate: pollution,
            punishments,
            instructions: 1000,
            llc_misses: 100,
            ipc: 1.0,
            working_set_bytes: 64 * 1024,
            resident_lines: 256,
            blocked_fraction: 0.0,
        }
    }

    fn snapshot(cells: Vec<(usize, Vec<VmSnapshot>)>) -> ClusterSnapshot {
        ClusterSnapshot {
            epoch: 0,
            cells: cells
                .into_iter()
                .enumerate()
                .map(|(i, (cores, vms))| CellSnapshot {
                    cell: CellId(i),
                    cores,
                    draining: false,
                    down: false,
                    vms,
                })
                .collect(),
        }
    }

    fn snapshot_with_drains(cells: Vec<(usize, bool, Vec<VmSnapshot>)>) -> ClusterSnapshot {
        ClusterSnapshot {
            epoch: 0,
            cells: cells
                .into_iter()
                .enumerate()
                .map(|(i, (cores, draining, vms))| CellSnapshot {
                    cell: CellId(i),
                    cores,
                    draining,
                    down: false,
                    vms,
                })
                .collect(),
        }
    }

    fn planner() -> MigrationPlanner {
        MigrationPlanner::new(PlannerConfig::default().with_max_moves(16))
    }

    #[test]
    fn load_balance_equalises_counts() {
        let snap = snapshot(vec![
            (
                4,
                vec![vm(1, 0.0, 0), vm(2, 0.0, 0), vm(3, 0.0, 0), vm(4, 0.0, 0)],
            ),
            (4, vec![]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(plan.moves.iter().all(|m| m.to == CellId(1)));
        // Most recently arrived VMs move first.
        assert_eq!(plan.moves[0].vm, FleetVmId(4));
        assert_eq!(plan.moves[1].vm, FleetVmId(3));
    }

    #[test]
    fn bin_pack_drains_the_emptiest_cells() {
        let snap = snapshot(vec![
            (4, vec![vm(1, 0.0, 0), vm(2, 0.0, 0), vm(3, 0.0, 0)]),
            (4, vec![vm(4, 0.0, 0)]),
            (4, vec![vm(5, 0.0, 0), vm(6, 0.0, 0)]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::BinPack);
        plan.validate(&snap).unwrap();
        // 6 VMs fit on two 4-core cells: cell 1 (the emptiest donor) drains.
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan.moves[0],
            MigrationMove {
                vm: FleetVmId(4),
                from: CellId(1),
                to: CellId(0),
            }
        );
    }

    #[test]
    fn bin_pack_does_nothing_when_already_packed() {
        let snap = snapshot(vec![
            (2, vec![vm(1, 0.0, 0), vm(2, 0.0, 0)]),
            (2, vec![vm(3, 0.0, 0)]),
            (2, vec![]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::BinPack);
        plan.validate(&snap).unwrap();
        assert!(plan.is_empty(), "3 VMs need two 2-core cells: {:?}", plan);
    }

    #[test]
    fn pollution_aware_separates_polluters_from_sensitive_vms() {
        // Polluters (punished or above threshold) spread across both cells;
        // the plan must gather them on one cell and the sensitive VMs on the
        // other.
        let snap = snapshot(vec![
            (4, vec![vm(1, 900.0, 3), vm(2, 10.0, 0)]),
            (4, vec![vm(3, 800.0, 2), vm(4, 5.0, 0)]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::PollutionAware);
        plan.validate(&snap).unwrap();
        // Apply the plan and check the separation.
        let mut location: Vec<(u32, usize)> = vec![(1, 0), (2, 0), (3, 1), (4, 1)];
        for mv in &plan.moves {
            let entry = location
                .iter_mut()
                .find(|(id, _)| *id == mv.vm.0)
                .expect("known VM");
            entry.1 = mv.to.0;
        }
        let cell_of = |id: u32| location.iter().find(|(v, _)| *v == id).unwrap().1;
        assert_eq!(cell_of(1), cell_of(3), "polluters co-located");
        assert_eq!(cell_of(2), cell_of(4), "sensitive VMs co-located");
        assert_ne!(cell_of(1), cell_of(2), "groups separated");
    }

    #[test]
    fn pollution_aware_uses_the_rate_threshold_without_punishments() {
        let snap = snapshot(vec![
            (4, vec![vm(1, 900.0, 0), vm(2, 10.0, 0)]),
            (4, vec![vm(3, 800.0, 0), vm(4, 5.0, 0)]),
        ]);
        let quiet = planner().plan(&snap, ConsolidationPolicy::PollutionAware);
        assert!(
            quiet.is_empty(),
            "no punishments and an infinite threshold: nobody is a polluter"
        );
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(16)
                .with_polluter_threshold(500.0),
        );
        let plan = planner.plan(&snap, ConsolidationPolicy::PollutionAware);
        plan.validate(&snap).unwrap();
        assert!(!plan.is_empty(), "threshold classification must kick in");
    }

    #[test]
    fn move_budget_is_respected() {
        let snap = snapshot(vec![
            (8, (1..=8).map(|i| vm(i, 0.0, 0)).collect()),
            (8, vec![]),
        ]);
        let planner = MigrationPlanner::new(PlannerConfig::default().with_max_moves(2));
        let plan = planner.plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn full_destinations_are_never_overcommitted() {
        let snap = snapshot(vec![
            (2, vec![vm(1, 0.0, 0), vm(2, 0.0, 0)]),
            // Cell 1 is at capacity: nothing may move there, and balancing
            // toward cell 2 is the only option.
            (1, vec![vm(3, 0.0, 0)]),
            (1, vec![]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        for mv in &plan.moves {
            assert_ne!(mv.to, CellId(1));
        }
    }

    #[test]
    fn single_cell_clusters_never_migrate() {
        let snap = snapshot(vec![(4, vec![vm(1, 1000.0, 5), vm(2, 1.0, 0)])]);
        for policy in ConsolidationPolicy::ALL {
            assert!(planner().plan(&snap, policy).is_empty());
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let snap = snapshot(vec![(2, vec![vm(1, 0.0, 0)]), (1, vec![vm(2, 0.0, 0)])]);
        let self_move = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(1),
                from: CellId(0),
                to: CellId(0),
            }],
        };
        assert!(self_move.validate(&snap).is_err());
        let ghost = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(9),
                from: CellId(0),
                to: CellId(1),
            }],
        };
        assert!(ghost.validate(&snap).is_err());
        let overcommit = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(1),
                from: CellId(0),
                to: CellId(1),
            }],
        };
        assert!(overcommit.validate(&snap).is_err(), "cell 1 is full");
    }

    #[test]
    fn cost_model_arithmetic() {
        let cost = MigrationCostModel {
            downtime_ticks: 3,
            refill_lines_per_tick: 100,
        };
        assert_eq!(cost.downtime_cycles(1000, 10), 30_000);
        assert_eq!(cost.cold_lines(130, 64), 3);
        assert!((cost.move_cost_ticks(250) - 5.5).abs() < 1e-12);
        let plan = MigrationPlan {
            moves: vec![
                MigrationMove {
                    vm: FleetVmId(1),
                    from: CellId(0),
                    to: CellId(1),
                },
                MigrationMove {
                    vm: FleetVmId(2),
                    from: CellId(0),
                    to: CellId(1),
                },
            ],
        };
        assert_eq!(plan.total_downtime_ticks(&cost), 6);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ConsolidationPolicy::LoadBalance.label(), "load-balance");
        assert_eq!(ConsolidationPolicy::BinPack.label(), "bin-pack");
        assert_eq!(
            ConsolidationPolicy::PollutionAware.label(),
            "pollution-aware"
        );
        assert_eq!(
            ConsolidationPolicy::PollutionAwareDensity.label(),
            "pollution-density"
        );
        assert_eq!(ConsolidationPolicy::ALL.len(), 4);
    }

    #[test]
    fn draining_cells_are_evacuated_before_policy_moves() {
        let snap = snapshot_with_drains(vec![
            (4, true, vec![vm(1, 0.0, 0), vm(2, 0.0, 0)]),
            (4, false, vec![vm(3, 0.0, 0)]),
            (4, false, vec![]),
        ]);
        for policy in ConsolidationPolicy::ALL {
            let plan = planner().plan(&snap, policy);
            plan.validate(&snap).unwrap();
            let evacuated: Vec<_> = plan
                .moves
                .iter()
                .filter(|mv| mv.from == CellId(0))
                .collect();
            assert_eq!(evacuated.len(), 2, "{policy:?} must evacuate the drain");
            assert!(
                plan.moves.iter().all(|mv| mv.to != CellId(0)),
                "{policy:?} must never target the draining cell"
            );
        }
    }

    #[test]
    fn evacuation_respects_capacity_and_budget() {
        // Only one open core in the whole fleet: exactly one VM evacuates.
        let snap = snapshot_with_drains(vec![
            (4, true, vec![vm(1, 0.0, 0), vm(2, 0.0, 0), vm(3, 0.0, 0)]),
            (2, false, vec![vm(4, 0.0, 0)]),
        ]);
        let plan = planner().plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.moves[0].vm, FleetVmId(1));
    }

    #[test]
    fn cost_aware_plans_are_a_subset_with_no_more_downtime() {
        // All-quiet fleet: balancing counts, but no contention to relieve.
        let snap = snapshot(vec![
            (
                4,
                vec![vm(1, 2.0, 0), vm(2, 1.0, 0), vm(3, 2.0, 0), vm(4, 1.0, 0)],
            ),
            (4, vec![vm(5, 1.0, 0)]),
        ]);
        let fixed = planner().plan(&snap, ConsolidationPolicy::LoadBalance);
        let cost_aware = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(16)
                .with_cost_aware(true),
        )
        .plan(&snap, ConsolidationPolicy::LoadBalance);
        cost_aware.validate(&snap).unwrap();
        let cost = MigrationCostModel::default();
        assert!(
            cost_aware.total_downtime_ticks(&cost) <= fixed.total_downtime_ticks(&cost),
            "cost-aware may never inflict more downtime"
        );
        for mv in &cost_aware.moves {
            assert!(fixed.moves.contains(mv), "{mv:?} not in the fixed plan");
        }
        // The zero-pollution balancing moves are pruned: moving vm3/vm4
        // saves almost no contention but costs a downtime blackout.
        assert!(cost_aware.len() < fixed.len());
    }

    #[test]
    fn cost_aware_still_separates_heavy_polluters() {
        // A punished 900-misses/ms polluter sharing a cell with three
        // sensitive VMs: moving it to the quiet cell relieves far more
        // contention than the move costs, so the gate admits it.
        let snap = snapshot(vec![
            (
                4,
                vec![vm(1, 900.0, 3), vm(2, 4.0, 0), vm(3, 3.0, 0), vm(4, 2.0, 0)],
            ),
            (4, vec![vm(5, 850.0, 2)]),
        ]);
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(16)
                .with_cost_aware(true),
        );
        let plan = planner.plan(&snap, ConsolidationPolicy::PollutionAware);
        plan.validate(&snap).unwrap();
        assert!(
            plan.moves.iter().any(|mv| mv.vm == FleetVmId(1)),
            "the heavy polluter must still be worth moving: {plan:?}"
        );
    }

    #[test]
    fn cost_aware_never_gates_drain_evacuations() {
        // Zero-pollution VMs on a draining cell: no contention savings at
        // all, but evacuation is mandatory.
        let snap = snapshot_with_drains(vec![
            (4, true, vec![vm(1, 0.0, 0), vm(2, 0.0, 0)]),
            (4, false, vec![]),
        ]);
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(16)
                .with_cost_aware(true),
        );
        let plan = planner.plan(&snap, ConsolidationPolicy::LoadBalance);
        plan.validate(&snap).unwrap();
        assert_eq!(plan.len(), 2, "both VMs leave the draining cell: {plan:?}");
    }

    #[test]
    fn density_policy_caps_sensitive_co_location() {
        // 2 polluters and 4 sensitive VMs on 3 cells. Plain separation
        // piles every sensitive VM onto the clean cells as densely as
        // fit allows; the density variant never lets a clean cell exceed
        // `max_sensitive_per_cell`.
        let snap = snapshot(vec![
            (4, vec![vm(1, 900.0, 2), vm(2, 1.0, 0), vm(3, 1.0, 0)]),
            (4, vec![vm(4, 800.0, 2), vm(5, 1.0, 0), vm(6, 1.0, 0)]),
            (4, vec![]),
        ]);
        let planner = MigrationPlanner::new(
            PlannerConfig::default()
                .with_max_moves(16)
                .with_max_sensitive_per_cell(2),
        );
        let plan = planner.plan(&snap, ConsolidationPolicy::PollutionAwareDensity);
        plan.validate(&snap).unwrap();
        // Apply and count sensitive VMs per cell.
        let sensitive = [2u32, 3, 5, 6];
        let mut location: Vec<(u32, usize)> = vec![(1, 0), (2, 0), (3, 0), (4, 1), (5, 1), (6, 1)];
        for mv in &plan.moves {
            location
                .iter_mut()
                .find(|(id, _)| *id == mv.vm.0)
                .expect("known VM")
                .1 = mv.to.0;
        }
        for cell in 0..3 {
            let count = location
                .iter()
                .filter(|(id, c)| *c == cell && sensitive.contains(id))
                .count();
            assert!(
                count <= 2,
                "cell {cell} hosts {count} sensitive VMs: {location:?}"
            );
        }
    }

    #[test]
    fn down_cells_are_never_migration_targets() {
        // Cell 2 crashed: it is empty (its VMs were orphaned) and must not
        // receive anything, even though it has the most free cores.
        let mut snap = snapshot(vec![
            (
                4,
                vec![vm(1, 900.0, 2), vm(2, 1.0, 0), vm(3, 1.0, 0), vm(4, 1.0, 0)],
            ),
            (4, vec![vm(5, 800.0, 2)]),
            (4, vec![]),
        ]);
        snap.cells[2].down = true;
        for policy in ConsolidationPolicy::ALL {
            let plan = planner().plan(&snap, policy);
            plan.validate(&snap).unwrap();
            assert!(
                plan.moves.iter().all(|mv| mv.to != CellId(2)),
                "{policy:?} targeted the down cell: {plan:?}"
            );
        }
        let into_down = MigrationPlan {
            moves: vec![MigrationMove {
                vm: FleetVmId(1),
                from: CellId(0),
                to: CellId(2),
            }],
        };
        let err = into_down.validate(&snap).unwrap_err();
        assert!(err.contains("down"), "{err}");
    }

    #[test]
    fn contention_model_arithmetic() {
        let vp = |id: u32, rate: f64, weight: f64| VmPressure {
            vm: FleetVmId(id),
            rate,
            weight,
        };
        // Uniform weights reduce to (n-1) * total: 3 VMs totalling 60 ->
        // 120.
        let cell = vec![vp(1, 10.0, 1.0), vp(2, 20.0, 1.0), vp(3, 30.0, 1.0)];
        assert!((cell_contention(&cell) - 120.0).abs() < 1e-12);
        assert_eq!(cell_contention(&cell[..1]), 0.0);
        // Moving the 30-rate VM to an empty cell: before 120, after
        // (2-1)*30 + 0 = 30 -> savings 90.
        let savings = contention_savings(&cell, &[], cell[2]);
        assert!((savings - 90.0).abs() < 1e-12, "{savings}");
        // Sin-binning a polluter: pressure added onto other polluters is
        // discounted by their weight, so the move scores far better than
        // the uniform model would say.
        let mixed = vec![vp(4, 900.0, POLLUTER_PRESSURE_WEIGHT), vp(5, 1.0, 1.0)];
        let bin = vec![vp(6, 800.0, POLLUTER_PRESSURE_WEIGHT)];
        let savings = contention_savings(&mixed, &bin, mixed[0]);
        assert!(
            savings > 400.0,
            "pulling the polluter off the sensitive VM must pay: {savings}"
        );
    }
}
