//! Per-epoch observations of the fleet: the pure data the migration planner
//! consumes.
//!
//! A snapshot is taken at every epoch boundary, after all cells have run
//! their ticks and before any migration is planned. It contains only plain
//! values (no references into cells), so the planner is a pure function of
//! it — the determinism property tests exploit exactly that.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cell (one machine + hypervisor) within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub usize);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// Fleet-wide identifier of a VM. Stable across migrations, unlike the
/// per-cell `VmId` a hypervisor hands out locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FleetVmId(pub u32);

impl fmt::Display for FleetVmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fvm{}", self.0)
    }
}

/// What one VM did during the last epoch (all counters are epoch deltas, not
/// lifetime totals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSnapshot {
    /// The VM.
    pub vm: FleetVmId,
    /// Its configured name.
    pub name: String,
    /// Measured pollution over the epoch, in LLC misses per millisecond of
    /// CPU time — the quantity the paper's Equation 1 estimates.
    pub pollution_rate: f64,
    /// Punishments the Kyoto scheduler inflicted during the epoch (zero when
    /// the VM booked no permit).
    pub punishments: u64,
    /// Instructions retired during the epoch.
    pub instructions: u64,
    /// LLC misses during the epoch.
    pub llc_misses: u64,
    /// Instructions per cycle over the epoch.
    pub ipc: f64,
    /// Working-set size of the VM's workload in bytes.
    pub working_set_bytes: u64,
    /// LLC lines the VM currently owns on its cell — what
    /// `Machine::flush_owner` would invalidate if the VM migrated now, and
    /// therefore the cold-cache refill bill the cost-aware planner charges a
    /// candidate move.
    pub resident_lines: u64,
    /// Fraction of the epoch's vCPU-ticks the VM spent Blocked (WFI-style
    /// sleep). `0.0` for always-runnable VMs; close to `1.0` for
    /// sleep-mostly interactive VMs.
    pub blocked_fraction: f64,
}

/// One cell at an epoch boundary: capacity plus the VMs it hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSnapshot {
    /// The cell.
    pub cell: CellId,
    /// Number of physical cores the cell's machine has — its VM capacity
    /// under the no-overcommit rule the planner enforces.
    pub cores: usize,
    /// Whether the cell is draining for maintenance: it stops accepting
    /// placements (the planner never targets it, admission skips it) and
    /// its resident VMs are evacuated before any policy move is considered.
    pub draining: bool,
    /// Whether the cell is down after a crash: it runs nothing, hosts
    /// nothing (its VMs were orphaned into the retry queue), and accepts no
    /// placements until it reboots.
    pub down: bool,
    /// Resident VMs in fleet-id order.
    pub vms: Vec<VmSnapshot>,
}

impl CellSnapshot {
    /// Number of VMs resident on the cell.
    pub fn occupancy(&self) -> usize {
        self.vms.len()
    }

    /// Whether the cell accepts new placements (i.e. it is neither draining
    /// nor down).
    pub fn is_open(&self) -> bool {
        !self.draining && !self.down
    }

    /// Cores not currently claimed by a resident VM (saturating: a cell
    /// seeded beyond capacity reports zero).
    pub fn free_cores(&self) -> usize {
        self.cores.saturating_sub(self.vms.len())
    }

    /// Sum of the resident VMs' epoch pollution rates — the cell's total
    /// pressure on its shared LLC. (`+ 0.0` normalises the `-0.0` an empty
    /// float sum produces, keeping rendered tables tidy.)
    pub fn pollution_rate(&self) -> f64 {
        self.vms.iter().map(|vm| vm.pollution_rate).sum::<f64>() + 0.0
    }
}

/// The whole fleet at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Epoch index this snapshot closes (0-based).
    pub epoch: u64,
    /// Every cell, in cell-id order.
    pub cells: Vec<CellSnapshot>,
}

impl ClusterSnapshot {
    /// Total VMs across the fleet.
    pub fn total_vms(&self) -> usize {
        self.cells.iter().map(|c| c.vms.len()).sum()
    }

    /// Finds a VM and the cell hosting it.
    pub fn find(&self, vm: FleetVmId) -> Option<(&CellSnapshot, &VmSnapshot)> {
        self.cells.iter().find_map(|cell| {
            cell.vms
                .iter()
                .find(|snapshot| snapshot.vm == vm)
                .map(|snapshot| (cell, snapshot))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(id: u32, pollution: f64) -> VmSnapshot {
        VmSnapshot {
            vm: FleetVmId(id),
            name: format!("fvm{id}"),
            pollution_rate: pollution,
            punishments: 0,
            instructions: 100,
            llc_misses: 10,
            ipc: 1.0,
            working_set_bytes: 4096,
            resident_lines: 64,
            blocked_fraction: 0.0,
        }
    }

    #[test]
    fn cell_accessors() {
        let cell = CellSnapshot {
            cell: CellId(0),
            cores: 4,
            draining: false,
            down: false,
            vms: vec![vm(1, 10.0), vm(2, 5.0)],
        };
        assert_eq!(cell.occupancy(), 2);
        assert_eq!(cell.free_cores(), 2);
        assert!(cell.is_open());
        assert!((cell.pollution_rate() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn draining_cells_are_not_open() {
        let cell = CellSnapshot {
            cell: CellId(0),
            cores: 4,
            draining: true,
            down: false,
            vms: vec![vm(1, 0.0)],
        };
        assert!(!cell.is_open());
    }

    #[test]
    fn overcommitted_cell_reports_zero_free_cores() {
        let cell = CellSnapshot {
            cell: CellId(0),
            cores: 1,
            draining: false,
            down: false,
            vms: vec![vm(1, 0.0), vm(2, 0.0)],
        };
        assert_eq!(cell.free_cores(), 0);
    }

    #[test]
    fn cluster_lookup() {
        let snapshot = ClusterSnapshot {
            epoch: 3,
            cells: vec![
                CellSnapshot {
                    cell: CellId(0),
                    cores: 4,
                    draining: false,
                    down: false,
                    vms: vec![vm(1, 1.0)],
                },
                CellSnapshot {
                    cell: CellId(1),
                    cores: 4,
                    draining: false,
                    down: false,
                    vms: vec![vm(2, 2.0)],
                },
            ],
        };
        assert_eq!(snapshot.total_vms(), 2);
        let (cell, found) = snapshot.find(FleetVmId(2)).unwrap();
        assert_eq!(cell.cell, CellId(1));
        assert_eq!(found.vm, FleetVmId(2));
        assert!(snapshot.find(FleetVmId(9)).is_none());
        assert_eq!(CellId(1).to_string(), "cell1");
        assert_eq!(FleetVmId(2).to_string(), "fvm2");
    }
}
