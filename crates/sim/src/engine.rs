//! Deterministic time-stepped simulation engine.
//!
//! The engine executes a set of *slots* — (core, owner, workload) bindings —
//! for a common cycle budget, interleaving their memory accesses over the
//! shared machine in cycle order. This models the two contention modes of
//! Section 2.2 of the paper:
//!
//! * **parallel execution**: slots on different cores of the same socket are
//!   interleaved within the same call, so their access streams compete for
//!   LLC sets concurrently;
//! * **alternative execution**: slots scheduled on the same core in
//!   *successive* calls (as the hypervisor's scheduler time-shares the core)
//!   find the LLC state left behind by the previous occupant.
//!
//! The default [`SimEngine::run_slots`] path batches op fetching through
//! [`Workload::fill_ops`] and advances slots in epochs (run the
//! furthest-behind slot until it catches up with the next one) instead of
//! re-scanning every slot per op. The interleaving it produces is
//! bit-identical to the per-op [`SimEngine::run_slots_reference`] path,
//! which is kept as the semantic baseline for equivalence tests and
//! benchmarks.

use crate::cache::OwnerId;
use crate::error::SimError;
use crate::hierarchy::AccessKind;
use crate::pmc::PmcSet;
use crate::shadow::ShadowAttribution;
use crate::topology::{AccessRoute, CoreId, Machine, NumaNode};
use crate::workload::{Op, Workload};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Ops fetched from a workload per `fill_ops` batch: large enough to
/// amortise the dynamic dispatch, small enough that carried-over ops stay
/// negligible in memory.
const OP_CHUNK: usize = 64;

/// An execution binding: a workload running on behalf of `owner` on `core`.
pub struct ExecSlot<'a> {
    /// Core the slot runs on.
    pub core: CoreId,
    /// Owner (VM id) of the memory traffic.
    pub owner: OwnerId,
    /// The workload generating micro-operations.
    pub workload: &'a mut dyn Workload,
    /// NUMA node where the owner's memory lives.
    pub data_node: NumaNode,
    /// When set, every LLC miss pays the remote-memory latency regardless of
    /// placement. Used to model a vCPU migrated away from its memory by the
    /// socket-dedication pollution monitor (Fig. 9).
    pub force_remote: bool,
    /// Stable identity of the workload stream behind this slot, used to key
    /// the engine's batched op buffers across [`SimEngine::run_slots`]
    /// calls. Slots rebuilt every call (as the hypervisor does per tick)
    /// must reuse the same tag for the same workload so its op stream
    /// continues seamlessly; tags must be unique within one call.
    ///
    /// Defaults to a value derived from `(owner, core)`, which is correct
    /// as long as a given workload always runs under the same owner/core
    /// pair. The hypervisor overrides it with the vCPU key.
    pub tag: u64,
    /// Cumulative counters across every call this slot participated in.
    pub pmcs: PmcSet,
}

impl std::fmt::Debug for ExecSlot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSlot")
            .field("core", &self.core)
            .field("owner", &self.owner)
            .field("workload", &self.workload.name())
            .field("data_node", &self.data_node)
            .field("force_remote", &self.force_remote)
            .field("tag", &self.tag)
            .field("pmcs", &self.pmcs)
            .finish()
    }
}

impl<'a> ExecSlot<'a> {
    /// Creates a slot with data local to the core's socket and no forced
    /// remote accesses.
    pub fn new(core: CoreId, owner: OwnerId, workload: &'a mut dyn Workload) -> Self {
        ExecSlot {
            tag: (u64::from(owner) << 32) | (core.0 as u64 & 0xffff_ffff),
            core,
            owner,
            workload,
            data_node: NumaNode(usize::MAX), // resolved lazily to the core's node
            force_remote: false,
            pmcs: PmcSet::default(),
        }
    }

    /// Overrides the op-stream identity tag (see [`ExecSlot::tag`]).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Places the owner's memory on an explicit NUMA node.
    pub fn with_data_node(mut self, node: NumaNode) -> Self {
        self.data_node = node;
        self
    }

    /// Forces LLC misses to pay the remote-memory latency.
    pub fn with_force_remote(mut self, force: bool) -> Self {
        self.force_remote = force;
        self
    }
}

/// Per-slot outcome of one [`SimEngine::run_slots`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantumReport {
    /// Cycles actually consumed (>= the requested budget, because the last
    /// op may overshoot it slightly).
    pub consumed_cycles: u64,
    /// Counter delta produced during this call.
    pub pmc_delta: PmcSet,
    /// Number of LLC fills that evicted another owner's line.
    pub pollution_events: u64,
}

impl QuantumReport {
    /// Instructions per cycle achieved during this quantum.
    pub fn ipc(&self) -> f64 {
        self.pmc_delta.ipc()
    }
}

/// A batched op stream: ops prefetched from a workload in [`OP_CHUNK`]
/// blocks, consumed one at a time. Unconsumed ops survive in the engine's
/// carry map so the stream continues exactly where it stopped on the next
/// call — batching is invisible to the simulation semantics.
#[derive(Debug, Default)]
struct OpQueue {
    buf: Vec<Op>,
    head: usize,
}

impl OpQueue {
    #[inline]
    fn next(&mut self, workload: &mut dyn Workload) -> Op {
        if self.head == self.buf.len() {
            self.refill(workload);
        }
        let op = self.buf[self.head];
        self.head += 1;
        op
    }

    fn refill(&mut self, workload: &mut dyn Workload) {
        self.buf.clear();
        self.buf.resize(OP_CHUNK, Op::Compute { cycles: 1 });
        self.head = 0;
        let filled = workload.fill_ops(&mut self.buf);
        self.buf.truncate(filled);
        if self.buf.is_empty() {
            // Defensive: a short-filling workload must still make progress.
            self.buf.push(workload.next_op());
        }
    }

    fn is_drained(&self) -> bool {
        self.head == self.buf.len()
    }
}

/// Executes one micro-op for a slot, accumulating its cycle cost, counter
/// deltas and pollution events directly into `report`: the shared cost
/// model of both the batched and the reference engine paths.
#[inline]
fn execute_op(
    machine: &mut Machine,
    shadow: &mut Option<ShadowAttribution>,
    route: AccessRoute,
    owner: OwnerId,
    mem_parallelism: f64,
    op: Op,
    report: &mut QuantumReport,
) {
    match op {
        Op::Compute { cycles } => {
            let cycles = u64::from(cycles.max(1));
            report.consumed_cycles += cycles;
            report.pmc_delta.instructions += 1;
            report.pmc_delta.unhalted_core_cycles += cycles;
        }
        Op::Load { addr } | Op::Store { addr } => {
            let kind = if matches!(op, Op::Store { .. }) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let outcome = machine.access_routed(route, addr, kind, owner);
            if outcome.level.reached_llc() {
                if let Some(shadow) = shadow.as_mut() {
                    shadow.observe(owner, addr);
                }
            }
            // Memory-level parallelism: streaming workloads overlap
            // independent misses, so the per-access charge of an LLC
            // miss shrinks by the declared parallelism factor.
            let effective_latency = if outcome.level.is_llc_miss() {
                ((f64::from(outcome.latency) / mem_parallelism).round() as u32).max(1)
            } else {
                outcome.latency
            };
            let cycles = u64::from(effective_latency) + 1;
            report.consumed_cycles += cycles;
            let delta = &mut report.pmc_delta;
            delta.instructions += 1;
            delta.unhalted_core_cycles += cycles;
            delta.memory_accesses += 1;
            delta.ilc_misses += u64::from(outcome.level.reached_llc());
            delta.llc_references += u64::from(outcome.level.reached_llc());
            delta.llc_misses += u64::from(outcome.level.is_llc_miss());
            delta.remote_accesses +=
                u64::from(outcome.level == crate::hierarchy::MemLevel::RemoteMemory);
            report.pollution_events += u64::from(outcome.polluted_llc);
        }
    }
}

/// The time-stepped simulation engine.
#[derive(Debug)]
pub struct SimEngine {
    machine: Machine,
    shadow: Option<ShadowAttribution>,
    elapsed_cycles: u64,
    /// Batched-but-unexecuted ops per slot tag, carried across
    /// [`SimEngine::run_slots`] calls so op streams continue seamlessly.
    op_carry: HashMap<u64, OpQueue>,
}

impl SimEngine {
    /// Creates an engine around a machine, without shadow attribution.
    pub fn new(machine: Machine) -> Self {
        SimEngine {
            machine,
            shadow: None,
            elapsed_cycles: 0,
            op_carry: HashMap::new(),
        }
    }

    /// Discards batched-but-unexecuted ops fetched for `tag`. Call when the
    /// entity behind the tag disappears (VM destroyed) or its workload is
    /// replaced or reset, so a future reuse of the tag starts clean.
    pub fn clear_op_buffer(&mut self, tag: u64) {
        self.op_carry.remove(&tag);
    }

    /// Discards every batched op buffer (see [`SimEngine::clear_op_buffer`]).
    pub fn clear_op_buffers(&mut self) {
        self.op_carry.clear();
    }

    /// Enables simulator-based pollution attribution (the McSimA+ stand-in):
    /// LLC-level accesses are additionally replayed into per-owner shadow
    /// caches.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the machine's LLC
    /// geometry is invalid (cannot happen for a validated machine).
    pub fn enable_shadow_attribution(&mut self) -> Result<(), SimError> {
        if self.shadow.is_none() {
            self.shadow = Some(ShadowAttribution::new(self.machine.config().llc.clone())?);
        }
        Ok(())
    }

    /// Disables shadow attribution and drops its state.
    pub fn disable_shadow_attribution(&mut self) {
        self.shadow = None;
    }

    /// The shadow attribution component, if enabled.
    pub fn shadow(&self) -> Option<&ShadowAttribution> {
        self.shadow.as_ref()
    }

    /// Mutable access to the shadow attribution component, if enabled.
    pub fn shadow_mut(&mut self) -> Option<&mut ShadowAttribution> {
        self.shadow.as_mut()
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the simulated machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Total cycles executed by the busiest slot so far (a logical clock).
    pub fn elapsed_cycles(&self) -> u64 {
        self.elapsed_cycles
    }

    /// Runs every slot for `cycle_budget` cycles, interleaving their
    /// execution in cycle order.
    ///
    /// Returns one report per slot, in the order of `slots`. Slots also
    /// accumulate the counter deltas into their own [`ExecSlot::pmcs`].
    ///
    /// The interleaving is epoch-based: the slot that is furthest behind in
    /// cycle time (ties broken by slot index) executes ops until it catches
    /// up with the next slot, with ops pulled from batched per-slot buffers
    /// ([`Workload::fill_ops`]). The resulting global op order — and
    /// therefore every cache state, counter and pollution attribution — is
    /// bit-identical to advancing one op at a time as
    /// [`SimEngine::run_slots_reference`] does, which a property test
    /// asserts; only the bookkeeping cost per op differs.
    ///
    /// # Panics
    ///
    /// Panics if a slot references a core that does not exist on the machine
    /// (a programming error in the hypervisor layer).
    pub fn run_slots(
        &mut self,
        slots: &mut [ExecSlot<'_>],
        cycle_budget: u64,
    ) -> Vec<QuantumReport> {
        let n = slots.len();
        let mut reports = vec![QuantumReport::default(); n];
        if n == 0 || cycle_budget == 0 {
            return reports;
        }
        self.resolve_data_nodes(slots);
        debug_assert!(
            {
                let mut tags: Vec<u64> = slots.iter().map(|s| s.tag).collect();
                tags.sort_unstable();
                tags.windows(2).all(|w| w[0] != w[1])
            },
            "slot tags must be unique within one run_slots call"
        );

        // Pick the op streams up exactly where the previous call left them.
        let mut queues: Vec<OpQueue> = slots
            .iter()
            .map(|slot| self.op_carry.remove(&slot.tag).unwrap_or_default())
            .collect();
        // Memory-level parallelism and the access route are static per
        // slot; hoist both out of the per-op loop.
        let mlps: Vec<f64> = slots
            .iter()
            .map(|slot| slot.workload.mem_parallelism().max(1.0))
            .collect();
        let routes: Vec<AccessRoute> = slots
            .iter()
            .map(|slot| {
                self.machine
                    .route(slot.core, slot.data_node, slot.force_remote)
                    .expect("slot references an unknown core")
            })
            .collect();

        // Min-heap on (consumed cycles, slot index): the top is exactly the
        // slot the reference path's linear scan would pick.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..n).map(|i| Reverse((0u64, i))).collect();
        while let Some(Reverse((_, i))) = heap.pop() {
            // The popped slot stays ahead of the heap top for a whole epoch:
            // run it op by op until it would no longer be the scheduling
            // minimum (or its budget is spent), then requeue it.
            let (limit_cycles, limit_index) = match heap.peek() {
                Some(Reverse((cycles, index))) => (*cycles, *index),
                None => (cycle_budget, usize::MAX),
            };
            let slot = &mut slots[i];
            let queue = &mut queues[i];
            let report = &mut reports[i];
            let route = routes[i];
            let mlp = mlps[i];
            let owner = slot.owner;
            loop {
                let op = queue.next(&mut *slot.workload);
                execute_op(
                    &mut self.machine,
                    &mut self.shadow,
                    route,
                    owner,
                    mlp,
                    op,
                    report,
                );
                let consumed = report.consumed_cycles;
                if consumed >= cycle_budget {
                    break;
                }
                if consumed > limit_cycles || (consumed == limit_cycles && i > limit_index) {
                    heap.push(Reverse((consumed, i)));
                    break;
                }
            }
        }

        // Fold the call's counter deltas into the slots' cumulative PMCs
        // (done once per call instead of once per op) and preserve
        // fetched-but-unexecuted ops for the next call on each tag.
        for ((slot, queue), report) in slots.iter_mut().zip(queues).zip(&reports) {
            slot.pmcs += report.pmc_delta;
            if !queue.is_drained() {
                self.op_carry.insert(slot.tag, queue);
            }
        }
        self.elapsed_cycles += cycle_budget;
        reports
    }

    /// The semantic reference for [`SimEngine::run_slots`]: advance the
    /// furthest-behind slot by exactly one op per iteration, pulled straight
    /// from the workload with no batching. O(slots) bookkeeping per op —
    /// kept for the equivalence property tests and as the baseline the
    /// substrate benchmarks compare against.
    ///
    /// # Panics
    ///
    /// Panics if a slot references a core that does not exist on the machine.
    pub fn run_slots_reference(
        &mut self,
        slots: &mut [ExecSlot<'_>],
        cycle_budget: u64,
    ) -> Vec<QuantumReport> {
        let n = slots.len();
        let mut reports = vec![QuantumReport::default(); n];
        if n == 0 || cycle_budget == 0 {
            return reports;
        }
        self.resolve_data_nodes(slots);

        // Interleave in cycle order: always advance the slot that is the
        // furthest behind, scanning linearly (first index wins ties).
        loop {
            let mut next: Option<usize> = None;
            let mut min_cycles = u64::MAX;
            for (i, report) in reports.iter().enumerate() {
                if report.consumed_cycles < cycle_budget && report.consumed_cycles < min_cycles {
                    min_cycles = report.consumed_cycles;
                    next = Some(i);
                }
            }
            let Some(i) = next else { break };

            let slot = &mut slots[i];
            let op = slot.workload.next_op();
            let mlp = slot.workload.mem_parallelism().max(1.0);
            let route = self
                .machine
                .route(slot.core, slot.data_node, slot.force_remote)
                .expect("slot references an unknown core");
            execute_op(
                &mut self.machine,
                &mut self.shadow,
                route,
                slot.owner,
                mlp,
                op,
                &mut reports[i],
            );
        }

        for (slot, report) in slots.iter_mut().zip(&reports) {
            slot.pmcs += report.pmc_delta;
        }
        self.elapsed_cycles += cycle_budget;
        reports
    }

    /// Resolves lazy data-node placement and validates slot cores.
    fn resolve_data_nodes(&self, slots: &mut [ExecSlot<'_>]) {
        for slot in slots.iter_mut() {
            let node = self
                .machine
                .numa_node_of(slot.core)
                .expect("slot references an unknown core");
            if slot.data_node.0 == usize::MAX {
                slot.data_node = node;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineConfig;
    use crate::workload::{ComputeOnly, FixedSequence};

    fn engine() -> SimEngine {
        SimEngine::new(Machine::new(MachineConfig::scaled_paper_machine(64)))
    }

    #[test]
    fn empty_slots_or_zero_budget_are_noops() {
        let mut e = engine();
        assert!(e.run_slots(&mut [], 1000).is_empty());
        let mut wl = ComputeOnly::new(1);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 0);
        assert_eq!(reports[0].consumed_cycles, 0);
    }

    #[test]
    fn compute_only_reaches_ipc_one() {
        let mut e = engine();
        let mut wl = ComputeOnly::new(1);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 10_000);
        assert!(reports[0].consumed_cycles >= 10_000);
        assert!((reports[0].ipc() - 1.0).abs() < 1e-9);
        assert_eq!(reports[0].pmc_delta.llc_misses, 0);
    }

    #[test]
    fn memory_ops_cost_hierarchy_latency() {
        let mut e = engine();
        let mut wl = FixedSequence::new("one-line", vec![Op::Load { addr: 0 }]);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        let pmc = reports[0].pmc_delta;
        // First access misses everywhere (~181 cycles) then hits L1 (5 cycles).
        assert_eq!(pmc.llc_misses, 1);
        assert!(pmc.instructions > 100);
        assert!(reports[0].consumed_cycles >= 1_000);
    }

    #[test]
    fn all_slots_consume_the_full_budget() {
        let mut e = engine();
        let mut fast = ComputeOnly::new(1);
        let mut slow = FixedSequence::new(
            "mem",
            vec![Op::Load { addr: 0 }, Op::Load { addr: 1 << 20 }],
        );
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut fast),
            ExecSlot::new(CoreId(1), 2, &mut slow),
        ];
        let reports = e.run_slots(&mut slots, 5_000);
        for report in &reports {
            assert!(report.consumed_cycles >= 5_000);
            // Overshoot is bounded by the cost of a single op.
            assert!(report.consumed_cycles < 5_000 + 400);
        }
    }

    #[test]
    fn parallel_slots_on_same_socket_contend_for_the_llc() {
        // A "sensitive" workload whose working set fits the LLC but not the
        // L2, co-run with a streaming "disruptive" workload.
        let config = MachineConfig::scaled_paper_machine(64);
        let llc_lines = config.llc.num_lines();
        let sensitive_lines: Vec<Op> = (0..llc_lines / 2)
            .map(|i| Op::Load { addr: i * 64 })
            .collect();

        let solo_misses = {
            let mut e = SimEngine::new(Machine::new(config.clone()));
            let mut wl = FixedSequence::new("sensitive", sensitive_lines.clone());
            let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
            // Warm up, then measure.
            e.run_slots(std::slice::from_mut(&mut slot), 200_000);
            slot.pmcs = PmcSet::default();
            let r = e.run_slots(std::slice::from_mut(&mut slot), 200_000);
            r[0].pmc_delta.llc_misses
        };

        let contended_misses = {
            let mut e = SimEngine::new(Machine::new(config));
            let mut wl = FixedSequence::new("sensitive", sensitive_lines);
            let disruptor_ops: Vec<Op> = (0..4096u64)
                .map(|i| Op::Load {
                    addr: (1 << 30) + i * 64,
                })
                .collect();
            let mut dis = FixedSequence::new("disruptor", disruptor_ops).with_mem_parallelism(8.0);
            let mut slots = vec![
                ExecSlot::new(CoreId(0), 1, &mut wl),
                ExecSlot::new(CoreId(1), 2, &mut dis),
            ];
            e.run_slots(&mut slots, 200_000);
            slots[0].pmcs = PmcSet::default();
            let r = e.run_slots(&mut slots, 200_000);
            r[0].pmc_delta.llc_misses
        };

        assert!(
            contended_misses > solo_misses * 2,
            "co-running a streaming disruptor should inflate LLC misses (solo={solo_misses}, contended={contended_misses})"
        );
    }

    #[test]
    fn force_remote_increases_remote_access_count() {
        let mut e = SimEngine::new(Machine::new(MachineConfig::scaled_paper_numa_machine(64)));
        let ops: Vec<Op> = (0..512u64).map(|i| Op::Load { addr: i * 4096 }).collect();
        let mut wl = FixedSequence::new("mem", ops);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_force_remote(true);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 50_000);
        assert!(reports[0].pmc_delta.remote_accesses > 0);
        assert_eq!(
            reports[0].pmc_delta.remote_accesses,
            reports[0].pmc_delta.llc_misses
        );
    }

    #[test]
    fn shadow_attribution_tracks_solo_misses_under_contention() {
        let config = MachineConfig::scaled_paper_machine(64);
        let mut e = SimEngine::new(Machine::new(config.clone()));
        e.enable_shadow_attribution().unwrap();
        // Small reused set for owner 1, huge stream for owner 2.
        let reused: Vec<Op> = (0..64u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let stream: Vec<Op> = (0..100_000u64)
            .map(|i| Op::Load {
                addr: (1 << 32) + i * 64,
            })
            .collect();
        let mut wl1 = FixedSequence::new("reused", reused);
        let mut wl2 = FixedSequence::new("stream", stream).with_mem_parallelism(8.0);
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut wl1),
            ExecSlot::new(CoreId(1), 2, &mut wl2),
        ];
        e.run_slots(&mut slots, 300_000);
        let shadow = e.shadow().unwrap();
        // In the shared LLC owner 1 suffers from owner 2's stream, but its
        // shadow (solo) miss count stays at the cold-miss level.
        assert!(shadow.solo_misses(1) <= 64 * 3);
        assert!(shadow.solo_misses(2) > 1000);
        assert!(slots[0].pmcs.llc_misses >= shadow.solo_misses(1));
    }

    #[test]
    fn pollution_events_are_reported_for_the_polluter() {
        let config = MachineConfig::scaled_paper_machine(64);
        let llc_lines = config.llc.num_lines();
        let mut e = SimEngine::new(Machine::new(config));
        let victim_ops: Vec<Op> = (0..llc_lines / 2)
            .map(|i| Op::Load { addr: i * 64 })
            .collect();
        let stream: Vec<Op> = (0..1_000_000u64)
            .map(|i| Op::Load {
                addr: (1 << 32) + i * 64,
            })
            .collect();
        let mut victim = FixedSequence::new("victim", victim_ops);
        let mut polluter = FixedSequence::new("polluter", stream).with_mem_parallelism(8.0);
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut victim),
            ExecSlot::new(CoreId(1), 2, &mut polluter),
        ];
        // Warm the LLC with the victim, then let both run.
        e.run_slots(&mut slots[..1], 200_000);
        let reports = e.run_slots(&mut slots, 200_000);
        assert!(
            reports[1].pollution_events > 0,
            "the streaming owner should evict victim lines"
        );
    }

    #[test]
    fn mem_parallelism_speeds_up_streaming_workloads() {
        let ops: Vec<Op> = (0..100_000u64)
            .map(|i| Op::Load { addr: i * 4096 })
            .collect();
        let run = |mlp: f64| -> u64 {
            let mut e = engine();
            let mut wl = FixedSequence::new("stream", ops.clone()).with_mem_parallelism(mlp);
            let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
            let r = e.run_slots(std::slice::from_mut(&mut slot), 100_000);
            r[0].pmc_delta.llc_misses
        };
        let dependent = run(1.0);
        let streaming = run(8.0);
        assert!(
            streaming > dependent * 3,
            "an MLP of 8 should let the stream touch far more lines per cycle (dependent={dependent}, streaming={streaming})"
        );
    }

    #[test]
    fn elapsed_cycles_accumulate() {
        let mut e = engine();
        let mut wl = ComputeOnly::new(1);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        e.run_slots(std::slice::from_mut(&mut slot), 1000);
        e.run_slots(std::slice::from_mut(&mut slot), 500);
        assert_eq!(e.elapsed_cycles(), 1500);
    }

    #[test]
    fn op_buffers_carry_across_calls_per_tag() {
        // A FixedSequence visiting distinct lines: if the engine dropped the
        // prefetched-but-unexecuted ops between calls, the visited address
        // sequence would skip lines and the total distinct-line count of two
        // short calls would diverge from one long call.
        let ops: Vec<Op> = (0..1024u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let run = |budgets: &[u64]| -> u64 {
            let mut e = engine();
            let mut wl = FixedSequence::new("seq", ops.clone());
            for &budget in budgets {
                let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(7);
                e.run_slots(std::slice::from_mut(&mut slot), budget);
            }
            e.machine()
                .socket(crate::topology::SocketId(0))
                .unwrap()
                .llc()
                .stats()
                .accesses
        };
        let split = run(&[3_000, 3_000, 3_000]);
        let joined = run(&[9_000]);
        // Each extra call can overshoot by at most one op, so the two runs
        // stay within a few accesses of each other.
        assert!(
            split.abs_diff(joined) <= 4,
            "split={split}, joined={joined}"
        );
    }

    #[test]
    fn clear_op_buffer_restarts_the_stream_for_a_tag() {
        let ops: Vec<Op> = (0..256u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut e = engine();
        let mut wl = FixedSequence::new("seq", ops);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(42);
        e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        e.clear_op_buffer(42);
        e.clear_op_buffers();
        // After clearing, running again must still work (fresh fetch).
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        assert!(reports[0].consumed_cycles >= 1_000);
    }
}
