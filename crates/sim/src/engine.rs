//! Deterministic time-stepped simulation engine.
//!
//! The engine executes a set of *slots* — (core, owner, workload) bindings —
//! for a common cycle budget, interleaving their memory accesses over the
//! shared machine in cycle order. This models the two contention modes of
//! Section 2.2 of the paper:
//!
//! * **parallel execution**: slots on different cores of the same socket are
//!   interleaved within the same call, so their access streams compete for
//!   LLC sets concurrently;
//! * **alternative execution**: slots scheduled on the same core in
//!   *successive* calls (as the hypervisor's scheduler time-shares the core)
//!   find the LLC state left behind by the previous occupant.
//!
//! The default [`SimEngine::run_slots`] path batches op fetching through
//! [`Workload::fill_ops`] and advances slots in epochs (run the
//! furthest-behind slot until it catches up with the next one) instead of
//! re-scanning every slot per op. The interleaving it produces is
//! bit-identical to the per-op [`SimEngine::run_slots_reference`] path,
//! which is kept as the semantic baseline for equivalence tests and
//! benchmarks.

use crate::cache::OwnerId;
use crate::error::SimError;
use crate::hierarchy::{AccessKind, AccessOutcome};
use crate::pmc::PmcSet;
use crate::shadow::ShadowAttribution;
use crate::topology::{AccessRoute, CoreId, Machine, NumaNode, SocketView};
use crate::workload::{Op, Workload};
use kyoto_trace::TraceSink;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Ops fetched from a workload per `fill_ops` batch: large enough to
/// amortise the dynamic dispatch, small enough that carried-over ops stay
/// negligible in memory.
const OP_CHUNK: usize = 64;

/// Calls a carried op buffer may sit unused before the stale sweep drops it.
/// Large enough that any legitimately descheduled stream (alternative
/// execution, long Kyoto punishments) survives, small enough that abandoned
/// tags cannot accumulate without bound.
const CARRY_STALE_AFTER: u64 = 1024;

/// How often (in batched `run_slots*` calls) the stale-carry sweep runs.
const CARRY_PRUNE_INTERVAL: u64 = 256;

/// An execution binding: a workload running on behalf of `owner` on `core`.
pub struct ExecSlot<'a> {
    /// Core the slot runs on.
    pub core: CoreId,
    /// Owner (VM id) of the memory traffic.
    pub owner: OwnerId,
    /// The workload generating micro-operations.
    pub workload: &'a mut dyn Workload,
    /// NUMA node where the owner's memory lives.
    pub data_node: NumaNode,
    /// When set, every LLC miss pays the remote-memory latency regardless of
    /// placement. Used to model a vCPU migrated away from its memory by the
    /// socket-dedication pollution monitor (Fig. 9).
    pub force_remote: bool,
    /// Stable identity of the workload stream behind this slot, used to key
    /// the engine's batched op buffers across [`SimEngine::run_slots`]
    /// calls. Slots rebuilt every call (as the hypervisor does per tick)
    /// must reuse the same tag for the same workload so its op stream
    /// continues seamlessly; tags must be unique within one call.
    ///
    /// Defaults to a value derived from `(owner, core)`, which is correct
    /// as long as a given workload always runs under the same owner/core
    /// pair. **Migration pitfall:** the default tag changes when the same
    /// workload is rebound to a different core, so the ops prefetched under
    /// the old tag are orphaned — the stream silently skips up to one chunk
    /// and the abandoned buffer lingers until the engine's stale sweep
    /// prunes it. Callers that migrate streams between cores must supply a
    /// core-independent tag via [`ExecSlot::with_tag`]; the hypervisor uses
    /// the vCPU key.
    pub tag: u64,
    /// A blocked (sleeping) vCPU slot: the engine executes nothing for it
    /// and charges zero cycles, but keeps the ops already prefetched under
    /// its tag parked so the stream resumes exactly where it stopped when
    /// the slot wakes. The hypervisor passes its Blocked vCPUs this way so
    /// per-core schedules keep their shape while idle slots stay free.
    pub blocked: bool,
    /// Cumulative counters across every call this slot participated in.
    pub pmcs: PmcSet,
}

impl std::fmt::Debug for ExecSlot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSlot")
            .field("core", &self.core)
            .field("owner", &self.owner)
            .field("workload", &self.workload.name())
            .field("data_node", &self.data_node)
            .field("force_remote", &self.force_remote)
            .field("tag", &self.tag)
            .field("blocked", &self.blocked)
            .field("pmcs", &self.pmcs)
            .finish()
    }
}

impl<'a> ExecSlot<'a> {
    /// Creates a slot with data local to the core's socket and no forced
    /// remote accesses.
    pub fn new(core: CoreId, owner: OwnerId, workload: &'a mut dyn Workload) -> Self {
        ExecSlot {
            tag: (u64::from(owner) << 32) | (core.0 as u64 & 0xffff_ffff),
            core,
            owner,
            workload,
            data_node: NumaNode(usize::MAX), // resolved lazily to the core's node
            force_remote: false,
            blocked: false,
            pmcs: PmcSet::default(),
        }
    }

    /// Overrides the op-stream identity tag (see [`ExecSlot::tag`]).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Places the owner's memory on an explicit NUMA node.
    pub fn with_data_node(mut self, node: NumaNode) -> Self {
        self.data_node = node;
        self
    }

    /// Forces LLC misses to pay the remote-memory latency.
    pub fn with_force_remote(mut self, force: bool) -> Self {
        self.force_remote = force;
        self
    }

    /// Marks the slot blocked (see [`ExecSlot::blocked`]).
    pub fn with_blocked(mut self, blocked: bool) -> Self {
        self.blocked = blocked;
        self
    }
}

/// Per-slot outcome of one [`SimEngine::run_slots`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantumReport {
    /// Cycles actually consumed (>= the requested budget, because the last
    /// op may overshoot it slightly).
    pub consumed_cycles: u64,
    /// Counter delta produced during this call.
    pub pmc_delta: PmcSet,
    /// Number of LLC fills that evicted another owner's line.
    pub pollution_events: u64,
}

impl QuantumReport {
    /// Instructions per cycle achieved during this quantum.
    pub fn ipc(&self) -> f64 {
        self.pmc_delta.ipc()
    }
}

/// A batched op stream: ops prefetched from a workload in [`OP_CHUNK`]
/// blocks, consumed one at a time. Unconsumed ops survive in the engine's
/// carry map so the stream continues exactly where it stopped on the next
/// call — batching is invisible to the simulation semantics.
#[derive(Debug, Default, Clone)]
struct OpQueue {
    buf: Vec<Op>,
    head: usize,
}

impl OpQueue {
    #[inline]
    fn next(&mut self, workload: &mut dyn Workload) -> Op {
        if self.head == self.buf.len() {
            self.refill(workload);
        }
        let op = self.buf[self.head];
        self.head += 1;
        op
    }

    fn refill(&mut self, workload: &mut dyn Workload) {
        self.buf.clear();
        self.buf.resize(OP_CHUNK, Op::Compute { cycles: 1 });
        self.head = 0;
        let filled = workload.fill_ops(&mut self.buf);
        self.buf.truncate(filled);
        if self.buf.is_empty() {
            // Defensive: a short-filling workload must still make progress.
            self.buf.push(workload.next_op());
        }
    }

    fn is_drained(&self) -> bool {
        self.head == self.buf.len()
    }
}

/// Memory-access target of the engine's execution loops: the whole machine
/// (serial paths) or one socket's split-borrowed view (the socket-parallel
/// path). Monomorphised, so the per-op cost is identical either way.
trait AccessMem {
    fn access_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> AccessOutcome;
}

impl AccessMem for Machine {
    #[inline]
    fn access_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> AccessOutcome {
        Machine::access_routed(self, route, addr, kind, owner)
    }
}

impl AccessMem for SocketView<'_> {
    #[inline]
    fn access_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> AccessOutcome {
        SocketView::access_routed(self, route, addr, kind, owner)
    }
}

/// Several sockets' split-borrowed views driven by one thread: the execution
/// target of a merged component in [`SimEngine::run_slots_parallel`] (sockets
/// coupled by a shadow-attributed owner that has slots on more than one of
/// them). Single-socket components keep using [`SocketView`] directly, so the
/// common path pays no extra indirection.
struct SocketGroup<'a> {
    views: Vec<SocketView<'a>>,
    /// Socket index -> position in `views` (only the member sockets are
    /// populated; a routed access to any other socket is a grouping bug).
    view_of_socket: Vec<usize>,
}

impl AccessMem for SocketGroup<'_> {
    #[inline]
    fn access_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> AccessOutcome {
        let view = self.view_of_socket[route.socket_index()];
        self.views[view].access_routed(route, addr, kind, owner)
    }
}

/// Executes one micro-op for a slot, accumulating its cycle cost, counter
/// deltas and pollution events directly into `report`: the shared cost
/// model of every engine path.
#[inline]
fn execute_op<M: AccessMem>(
    machine: &mut M,
    shadow: &mut Option<ShadowAttribution>,
    route: AccessRoute,
    owner: OwnerId,
    mem_parallelism: f64,
    op: Op,
    report: &mut QuantumReport,
) {
    match op {
        Op::Compute { cycles } => {
            let cycles = u64::from(cycles.max(1));
            report.consumed_cycles += cycles;
            report.pmc_delta.instructions += 1;
            report.pmc_delta.unhalted_core_cycles += cycles;
        }
        Op::Load { addr } | Op::Store { addr } => {
            let kind = if matches!(op, Op::Store { .. }) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let outcome = machine.access_routed(route, addr, kind, owner);
            if outcome.level.reached_llc() {
                if let Some(shadow) = shadow.as_mut() {
                    shadow.observe(owner, addr);
                }
            }
            // Memory-level parallelism: streaming workloads overlap
            // independent misses, so the per-access charge of an LLC
            // miss shrinks by the declared parallelism factor.
            let effective_latency = if outcome.level.is_llc_miss() {
                ((f64::from(outcome.latency) / mem_parallelism).round() as u32).max(1)
            } else {
                outcome.latency
            };
            let cycles = u64::from(effective_latency) + 1;
            report.consumed_cycles += cycles;
            let delta = &mut report.pmc_delta;
            delta.instructions += 1;
            delta.unhalted_core_cycles += cycles;
            delta.memory_accesses += 1;
            delta.ilc_misses += u64::from(outcome.level.missed_l1());
            delta.llc_references += u64::from(outcome.level.reached_llc());
            delta.llc_misses += u64::from(outcome.level.is_llc_miss());
            delta.remote_accesses +=
                u64::from(outcome.level == crate::hierarchy::MemLevel::RemoteMemory);
            report.pollution_events += u64::from(outcome.polluted_llc);
        }
    }
}

/// The batched/epoch interleaving loop shared by [`SimEngine::run_slots`]
/// (whole machine) and the per-socket groups of
/// [`SimEngine::run_slots_parallel`] (split-borrowed socket views).
///
/// Pops the furthest-behind slot from a min-heap on
/// `(consumed_cycles, slot index)` — exactly the slot the reference path's
/// linear scan would pick — and runs it op by op until it would no longer be
/// the scheduling minimum (or its budget is spent), then requeues it.
/// `slots`, `queues`, `routes`, `mlps` and `reports` are parallel arrays.
#[allow(clippy::too_many_arguments)]
fn run_epoch_interleaving<M: AccessMem>(
    machine: &mut M,
    shadow: &mut Option<ShadowAttribution>,
    slots: &mut [&mut ExecSlot<'_>],
    queues: &mut [OpQueue],
    routes: &[AccessRoute],
    mlps: &[f64],
    reports: &mut [QuantumReport],
    cycle_budget: u64,
) {
    let n = slots.len();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n).map(|i| Reverse((0u64, i))).collect();
    while let Some(Reverse((_, i))) = heap.pop() {
        let (limit_cycles, limit_index) = match heap.peek() {
            Some(Reverse((cycles, index))) => (*cycles, *index),
            None => (cycle_budget, usize::MAX),
        };
        let slot = &mut *slots[i];
        let queue = &mut queues[i];
        let report = &mut reports[i];
        let route = routes[i];
        let mlp = mlps[i];
        let owner = slot.owner;
        loop {
            let op = queue.next(&mut *slot.workload);
            execute_op(machine, shadow, route, owner, mlp, op, report);
            let consumed = report.consumed_cycles;
            if consumed >= cycle_budget {
                break;
            }
            if consumed > limit_cycles || (consumed == limit_cycles && i > limit_index) {
                heap.push(Reverse((consumed, i)));
                break;
            }
        }
    }
}

/// A carried op buffer plus the call number that last touched it, so the
/// stale sweep can prune buffers whose tag never reappears.
#[derive(Debug, Clone)]
struct CarriedOps {
    queue: OpQueue,
    last_used: u64,
}

/// The time-stepped simulation engine.
///
/// `Clone` deep-copies the whole machine state (cache hierarchies, shadow
/// replay, carried op buffers), which is what fleet checkpointing relies on:
/// a cloned engine continues bit-identically to the original.
#[derive(Debug, Clone)]
pub struct SimEngine {
    machine: Machine,
    shadow: Option<ShadowAttribution>,
    elapsed_cycles: u64,
    /// Batched-but-unexecuted ops per slot tag, carried across
    /// [`SimEngine::run_slots`] calls so op streams continue seamlessly.
    /// Entries whose tag stays absent for [`CARRY_STALE_AFTER`] calls are
    /// pruned (see [`ExecSlot::tag`] for how stale tags arise).
    op_carry: HashMap<u64, CarriedOps>,
    /// Number of batched (`run_slots` / `run_slots_parallel`) calls so far;
    /// the logical clock of the carry map's staleness accounting.
    run_calls: u64,
    /// Worker threads the most recent [`SimEngine::run_slots_parallel`] call
    /// spawned (0 when it fell back to the serial path). Diagnostics only —
    /// lets tests pin which batches actually parallelise.
    last_parallel_groups: usize,
    /// The cycle-domain trace sink (disabled by default; one enabled-branch
    /// per batched call when off, bench-gated by `trace_overhead`). Cloned
    /// with the engine, so checkpoints carry trace state bit-identically.
    trace: TraceSink,
}

impl SimEngine {
    /// Creates an engine around a machine, without shadow attribution.
    pub fn new(machine: Machine) -> Self {
        SimEngine {
            machine,
            shadow: None,
            elapsed_cycles: 0,
            op_carry: HashMap::new(),
            run_calls: 0,
            last_parallel_groups: 0,
            trace: TraceSink::default(),
        }
    }

    /// The engine's trace sink. Disabled by default; when enabled via
    /// [`SimEngine::trace_mut`], every batched call records an
    /// `engine.run_slots` span (timestamped in [`SimEngine::elapsed_cycles`],
    /// the simulated clock), per-batch instruction/LLC-miss counters and a
    /// batch-cycles histogram.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable access to the trace sink — enable recording with
    /// [`TraceSink::enable`], or drain per-epoch data into an upper-layer
    /// sink with [`TraceSink::drain`].
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Worker threads the most recent [`SimEngine::run_slots_parallel`] call
    /// used, 0 when it took the serial path (fewer than two populated
    /// sockets, or every populated socket coupled into one component by
    /// shadow-attributed owners).
    pub fn parallel_groups_last_call(&self) -> usize {
        self.last_parallel_groups
    }

    /// Discards batched-but-unexecuted ops fetched for `tag`. Call when the
    /// entity behind the tag disappears (VM destroyed) or its workload is
    /// replaced or reset, so a future reuse of the tag starts clean.
    pub fn clear_op_buffer(&mut self, tag: u64) {
        self.op_carry.remove(&tag);
    }

    /// Discards every batched op buffer (see [`SimEngine::clear_op_buffer`]).
    pub fn clear_op_buffers(&mut self) {
        self.op_carry.clear();
    }

    /// Number of batched op buffers currently carried across calls
    /// (diagnostics; lets tests observe the stale sweep).
    pub fn carried_op_buffers(&self) -> usize {
        self.op_carry.len()
    }

    /// Drops carried op buffers whose tag has not been seen for
    /// [`CARRY_STALE_AFTER`] calls: their stream was migrated under a
    /// different default tag or abandoned outright, and nothing will ever
    /// consume them.
    #[cold]
    fn prune_stale_carries(&mut self) {
        let cutoff = self.run_calls.saturating_sub(CARRY_STALE_AFTER);
        self.op_carry
            .retain(|_, carried| carried.last_used >= cutoff);
    }

    /// Bumps the batched-call clock and runs the periodic stale sweep.
    fn begin_batched_call(&mut self) {
        self.run_calls += 1;
        if self.run_calls.is_multiple_of(CARRY_PRUNE_INTERVAL) {
            self.prune_stale_carries();
        }
    }

    /// Enables simulator-based pollution attribution (the McSimA+ stand-in):
    /// LLC-level accesses are additionally replayed into per-owner shadow
    /// caches.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the machine's LLC
    /// geometry is invalid (cannot happen for a validated machine).
    pub fn enable_shadow_attribution(&mut self) -> Result<(), SimError> {
        if self.shadow.is_none() {
            self.shadow = Some(ShadowAttribution::new(self.machine.config().llc.clone())?);
        }
        Ok(())
    }

    /// Disables shadow attribution and drops its state.
    pub fn disable_shadow_attribution(&mut self) {
        self.shadow = None;
    }

    /// The shadow attribution component, if enabled.
    pub fn shadow(&self) -> Option<&ShadowAttribution> {
        self.shadow.as_ref()
    }

    /// Mutable access to the shadow attribution component, if enabled.
    pub fn shadow_mut(&mut self) -> Option<&mut ShadowAttribution> {
        self.shadow.as_mut()
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the simulated machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Total cycles executed by the busiest slot so far (a logical clock):
    /// the sum over every `run_slots*` call of the largest
    /// [`QuantumReport::consumed_cycles`] that call produced. Because the
    /// last op of a quantum may overshoot the requested budget, this runs
    /// slightly ahead of the sum of budgets; before the fix pinned by
    /// `elapsed_cycles_track_the_busiest_slot` it silently advanced by the
    /// budget instead, under-reporting the overshoot. The socket-parallel
    /// path uses the same definition (the busiest slot across all sockets).
    pub fn elapsed_cycles(&self) -> u64 {
        self.elapsed_cycles
    }

    /// Runs every slot for `cycle_budget` cycles, interleaving their
    /// execution in cycle order.
    ///
    /// Returns one report per slot, in the order of `slots`. Slots also
    /// accumulate the counter deltas into their own [`ExecSlot::pmcs`].
    ///
    /// The interleaving is epoch-based: the slot that is furthest behind in
    /// cycle time (ties broken by slot index) executes ops until it catches
    /// up with the next slot, with ops pulled from batched per-slot buffers
    /// ([`Workload::fill_ops`]). The resulting global op order — and
    /// therefore every cache state, counter and pollution attribution — is
    /// bit-identical to advancing one op at a time as
    /// [`SimEngine::run_slots_reference`] does, which a property test
    /// asserts; only the bookkeeping cost per op differs.
    ///
    /// Slots marked [`ExecSlot::blocked`] are skipped entirely: they
    /// execute no ops, consume zero cycles, report all-zero deltas, and
    /// their prefetched op buffers stay parked under their tag for the
    /// wake-up call. The runnable slots behave bit-identically to a call
    /// made without the blocked slots present.
    ///
    /// # Panics
    ///
    /// Panics if a slot references a core that does not exist on the machine
    /// (a programming error in the hypervisor layer).
    pub fn run_slots(
        &mut self,
        slots: &mut [ExecSlot<'_>],
        cycle_budget: u64,
    ) -> Vec<QuantumReport> {
        let n = slots.len();
        let mut reports = vec![QuantumReport::default(); n];
        if n == 0 || cycle_budget == 0 {
            return reports;
        }
        let trace_start = self.elapsed_cycles;
        self.resolve_data_nodes(slots);
        debug_assert!(
            {
                let mut tags: Vec<u64> = slots.iter().map(|s| s.tag).collect();
                tags.sort_unstable();
                tags.windows(2).all(|w| w[0] != w[1])
            },
            "slot tags must be unique within one run_slots call"
        );
        self.begin_batched_call();
        self.refresh_blocked_carries(slots);

        // Blocked slots execute nothing and charge nothing: the active
        // (runnable) slots run exactly the interleaving they would run in a
        // call without the blocked slots, and the blocked slots keep their
        // all-zero default reports. The mapping from active position to
        // original index is monotone, so the epoch tie-break (local array
        // index) preserves relative order — bit-identity discipline holds.
        let active: Vec<usize> = (0..n).filter(|&i| !slots[i].blocked).collect();

        // Pick the op streams up exactly where the previous call left them.
        let mut queues: Vec<OpQueue> = active
            .iter()
            .map(|&i| {
                self.op_carry
                    .remove(&slots[i].tag)
                    .map(|carried| carried.queue)
                    .unwrap_or_default()
            })
            .collect();
        // Memory-level parallelism and the access route are static per
        // slot; hoist both out of the per-op loop.
        let mlps: Vec<f64> = active
            .iter()
            .map(|&i| slots[i].workload.mem_parallelism().max(1.0))
            .collect();
        let routes: Vec<AccessRoute> = active
            .iter()
            .map(|&i| {
                let slot = &slots[i];
                self.machine
                    .route(slot.core, slot.data_node, slot.force_remote)
                    .expect("slot references an unknown core")
            })
            .collect();

        let mut sub_reports = vec![QuantumReport::default(); active.len()];
        if !active.is_empty() {
            let mut slot_refs: Vec<&mut ExecSlot<'_>> =
                slots.iter_mut().filter(|slot| !slot.blocked).collect();
            run_epoch_interleaving(
                &mut self.machine,
                &mut self.shadow,
                &mut slot_refs,
                &mut queues,
                &routes,
                &mlps,
                &mut sub_reports,
                cycle_budget,
            );
        }

        // Scatter the active results back to original slot order; blocked
        // positions keep default reports and default (drained) queues, so
        // `finish_batched_call` leaves their carried ops untouched.
        let mut full_queues: Vec<OpQueue> = Vec::with_capacity(n);
        full_queues.resize_with(n, OpQueue::default);
        for ((&i, report), queue) in active.iter().zip(&sub_reports).zip(queues) {
            reports[i] = *report;
            full_queues[i] = queue;
        }

        self.finish_batched_call(slots, full_queues, &reports);
        self.record_batch_trace(trace_start, &reports);
        reports
    }

    /// Keeps the carried op buffers of blocked slots alive: they are not
    /// consumed this call, but the stream is merely sleeping, not abandoned
    /// — without the refresh a long block would trip the stale-carry sweep
    /// and silently restart the stream on wake.
    fn refresh_blocked_carries(&mut self, slots: &[ExecSlot<'_>]) {
        let run_calls = self.run_calls;
        for slot in slots.iter().filter(|slot| slot.blocked) {
            if let Some(carried) = self.op_carry.get_mut(&slot.tag) {
                carried.last_used = run_calls;
            }
        }
    }

    /// Records one batched call into the trace sink: the `engine.run_slots`
    /// span covering `[start, elapsed)` on the simulated clock, plus PMC
    /// counters and the batch-cycles histogram. A single branch when
    /// tracing is off. Both the serial and socket-parallel paths call this
    /// exactly once per top-level batched call (the parallel path's serial
    /// fallbacks record through `run_slots` itself), so traces are
    /// byte-identical across the two modes.
    fn record_batch_trace(&mut self, start: u64, reports: &[QuantumReport]) {
        if !self.trace.is_enabled() {
            return;
        }
        let dur = self.elapsed_cycles - start;
        self.trace.span("engine", "engine.run_slots", start, dur);
        self.trace.counter_add("engine.batches", 1);
        self.trace.counter_add("engine.cycles", dur);
        let mut instructions = 0u64;
        let mut llc_misses = 0u64;
        for report in reports {
            instructions += report.pmc_delta.instructions;
            llc_misses += report.pmc_delta.llc_misses;
        }
        self.trace.counter_add("engine.instructions", instructions);
        self.trace.counter_add("engine.llc_misses", llc_misses);
        self.trace.hist_record("engine.batch_cycles", dur);
    }

    /// Folds a call's counter deltas into the slots' cumulative PMCs (done
    /// once per call instead of once per op), preserves
    /// fetched-but-unexecuted ops for the next call on each tag, and
    /// advances the logical clock by the busiest slot's consumed cycles.
    fn finish_batched_call(
        &mut self,
        slots: &mut [ExecSlot<'_>],
        queues: Vec<OpQueue>,
        reports: &[QuantumReport],
    ) {
        let run_calls = self.run_calls;
        for ((slot, queue), report) in slots.iter_mut().zip(queues).zip(reports) {
            slot.pmcs += report.pmc_delta;
            if !queue.is_drained() {
                self.op_carry.insert(
                    slot.tag,
                    CarriedOps {
                        queue,
                        last_used: run_calls,
                    },
                );
            }
        }
        self.elapsed_cycles += reports
            .iter()
            .map(|report| report.consumed_cycles)
            .max()
            .unwrap_or(0);
    }

    /// The semantic reference for [`SimEngine::run_slots`]: advance the
    /// furthest-behind slot by exactly one op per iteration, pulled straight
    /// from the workload with no batching. O(slots) bookkeeping per op —
    /// kept for the equivalence property tests and as the baseline the
    /// substrate benchmarks compare against.
    ///
    /// # Panics
    ///
    /// Panics if a slot references a core that does not exist on the machine.
    pub fn run_slots_reference(
        &mut self,
        slots: &mut [ExecSlot<'_>],
        cycle_budget: u64,
    ) -> Vec<QuantumReport> {
        let n = slots.len();
        let mut reports = vec![QuantumReport::default(); n];
        if n == 0 || cycle_budget == 0 {
            return reports;
        }
        self.resolve_data_nodes(slots);

        // Interleave in cycle order: always advance the slot that is the
        // furthest behind, scanning linearly (first index wins ties).
        loop {
            let mut next: Option<usize> = None;
            let mut min_cycles = u64::MAX;
            for (i, report) in reports.iter().enumerate() {
                if report.consumed_cycles < cycle_budget && report.consumed_cycles < min_cycles {
                    min_cycles = report.consumed_cycles;
                    next = Some(i);
                }
            }
            let Some(i) = next else { break };

            let slot = &mut slots[i];
            let op = slot.workload.next_op();
            let mlp = slot.workload.mem_parallelism().max(1.0);
            let route = self
                .machine
                .route(slot.core, slot.data_node, slot.force_remote)
                .expect("slot references an unknown core");
            execute_op(
                &mut self.machine,
                &mut self.shadow,
                route,
                slot.owner,
                mlp,
                op,
                &mut reports[i],
            );
        }

        for (slot, report) in slots.iter_mut().zip(&reports) {
            slot.pmcs += report.pmc_delta;
        }
        self.elapsed_cycles += reports
            .iter()
            .map(|report| report.consumed_cycles)
            .max()
            .unwrap_or(0);
        reports
    }

    /// Runs every slot for `cycle_budget` cycles like
    /// [`SimEngine::run_slots`], executing each socket's slots on its own
    /// scoped thread.
    ///
    /// Sockets share no cache state, so the machine is split into
    /// independently mutable per-socket views ([`Machine::sockets_mut`]) and
    /// the batch is partitioned by the socket of each slot's core; every
    /// group runs the same epoch interleaving as the serial path against its
    /// own view. Within a socket the produced op order — and therefore every
    /// cache state, counter, pollution attribution and shadow observation —
    /// is bit-identical to [`SimEngine::run_slots`] and
    /// [`SimEngine::run_slots_reference`] over the same slots; only the
    /// cross-socket interleaving in wall-clock time differs, which no
    /// simulation output observes. Shadow-attribution state is partitioned
    /// by owner along the same socket boundaries and merged back after the
    /// threads join.
    ///
    /// Falls back to the serial path when fewer than two sockets have slots
    /// (nothing to parallelise). When shadow attribution is enabled and an
    /// owner has slots on several sockets *in the current batch* (its single
    /// shadow cache cannot be driven from two threads deterministically),
    /// only the sockets coupled by such owners are merged onto one thread —
    /// every other populated socket keeps its own thread. Only when the
    /// coupling collapses every populated socket into a single component
    /// does the whole call run serially. Owners that spanned sockets in
    /// *earlier* calls, or that merely have shadow state but no slot in this
    /// batch, never affect the decision.
    ///
    /// [`ExecSlot::blocked`] slots are skipped exactly as in the serial
    /// path — they populate no socket group, couple no sockets, execute
    /// nothing and keep their carried ops parked — so the two paths stay
    /// bit-identical under blocking too.
    ///
    /// # Panics
    ///
    /// Panics if a slot references a core that does not exist on the machine
    /// (a programming error in the hypervisor layer).
    pub fn run_slots_parallel(
        &mut self,
        slots: &mut [ExecSlot<'_>],
        cycle_budget: u64,
    ) -> Vec<QuantumReport> {
        let n = slots.len();
        self.last_parallel_groups = 0;
        if n == 0 || cycle_budget == 0 {
            return vec![QuantumReport::default(); n];
        }
        let trace_start = self.elapsed_cycles;
        // Decide the serial fallback before resolving any routes: on a
        // single-socket machine (the default `figures` machine) every tick
        // takes this exit, so it must stay allocation-free beyond the
        // grouping itself.
        let num_sockets = self.machine.num_sockets();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_sockets];
        let mut slot_sockets: Vec<usize> = Vec::with_capacity(n);
        for (i, slot) in slots.iter().enumerate() {
            let socket = self
                .machine
                .socket_of(slot.core)
                .expect("slot references an unknown core")
                .0;
            // Blocked slots execute nothing: they neither populate a socket
            // group nor couple sockets via shadow owners. The serial path
            // applies the same filter, so the per-socket active order — and
            // with it bit-identity — is preserved.
            if !slot.blocked {
                groups[socket].push(i);
            }
            slot_sockets.push(socket);
        }
        let populated = groups.iter().filter(|group| !group.is_empty()).count();
        if populated < 2 {
            return self.run_slots(slots, cycle_budget);
        }
        // Execution components: normally one per populated socket. With
        // shadow attribution on, sockets sharing an owner in this batch must
        // run on the same thread (one shadow cache per owner), so they are
        // unioned into one component. Only owners with slots in the current
        // batch participate — stale shadow state or placements from earlier
        // calls cannot force a merge.
        let mut component: Vec<usize> = (0..num_sockets).collect();
        fn find(component: &mut [usize], mut socket: usize) -> usize {
            while component[socket] != socket {
                component[socket] = component[component[socket]];
                socket = component[socket];
            }
            socket
        }
        if self.shadow.is_some() {
            let mut owner_socket: HashMap<OwnerId, usize> = HashMap::with_capacity(n);
            for (slot, &socket) in slots.iter().zip(&slot_sockets) {
                if slot.blocked {
                    continue;
                }
                if let Some(&previous) = owner_socket.get(&slot.owner) {
                    let a = find(&mut component, previous);
                    let b = find(&mut component, socket);
                    // Union by smaller root so component labels stay
                    // deterministic.
                    component[a.max(b)] = a.min(b);
                } else {
                    owner_socket.insert(slot.owner, socket);
                }
            }
        }
        // Enumerate components of populated sockets in ascending order of
        // their smallest member socket (the spawn/merge order).
        let mut component_of_root: Vec<Option<usize>> = vec![None; num_sockets];
        let mut component_sockets: Vec<Vec<usize>> = Vec::new();
        for (socket, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let root = find(&mut component, socket);
            match component_of_root[root] {
                Some(c) => component_sockets[c].push(socket),
                None => {
                    component_of_root[root] = Some(component_sockets.len());
                    component_sockets.push(vec![socket]);
                }
            }
        }
        if component_sockets.len() < 2 {
            // Every populated socket is coupled to every other: nothing left
            // to parallelise.
            return self.run_slots(slots, cycle_budget);
        }

        self.resolve_data_nodes(slots);
        let routes: Vec<AccessRoute> = slots
            .iter()
            .map(|slot| {
                self.machine
                    .route(slot.core, slot.data_node, slot.force_remote)
                    .expect("slot references an unknown core")
            })
            .collect();

        debug_assert!(
            {
                let mut tags: Vec<u64> = slots.iter().map(|s| s.tag).collect();
                tags.sort_unstable();
                tags.windows(2).all(|w| w[0] != w[1])
            },
            "slot tags must be unique within one run_slots_parallel call"
        );
        self.begin_batched_call();
        self.refresh_blocked_carries(slots);

        let mut queues: Vec<Option<OpQueue>> = slots
            .iter()
            .map(|slot| {
                if slot.blocked {
                    // The stream stays parked in the carry map.
                    None
                } else {
                    self.op_carry.remove(&slot.tag).map(|carried| carried.queue)
                }
            })
            .collect();
        let mlps: Vec<f64> = slots
            .iter()
            .map(|slot| slot.workload.mem_parallelism().max(1.0))
            .collect();
        // One work item per component, in component order: the component's
        // slots (with their original indices, ascending — the relative order
        // the epoch tie-break depends on) plus its parallel arrays.
        struct GroupWork<'engine, 'wl> {
            sockets: Vec<usize>,
            indices: Vec<usize>,
            slots: Vec<&'engine mut ExecSlot<'wl>>,
            queues: Vec<OpQueue>,
            routes: Vec<AccessRoute>,
            mlps: Vec<f64>,
            shadow: Option<ShadowAttribution>,
        }
        let mut work: Vec<GroupWork<'_, '_>> = component_sockets
            .into_iter()
            .map(|sockets| {
                let mut indices: Vec<usize> = sockets
                    .iter()
                    .flat_map(|&s| groups[s].iter().copied())
                    .collect();
                indices.sort_unstable();
                let shadow = self.shadow.as_mut().map(|shadow| {
                    let owners: Vec<OwnerId> = indices.iter().map(|&i| slots[i].owner).collect();
                    shadow.take_partition(&owners)
                });
                GroupWork {
                    sockets,
                    slots: Vec::with_capacity(indices.len()),
                    queues: indices
                        .iter()
                        .map(|&i| queues[i].take().unwrap_or_default())
                        .collect(),
                    routes: indices.iter().map(|&i| routes[i]).collect(),
                    mlps: indices.iter().map(|&i| mlps[i]).collect(),
                    shadow,
                    indices,
                }
            })
            .collect();
        // Distribute the exclusive slot borrows into their components (in
        // original index order, matching each component's sorted `indices`).
        let mut work_of_socket: Vec<Option<usize>> = vec![None; num_sockets];
        for (w, group) in work.iter().enumerate() {
            for &socket in &group.sockets {
                work_of_socket[socket] = Some(w);
            }
        }
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.blocked {
                continue;
            }
            let w = work_of_socket[routes[i].socket_index()].expect("populated socket");
            work[w].slots.push(slot);
        }
        self.last_parallel_groups = work.len();

        // Execute every component on its own scoped thread, against the
        // split-borrowed views of its member sockets. Single-socket
        // components (the common case) drive their `SocketView` directly;
        // merged components route each access to the right member view.
        let mut views: Vec<Option<SocketView<'_>>> = self.machine.sockets_mut().map(Some).collect();
        let finished: Vec<(GroupWork<'_, '_>, Vec<QuantumReport>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(work.len());
            for mut group in work {
                if group.sockets.len() == 1 {
                    let mut view = views[group.sockets[0]].take().expect("one view per socket");
                    handles.push(scope.spawn(move || {
                        let mut reports = vec![QuantumReport::default(); group.slots.len()];
                        run_epoch_interleaving(
                            &mut view,
                            &mut group.shadow,
                            &mut group.slots,
                            &mut group.queues,
                            &group.routes,
                            &group.mlps,
                            &mut reports,
                            cycle_budget,
                        );
                        (group, reports)
                    }));
                } else {
                    let mut view_of_socket = vec![usize::MAX; num_sockets];
                    let mut member_views = Vec::with_capacity(group.sockets.len());
                    for &socket in &group.sockets {
                        view_of_socket[socket] = member_views.len();
                        member_views.push(views[socket].take().expect("one view per socket"));
                    }
                    let mut view = SocketGroup {
                        views: member_views,
                        view_of_socket,
                    };
                    handles.push(scope.spawn(move || {
                        let mut reports = vec![QuantumReport::default(); group.slots.len()];
                        run_epoch_interleaving(
                            &mut view,
                            &mut group.shadow,
                            &mut group.slots,
                            &mut group.queues,
                            &group.routes,
                            &group.mlps,
                            &mut reports,
                            cycle_budget,
                        );
                        (group, reports)
                    }));
                }
            }
            handles
                .into_iter()
                .map(|handle| handle.join().expect("socket worker panicked"))
                .collect()
        });
        drop(views);

        // Deterministic merge: scatter reports back to original slot order
        // and reabsorb shadow partitions in component order (`finished`
        // preserves spawn order, which is component order).
        let mut reports = vec![QuantumReport::default(); n];
        let mut merged_queues: Vec<OpQueue> = Vec::with_capacity(n);
        merged_queues.resize_with(n, OpQueue::default);
        for (group, group_reports) in finished {
            for ((&orig, report), queue) in
                group.indices.iter().zip(group_reports).zip(group.queues)
            {
                reports[orig] = report;
                merged_queues[orig] = queue;
            }
            if let (Some(shadow), Some(part)) = (self.shadow.as_mut(), group.shadow) {
                shadow.merge(part);
            }
        }
        self.finish_batched_call(slots, merged_queues, &reports);
        self.record_batch_trace(trace_start, &reports);
        reports
    }

    /// Resolves lazy data-node placement and validates slot cores.
    fn resolve_data_nodes(&self, slots: &mut [ExecSlot<'_>]) {
        for slot in slots.iter_mut() {
            let node = self
                .machine
                .numa_node_of(slot.core)
                .expect("slot references an unknown core");
            if slot.data_node.0 == usize::MAX {
                slot.data_node = node;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineConfig;
    use crate::workload::{ComputeOnly, FixedSequence};

    fn engine() -> SimEngine {
        SimEngine::new(Machine::new(MachineConfig::scaled_paper_machine(64)))
    }

    #[test]
    fn empty_slots_or_zero_budget_are_noops() {
        let mut e = engine();
        assert!(e.run_slots(&mut [], 1000).is_empty());
        let mut wl = ComputeOnly::new(1);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 0);
        assert_eq!(reports[0].consumed_cycles, 0);
    }

    #[test]
    fn compute_only_reaches_ipc_one() {
        let mut e = engine();
        let mut wl = ComputeOnly::new(1);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 10_000);
        assert!(reports[0].consumed_cycles >= 10_000);
        assert!((reports[0].ipc() - 1.0).abs() < 1e-9);
        assert_eq!(reports[0].pmc_delta.llc_misses, 0);
    }

    #[test]
    fn memory_ops_cost_hierarchy_latency() {
        let mut e = engine();
        let mut wl = FixedSequence::new("one-line", vec![Op::Load { addr: 0 }]);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        let pmc = reports[0].pmc_delta;
        // First access misses everywhere (~181 cycles) then hits L1 (5 cycles).
        assert_eq!(pmc.llc_misses, 1);
        assert!(pmc.instructions > 100);
        assert!(reports[0].consumed_cycles >= 1_000);
    }

    #[test]
    fn all_slots_consume_the_full_budget() {
        let mut e = engine();
        let mut fast = ComputeOnly::new(1);
        let mut slow = FixedSequence::new(
            "mem",
            vec![Op::Load { addr: 0 }, Op::Load { addr: 1 << 20 }],
        );
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut fast),
            ExecSlot::new(CoreId(1), 2, &mut slow),
        ];
        let reports = e.run_slots(&mut slots, 5_000);
        for report in &reports {
            assert!(report.consumed_cycles >= 5_000);
            // Overshoot is bounded by the cost of a single op.
            assert!(report.consumed_cycles < 5_000 + 400);
        }
    }

    #[test]
    fn parallel_slots_on_same_socket_contend_for_the_llc() {
        // A "sensitive" workload whose working set fits the LLC but not the
        // L2, co-run with a streaming "disruptive" workload.
        let config = MachineConfig::scaled_paper_machine(64);
        let llc_lines = config.llc.num_lines();
        let sensitive_lines: Vec<Op> = (0..llc_lines / 2)
            .map(|i| Op::Load { addr: i * 64 })
            .collect();

        let solo_misses = {
            let mut e = SimEngine::new(Machine::new(config.clone()));
            let mut wl = FixedSequence::new("sensitive", sensitive_lines.clone());
            let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
            // Warm up, then measure.
            e.run_slots(std::slice::from_mut(&mut slot), 200_000);
            slot.pmcs = PmcSet::default();
            let r = e.run_slots(std::slice::from_mut(&mut slot), 200_000);
            r[0].pmc_delta.llc_misses
        };

        let contended_misses = {
            let mut e = SimEngine::new(Machine::new(config));
            let mut wl = FixedSequence::new("sensitive", sensitive_lines);
            let disruptor_ops: Vec<Op> = (0..4096u64)
                .map(|i| Op::Load {
                    addr: (1 << 30) + i * 64,
                })
                .collect();
            let mut dis = FixedSequence::new("disruptor", disruptor_ops).with_mem_parallelism(8.0);
            let mut slots = vec![
                ExecSlot::new(CoreId(0), 1, &mut wl),
                ExecSlot::new(CoreId(1), 2, &mut dis),
            ];
            e.run_slots(&mut slots, 200_000);
            slots[0].pmcs = PmcSet::default();
            let r = e.run_slots(&mut slots, 200_000);
            r[0].pmc_delta.llc_misses
        };

        assert!(
            contended_misses > solo_misses * 2,
            "co-running a streaming disruptor should inflate LLC misses (solo={solo_misses}, contended={contended_misses})"
        );
    }

    #[test]
    fn force_remote_increases_remote_access_count() {
        let mut e = SimEngine::new(Machine::new(MachineConfig::scaled_paper_numa_machine(64)));
        let ops: Vec<Op> = (0..512u64).map(|i| Op::Load { addr: i * 4096 }).collect();
        let mut wl = FixedSequence::new("mem", ops);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_force_remote(true);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 50_000);
        assert!(reports[0].pmc_delta.remote_accesses > 0);
        assert_eq!(
            reports[0].pmc_delta.remote_accesses,
            reports[0].pmc_delta.llc_misses
        );
    }

    #[test]
    fn shadow_attribution_tracks_solo_misses_under_contention() {
        let config = MachineConfig::scaled_paper_machine(64);
        let mut e = SimEngine::new(Machine::new(config.clone()));
        e.enable_shadow_attribution().unwrap();
        // Small reused set for owner 1, huge stream for owner 2.
        let reused: Vec<Op> = (0..64u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let stream: Vec<Op> = (0..100_000u64)
            .map(|i| Op::Load {
                addr: (1 << 32) + i * 64,
            })
            .collect();
        let mut wl1 = FixedSequence::new("reused", reused);
        let mut wl2 = FixedSequence::new("stream", stream).with_mem_parallelism(8.0);
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut wl1),
            ExecSlot::new(CoreId(1), 2, &mut wl2),
        ];
        e.run_slots(&mut slots, 300_000);
        let shadow = e.shadow().unwrap();
        // In the shared LLC owner 1 suffers from owner 2's stream, but its
        // shadow (solo) miss count stays at the cold-miss level.
        assert!(shadow.solo_misses(1) <= 64 * 3);
        assert!(shadow.solo_misses(2) > 1000);
        assert!(slots[0].pmcs.llc_misses >= shadow.solo_misses(1));
    }

    #[test]
    fn pollution_events_are_reported_for_the_polluter() {
        let config = MachineConfig::scaled_paper_machine(64);
        let llc_lines = config.llc.num_lines();
        let mut e = SimEngine::new(Machine::new(config));
        let victim_ops: Vec<Op> = (0..llc_lines / 2)
            .map(|i| Op::Load { addr: i * 64 })
            .collect();
        let stream: Vec<Op> = (0..1_000_000u64)
            .map(|i| Op::Load {
                addr: (1 << 32) + i * 64,
            })
            .collect();
        let mut victim = FixedSequence::new("victim", victim_ops);
        let mut polluter = FixedSequence::new("polluter", stream).with_mem_parallelism(8.0);
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut victim),
            ExecSlot::new(CoreId(1), 2, &mut polluter),
        ];
        // Warm the LLC with the victim, then let both run.
        e.run_slots(&mut slots[..1], 200_000);
        let reports = e.run_slots(&mut slots, 200_000);
        assert!(
            reports[1].pollution_events > 0,
            "the streaming owner should evict victim lines"
        );
    }

    #[test]
    fn mem_parallelism_speeds_up_streaming_workloads() {
        let ops: Vec<Op> = (0..100_000u64)
            .map(|i| Op::Load { addr: i * 4096 })
            .collect();
        let run = |mlp: f64| -> u64 {
            let mut e = engine();
            let mut wl = FixedSequence::new("stream", ops.clone()).with_mem_parallelism(mlp);
            let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
            let r = e.run_slots(std::slice::from_mut(&mut slot), 100_000);
            r[0].pmc_delta.llc_misses
        };
        let dependent = run(1.0);
        let streaming = run(8.0);
        assert!(
            streaming > dependent * 3,
            "an MLP of 8 should let the stream touch far more lines per cycle (dependent={dependent}, streaming={streaming})"
        );
    }

    #[test]
    fn elapsed_cycles_accumulate() {
        let mut e = engine();
        let mut wl = ComputeOnly::new(1);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        e.run_slots(std::slice::from_mut(&mut slot), 1000);
        e.run_slots(std::slice::from_mut(&mut slot), 500);
        // One-cycle compute ops land exactly on the budget, so the logical
        // clock equals the sum of budgets here.
        assert_eq!(e.elapsed_cycles(), 1500);
    }

    #[test]
    fn elapsed_cycles_track_the_busiest_slot() {
        // Memory ops overshoot the budget (the last op completes), so the
        // logical clock must advance by the busiest slot's consumed cycles,
        // not by the requested budget.
        let mut e = engine();
        let mut fast = ComputeOnly::new(1);
        let mut slow = FixedSequence::new(
            "mem",
            (0..64u64).map(|i| Op::Load { addr: i * 4096 }).collect(),
        );
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut fast),
            ExecSlot::new(CoreId(1), 2, &mut slow),
        ];
        let reports = e.run_slots(&mut slots, 1_000);
        let busiest = reports.iter().map(|r| r.consumed_cycles).max().unwrap();
        assert!(busiest > 1_000, "a memory op must overshoot the budget");
        assert_eq!(e.elapsed_cycles(), busiest);
        // The reference path uses the same semantics.
        let mut e = engine();
        let mut slow = FixedSequence::new(
            "mem",
            (0..64u64).map(|i| Op::Load { addr: i * 4096 }).collect(),
        );
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut slow);
        let reports = e.run_slots_reference(std::slice::from_mut(&mut slot), 1_000);
        assert_eq!(e.elapsed_cycles(), reports[0].consumed_cycles);
    }

    #[test]
    fn ilc_misses_count_l2_hits_too() {
        // L1D at scale 64: 512 B, 8-way, 64 B lines => 1 set. Ten distinct
        // lines overflow it but fit the 4 KiB L2, so re-touching them misses
        // L1 and hits L2: each such access is an ILC miss but not an LLC
        // reference.
        let mut e = engine();
        let lines: Vec<Op> = (0..10u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut wl = FixedSequence::new("l2-resident", lines);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl);
        e.run_slots(std::slice::from_mut(&mut slot), 50_000);
        let pmcs = slot.pmcs;
        assert!(
            pmcs.ilc_misses > pmcs.llc_references,
            "L2 hits must count as ILC misses (ilc={}, llc_refs={})",
            pmcs.ilc_misses,
            pmcs.llc_references
        );
        assert!(pmcs.ilc_misses <= pmcs.memory_accesses);
    }

    #[test]
    fn stale_op_carries_are_pruned() {
        let mut e = engine();
        let ops: Vec<Op> = (0..1024u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut abandoned = FixedSequence::new("abandoned", ops.clone());
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut abandoned).with_tag(7);
        e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        assert_eq!(e.carried_op_buffers(), 1, "tag 7 carries unexecuted ops");
        // Tag 7 never reappears; a live stream keeps running under tag 8.
        let mut live = FixedSequence::new("live", ops);
        for _ in 0..(CARRY_STALE_AFTER + CARRY_PRUNE_INTERVAL + 1) {
            let mut slot = ExecSlot::new(CoreId(1), 2, &mut live).with_tag(8);
            e.run_slots(std::slice::from_mut(&mut slot), 500);
        }
        assert_eq!(
            e.carried_op_buffers(),
            1,
            "the abandoned tag must be pruned while the live tag survives"
        );
        // The live stream still continues: running again works.
        let mut slot = ExecSlot::new(CoreId(1), 2, &mut live).with_tag(8);
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 500);
        assert!(reports[0].consumed_cycles >= 500);
    }

    #[test]
    fn recently_used_carries_survive_the_sweep() {
        let mut e = engine();
        let ops: Vec<Op> = (0..1024u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut a = FixedSequence::new("a", ops.clone());
        let mut b = FixedSequence::new("b", ops);
        // Alternative execution: the two tags take turns, so neither ever
        // goes stale even across many sweeps.
        for call in 0..(2 * CARRY_PRUNE_INTERVAL + 3) {
            if call % 2 == 0 {
                let mut slot = ExecSlot::new(CoreId(0), 1, &mut a).with_tag(1);
                e.run_slots(std::slice::from_mut(&mut slot), 500);
            } else {
                let mut slot = ExecSlot::new(CoreId(0), 2, &mut b).with_tag(2);
                e.run_slots(std::slice::from_mut(&mut slot), 500);
            }
        }
        assert_eq!(e.carried_op_buffers(), 2);
    }

    fn lcg_ops(seed: u64, count: usize) -> Vec<Op> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let draw = state >> 33;
                match draw % 4 {
                    0 => Op::Compute {
                        cycles: (draw / 4 % 7 + 1) as u32,
                    },
                    1 => Op::Store {
                        addr: (draw / 4 % 4096) * 64,
                    },
                    _ => Op::Load {
                        addr: (draw / 4 % 4096) * 64,
                    },
                }
            })
            .collect()
    }

    /// Runs the same four-slot, two-socket scenario through `run_slots` and
    /// `run_slots_parallel` and asserts identical observable state.
    fn assert_parallel_matches_serial(shadow: bool) {
        let config = MachineConfig::scaled_paper_numa_machine(64);
        let run = |parallel: bool| {
            let mut e = SimEngine::new(Machine::new(config.clone()));
            if shadow {
                e.enable_shadow_attribution().unwrap();
            }
            let mut workloads: Vec<FixedSequence> = (0..4)
                .map(|w| {
                    FixedSequence::new(format!("wl{w}"), lcg_ops(w as u64 + 1, 2048))
                        .with_mem_parallelism(1.0 + w as f64)
                })
                .collect();
            let mut all_reports = Vec::new();
            for round in 0..3 {
                let mut slots: Vec<ExecSlot<'_>> = workloads
                    .iter_mut()
                    .enumerate()
                    .map(|(w, wl)| {
                        // Slots 0,1 on socket 0 (cores 0,1); slots 2,3 on
                        // socket 1 (cores 4,5).
                        let core = CoreId(if w < 2 { w } else { w + 2 });
                        ExecSlot::new(core, w as OwnerId + 1, wl).with_tag(w as u64 + 1)
                    })
                    .collect();
                let reports = if parallel {
                    e.run_slots_parallel(&mut slots, 8_000 + round * 1_000)
                } else {
                    e.run_slots(&mut slots, 8_000 + round * 1_000)
                };
                all_reports.push(reports);
            }
            let llc0 = e.machine().llc_stats(crate::topology::SocketId(0)).unwrap();
            let llc1 = e.machine().llc_stats(crate::topology::SocketId(1)).unwrap();
            let shadow_misses: Vec<u64> = (1..=4)
                .map(|owner| e.shadow().map(|s| s.solo_misses(owner)).unwrap_or(0))
                .collect();
            (all_reports, llc0, llc1, shadow_misses, e.elapsed_cycles())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn parallel_path_matches_serial_across_sockets() {
        assert_parallel_matches_serial(false);
    }

    #[test]
    fn parallel_path_matches_serial_with_shadow_attribution() {
        assert_parallel_matches_serial(true);
    }

    #[test]
    fn parallel_path_falls_back_on_a_single_socket() {
        // All slots on socket 0: the parallel path must delegate to the
        // serial path and still be correct.
        let mut e = engine();
        let mut a = ComputeOnly::new(1);
        let mut b = ComputeOnly::new(2);
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut a),
            ExecSlot::new(CoreId(1), 2, &mut b),
        ];
        let reports = e.run_slots_parallel(&mut slots, 5_000);
        assert!(reports.iter().all(|r| r.consumed_cycles >= 5_000));
    }

    #[test]
    fn parallel_path_falls_back_when_an_owner_spans_sockets_with_shadow() {
        let config = MachineConfig::scaled_paper_numa_machine(64);
        let mut e = SimEngine::new(Machine::new(config));
        e.enable_shadow_attribution().unwrap();
        let ops: Vec<Op> = (0..256u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut a = FixedSequence::new("a", ops.clone());
        let mut b = FixedSequence::new("b", ops);
        // Owner 1 has slots on both sockets: one shadow cache, two threads —
        // the engine must take the serial path instead.
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut a).with_tag(10),
            ExecSlot::new(CoreId(4), 1, &mut b).with_tag(11),
        ];
        let reports = e.run_slots_parallel(&mut slots, 5_000);
        assert!(reports.iter().all(|r| r.consumed_cycles >= 5_000));
        assert!(e.shadow().unwrap().solo_misses(1) > 0);
    }

    #[test]
    fn spanning_owner_with_shadow_merges_only_its_sockets() {
        // 4-socket machine, shadow on. Owner 1 spans sockets 0 and 1: those
        // two sockets must share a thread (one shadow cache), but sockets 2
        // and 3 keep their own threads — the batch must NOT collapse to the
        // serial path. Results stay bit-identical to the serial engine.
        let config = MachineConfig::scaled_cloud_machine(4, 64);
        let cps = config.cores_per_socket;
        let ops = |seed: u64| lcg_ops(seed, 2048);
        let run = |parallel: bool| {
            let mut e = SimEngine::new(Machine::new(config.clone()));
            e.enable_shadow_attribution().unwrap();
            let mut workloads: Vec<FixedSequence> = (0..4)
                .map(|w| FixedSequence::new(format!("wl{w}"), ops(w as u64 + 1)))
                .collect();
            let mut iter = workloads.iter_mut();
            let cores = [0, cps, 2 * cps, 3 * cps];
            let owners = [1u16, 1, 2, 3];
            let mut slots: Vec<ExecSlot<'_>> = cores
                .iter()
                .zip(owners)
                .map(|(&core, owner)| {
                    ExecSlot::new(CoreId(core), owner, iter.next().unwrap())
                        .with_tag(core as u64 + 100)
                })
                .collect();
            let reports = if parallel {
                e.run_slots_parallel(&mut slots, 20_000)
            } else {
                e.run_slots(&mut slots, 20_000)
            };
            let groups = e.parallel_groups_last_call();
            let shadow: Vec<u64> = (1..=3)
                .map(|o| e.shadow().unwrap().solo_misses(o))
                .collect();
            let llc: Vec<_> = (0..4)
                .map(|s| e.machine().llc_stats(crate::topology::SocketId(s)).unwrap())
                .collect();
            (reports, shadow, llc, e.elapsed_cycles(), groups)
        };
        let (s_reports, s_shadow, s_llc, s_elapsed, _) = run(false);
        let (p_reports, p_shadow, p_llc, p_elapsed, p_groups) = run(true);
        assert_eq!(
            p_groups, 3,
            "sockets {{0,1}} merge, sockets 2 and 3 stay independent"
        );
        assert_eq!(s_reports, p_reports);
        assert_eq!(s_shadow, p_shadow);
        assert_eq!(s_llc, p_llc);
        assert_eq!(s_elapsed, p_elapsed);
    }

    #[test]
    fn owner_span_check_only_sees_the_current_batch() {
        // Call 1: owner 1 spans both sockets with shadow on -> one component,
        // serial fallback. Call 2: every owner (including owner 1, which
        // still has shadow state from call 1) is confined to one socket ->
        // the batch must parallelise; history must not force a fallback.
        let config = MachineConfig::scaled_paper_numa_machine(64);
        let mut e = SimEngine::new(Machine::new(config));
        e.enable_shadow_attribution().unwrap();
        let ops: Vec<Op> = (0..512u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut a = FixedSequence::new("a", ops.clone());
        let mut b = FixedSequence::new("b", ops.clone());
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut a).with_tag(10),
            ExecSlot::new(CoreId(4), 1, &mut b).with_tag(11),
        ];
        e.run_slots_parallel(&mut slots, 5_000);
        assert_eq!(
            e.parallel_groups_last_call(),
            0,
            "a spanning owner couples both sockets: serial fallback"
        );
        drop(slots);
        let mut c = FixedSequence::new("c", ops);
        let mut slots = vec![
            ExecSlot::new(CoreId(0), 1, &mut a).with_tag(10),
            ExecSlot::new(CoreId(4), 2, &mut c).with_tag(12),
        ];
        let reports = e.run_slots_parallel(&mut slots, 5_000);
        assert_eq!(
            e.parallel_groups_last_call(),
            2,
            "owner 1's earlier span (and its shadow state) must not serialise a batch where every owner sits on one socket"
        );
        assert!(reports.iter().all(|r| r.consumed_cycles >= 5_000));
        assert!(e.shadow().unwrap().solo_misses(1) > 0);
    }

    #[test]
    fn op_buffers_carry_across_calls_per_tag() {
        // A FixedSequence visiting distinct lines: if the engine dropped the
        // prefetched-but-unexecuted ops between calls, the visited address
        // sequence would skip lines and the total distinct-line count of two
        // short calls would diverge from one long call.
        let ops: Vec<Op> = (0..1024u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let run = |budgets: &[u64]| -> u64 {
            let mut e = engine();
            let mut wl = FixedSequence::new("seq", ops.clone());
            for &budget in budgets {
                let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(7);
                e.run_slots(std::slice::from_mut(&mut slot), budget);
            }
            e.machine()
                .socket(crate::topology::SocketId(0))
                .unwrap()
                .llc()
                .stats()
                .accesses
        };
        let split = run(&[3_000, 3_000, 3_000]);
        let joined = run(&[9_000]);
        // Each extra call can overshoot by at most one op, so the two runs
        // stay within a few accesses of each other.
        assert!(
            split.abs_diff(joined) <= 4,
            "split={split}, joined={joined}"
        );
    }

    #[test]
    fn clear_op_buffer_restarts_the_stream_for_a_tag() {
        let ops: Vec<Op> = (0..256u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut e = engine();
        let mut wl = FixedSequence::new("seq", ops);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(42);
        e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        e.clear_op_buffer(42);
        e.clear_op_buffers();
        // After clearing, running again must still work (fresh fetch).
        let reports = e.run_slots(std::slice::from_mut(&mut slot), 1_000);
        assert!(reports[0].consumed_cycles >= 1_000);
    }

    #[test]
    fn blocked_slots_report_nothing_and_charge_nothing() {
        // A blocked slot must produce an all-zero report, leave its own
        // PMCs untouched, and leave the runnable slots' results exactly as
        // a call without it would.
        let ops = lcg_ops(3, 2048);
        let run = |with_blocked: bool| {
            let mut e = engine();
            let mut runnable = FixedSequence::new("runnable", ops.clone());
            let mut sleeper = FixedSequence::new("sleeper", ops.clone());
            let mut slots = vec![ExecSlot::new(CoreId(0), 1, &mut runnable).with_tag(1)];
            if with_blocked {
                slots.push(
                    ExecSlot::new(CoreId(1), 2, &mut sleeper)
                        .with_tag(2)
                        .with_blocked(true),
                );
            }
            let reports = e.run_slots(&mut slots, 10_000);
            if with_blocked {
                assert_eq!(reports[1], QuantumReport::default());
                assert_eq!(slots[1].pmcs, PmcSet::default());
            }
            (reports[0], slots[0].pmcs, e.elapsed_cycles())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn an_all_blocked_call_is_free_and_preserves_carries() {
        let ops: Vec<Op> = (0..1024u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let mut e = engine();
        let mut wl = FixedSequence::new("seq", ops);
        let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(9);
        e.run_slots(std::slice::from_mut(&mut slot), 3_000);
        let elapsed = e.elapsed_cycles();
        let carried = e.carried_op_buffers();
        let mut blocked = ExecSlot::new(CoreId(0), 1, &mut wl)
            .with_tag(9)
            .with_blocked(true);
        let reports = e.run_slots(std::slice::from_mut(&mut blocked), 3_000);
        assert_eq!(reports[0], QuantumReport::default());
        assert_eq!(e.elapsed_cycles(), elapsed, "blocked calls charge no cycles");
        assert_eq!(e.carried_op_buffers(), carried);
    }

    #[test]
    fn a_long_block_does_not_lose_the_prefetched_op_stream() {
        // The stale-carry sweep reclaims tags unseen for CARRY_STALE_AFTER
        // calls; a blocked slot *is* seen, so its prefetched ops must
        // survive arbitrarily long sleeps and the stream must continue
        // seamlessly on wake — same distinct-line continuity check as
        // `op_buffers_carry_across_calls_per_tag`.
        let ops: Vec<Op> = (0..1024u64).map(|i| Op::Load { addr: i * 64 }).collect();
        let run = |sleep_calls: u64| -> u64 {
            let mut e = engine();
            let mut wl = FixedSequence::new("seq", ops.clone());
            let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(7);
            e.run_slots(std::slice::from_mut(&mut slot), 3_000);
            for _ in 0..sleep_calls {
                let mut blocked = ExecSlot::new(CoreId(0), 1, &mut wl)
                    .with_tag(7)
                    .with_blocked(true);
                e.run_slots(std::slice::from_mut(&mut blocked), 3_000);
            }
            assert_eq!(e.carried_op_buffers(), 1, "the sleeping stream survives");
            let mut slot = ExecSlot::new(CoreId(0), 1, &mut wl).with_tag(7);
            e.run_slots(std::slice::from_mut(&mut slot), 3_000);
            e.machine()
                .socket(crate::topology::SocketId(0))
                .unwrap()
                .llc()
                .stats()
                .accesses
        };
        // Sleep well past CARRY_STALE_AFTER (1024) + the prune interval.
        let slept = run(1300);
        let awake = run(0);
        assert!(
            slept.abs_diff(awake) <= 4,
            "slept={slept}, awake={awake}"
        );
    }

    #[test]
    fn parallel_path_matches_serial_with_blocked_slots() {
        // The four-slot two-socket scenario with a rotating blocked slot:
        // both paths must agree bit-for-bit, including rounds where a whole
        // socket is asleep (serial fallback) and rounds where both sockets
        // stay populated.
        let config = MachineConfig::scaled_paper_numa_machine(64);
        let run = |parallel: bool| {
            let mut e = SimEngine::new(Machine::new(config.clone()));
            let mut workloads: Vec<FixedSequence> = (0..4)
                .map(|w| {
                    FixedSequence::new(format!("wl{w}"), lcg_ops(w as u64 + 1, 2048))
                        .with_mem_parallelism(1.0 + w as f64)
                })
                .collect();
            let mut all_reports = Vec::new();
            for round in 0..6usize {
                let mut slots: Vec<ExecSlot<'_>> = workloads
                    .iter_mut()
                    .enumerate()
                    .map(|(w, wl)| {
                        let core = CoreId(if w < 2 { w } else { w + 2 });
                        // Rounds 0-3 block one slot each; round 4 blocks all
                        // of socket 1; round 5 runs everyone.
                        let blocked = match round {
                            0..=3 => w == round,
                            4 => w >= 2,
                            _ => false,
                        };
                        ExecSlot::new(core, w as OwnerId + 1, wl)
                            .with_tag(w as u64 + 1)
                            .with_blocked(blocked)
                    })
                    .collect();
                let reports = if parallel {
                    e.run_slots_parallel(&mut slots, 8_000)
                } else {
                    e.run_slots(&mut slots, 8_000)
                };
                for (slot, report) in slots.iter().zip(&reports) {
                    if slot.blocked {
                        assert_eq!(*report, QuantumReport::default());
                    }
                }
                all_reports.push(reports);
            }
            let llc0 = e.machine().llc_stats(crate::topology::SocketId(0)).unwrap();
            let llc1 = e.machine().llc_stats(crate::topology::SocketId(1)).unwrap();
            (all_reports, llc0, llc1, e.elapsed_cycles())
        };
        assert_eq!(run(false), run(true));
    }
}
