//! Cache hierarchy: private per-core L1D/L1I/L2 and the shared LLC.
//!
//! The hierarchy mirrors the paper's testbed (Table 1): every core owns a
//! split 32 KB L1 and a unified 256 KB L2 ("intermediate level caches", ILC,
//! in the paper's terminology) while the 10 MB, 20-way LLC is shared by every
//! core of a socket. Accesses walk the hierarchy top-down and fill every
//! level on the path on a miss.

use crate::cache::{Cache, CacheConfig, OwnerId};
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Kind of memory access issued by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (looked up in the L1I).
    InstructionFetch,
    /// Data load (looked up in the L1D).
    Load,
    /// Data store (looked up in the L1D; write-allocate).
    Store,
}

/// Level of the memory hierarchy that satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Hit in the level-1 cache.
    L1,
    /// Hit in the level-2 cache (an "intermediate level cache" hit).
    L2,
    /// Hit in the shared last-level cache.
    Llc,
    /// Served from the local NUMA node's memory (an LLC miss).
    LocalMemory,
    /// Served from a remote NUMA node's memory (an LLC miss with the
    /// additional interconnect penalty — the cost socket dedication imposes
    /// on migrated vCPUs in Fig. 9).
    RemoteMemory,
}

impl MemLevel {
    /// Whether the access had to leave the socket's cache hierarchy.
    pub fn is_llc_miss(&self) -> bool {
        matches!(self, MemLevel::LocalMemory | MemLevel::RemoteMemory)
    }

    /// Whether the access had to be looked up in the LLC at all
    /// (i.e. it missed every intermediate-level cache).
    pub fn reached_llc(&self) -> bool {
        matches!(
            self,
            MemLevel::Llc | MemLevel::LocalMemory | MemLevel::RemoteMemory
        )
    }

    /// Whether the access missed the L1, i.e. was resolved at or beyond the
    /// L2 — a miss in at least one intermediate-level cache. This is the
    /// event the `ilc_misses` counter records: an access that misses L1 but
    /// hits L2 counts, unlike [`MemLevel::reached_llc`] which requires
    /// missing the L2 as well.
    pub fn missed_l1(&self) -> bool {
        !matches!(self, MemLevel::L1)
    }
}

/// Outcome of a single memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The level that satisfied the access.
    pub level: MemLevel,
    /// Latency charged to the access, in core cycles.
    pub latency: u32,
    /// Whether a valid LLC line belonging to another owner was evicted by
    /// this access (a pollution event).
    pub polluted_llc: bool,
}

/// The private caches of one core.
#[derive(Debug, Clone)]
pub struct CoreCaches {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
}

impl CoreCaches {
    /// Builds the private caches of a core.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if any geometry is invalid.
    pub fn new(
        l1d: CacheConfig,
        l1i: CacheConfig,
        l2: CacheConfig,
        seed: u64,
    ) -> Result<Self, SimError> {
        Ok(CoreCaches {
            l1d: Cache::with_seed(l1d, seed ^ 0x11d)?,
            l1i: Cache::with_seed(l1i, seed ^ 0x111)?,
            l2: Cache::with_seed(l2, seed ^ 0x222)?,
        })
    }

    /// Immutable view of the L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Immutable view of the L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Immutable view of the unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Flushes all lines of `owner` from the private caches, returning how
    /// many were invalidated.
    pub fn flush_owner(&mut self, owner: OwnerId) -> u64 {
        self.l1d.flush_owner(owner) + self.l1i.flush_owner(owner) + self.l2.flush_owner(owner)
    }

    /// Pre-sizes the per-owner counters of every private cache for `owner`
    /// (see [`Cache::register_owner`]).
    pub fn register_owner(&mut self, owner: OwnerId) {
        self.l1d.register_owner(owner);
        self.l1i.register_owner(owner);
        self.l2.register_owner(owner);
    }

    /// Resets private cache statistics.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
    }

    /// Walks the private caches and, on an L2 miss, the shared `llc`.
    ///
    /// Returns which level satisfied the access (memory levels are reported
    /// as [`MemLevel::LocalMemory`]; the caller decides whether the NUMA
    /// placement turns it into [`MemLevel::RemoteMemory`]) and whether the
    /// LLC fill evicted another owner's line.
    #[inline]
    pub fn walk(
        &mut self,
        llc: &mut Cache,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> (MemLevel, bool) {
        let l1 = match kind {
            AccessKind::InstructionFetch => &mut self.l1i,
            AccessKind::Load | AccessKind::Store => &mut self.l1d,
        };
        if l1.access(addr, owner).hit {
            return (MemLevel::L1, false);
        }
        if self.l2.access(addr, owner).hit {
            return (MemLevel::L2, false);
        }
        let llc_result = llc.access(addr, owner);
        let polluted = llc_result
            .evicted_owner
            .map(|victim| victim != owner)
            .unwrap_or(false);
        if llc_result.hit {
            (MemLevel::Llc, false)
        } else {
            (MemLevel::LocalMemory, polluted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_hierarchy() -> (CoreCaches, Cache) {
        let l1 = CacheConfig::new(1024, 2, 64);
        let l2 = CacheConfig::new(4096, 4, 64);
        let llc = CacheConfig::new(16 * 1024, 8, 64);
        (
            CoreCaches::new(l1.clone(), l1, l2, 1).unwrap(),
            Cache::new(llc).unwrap(),
        )
    }

    #[test]
    fn cold_access_goes_to_memory_then_warms_all_levels() {
        let (mut core, mut llc) = tiny_hierarchy();
        let (level, _) = core.walk(&mut llc, 0x4000, AccessKind::Load, 1);
        assert_eq!(level, MemLevel::LocalMemory);
        let (level, _) = core.walk(&mut llc, 0x4000, AccessKind::Load, 1);
        assert_eq!(level, MemLevel::L1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let (mut core, mut llc) = tiny_hierarchy();
        // L1: 1024 B, 2-way, 64 B lines => 8 sets. Address stride of
        // 8*64 = 512 maps to the same L1 set; three such lines overflow it.
        let addrs = [0u64, 512, 1024];
        for &a in &addrs {
            core.walk(&mut llc, a, AccessKind::Load, 1);
        }
        // First address has been evicted from L1 (2 ways) but still sits in L2.
        let (level, _) = core.walk(&mut llc, addrs[0], AccessKind::Load, 1);
        assert_eq!(level, MemLevel::L2);
    }

    #[test]
    fn llc_hit_when_l2_too_small() {
        let (mut core, mut llc) = tiny_hierarchy();
        // Working set of 128 lines (8 KiB) overflows the 4 KiB L2 but fits
        // in the 16 KiB LLC.
        for round in 0..3 {
            let mut llc_hits = 0;
            for i in 0..128u64 {
                let (level, _) = core.walk(&mut llc, i * 64, AccessKind::Load, 1);
                if level == MemLevel::Llc {
                    llc_hits += 1;
                }
            }
            if round > 0 {
                assert!(llc_hits > 0, "round {round} should see LLC hits");
            }
        }
    }

    #[test]
    fn instruction_fetches_use_the_l1i() {
        let (mut core, mut llc) = tiny_hierarchy();
        core.walk(&mut llc, 0x100, AccessKind::InstructionFetch, 1);
        assert_eq!(core.l1i().stats().accesses, 1);
        assert_eq!(core.l1d().stats().accesses, 0);
    }

    #[test]
    fn pollution_flag_reports_cross_owner_llc_eviction() {
        let l1 = CacheConfig::new(128, 2, 64); // 1 set, 2 ways
        let l2 = CacheConfig::new(256, 2, 64); // 2 sets
        let llc_cfg = CacheConfig::new(256, 2, 64); // 2 sets, 2 ways: tiny LLC
        let mut core = CoreCaches::new(l1.clone(), l1, l2, 1).unwrap();
        let mut llc = Cache::new(llc_cfg).unwrap();
        // Owner 1 fills both ways of LLC set 0 (stride 2*64=128 maps to set 0).
        core.walk(&mut llc, 0, AccessKind::Load, 1);
        core.walk(&mut llc, 128, AccessKind::Load, 1);
        // Owner 2 now misses into the same set and must evict owner 1.
        let (_, polluted) = core.walk(&mut llc, 256, AccessKind::Load, 2);
        assert!(polluted);
    }

    #[test]
    fn mem_level_predicates() {
        assert!(MemLevel::LocalMemory.is_llc_miss());
        assert!(MemLevel::RemoteMemory.is_llc_miss());
        assert!(!MemLevel::Llc.is_llc_miss());
        assert!(MemLevel::Llc.reached_llc());
        assert!(!MemLevel::L2.reached_llc());
        // An L2 hit missed the L1, so it counts as an ILC miss even though
        // it never reached the LLC.
        assert!(!MemLevel::L1.missed_l1());
        assert!(MemLevel::L2.missed_l1());
        assert!(MemLevel::Llc.missed_l1());
        assert!(MemLevel::LocalMemory.missed_l1());
    }

    #[test]
    fn flush_owner_clears_private_and_not_other_owner() {
        let (mut core, mut llc) = tiny_hierarchy();
        core.walk(&mut llc, 0x40, AccessKind::Load, 1);
        core.walk(&mut llc, 0x80, AccessKind::Load, 2);
        core.flush_owner(1);
        let (level, _) = core.walk(&mut llc, 0x80, AccessKind::Load, 2);
        assert_eq!(level, MemLevel::L1);
        let (level, _) = core.walk(&mut llc, 0x40, AccessKind::Load, 1);
        assert_ne!(level, MemLevel::L1);
    }
}
