//! Cache replacement policies.
//!
//! The paper's testbed uses an ordinary LRU-managed last-level cache; the
//! related-work section (Section 6) discusses replacement-policy based
//! mitigations (DIP: LRU vs. BIP with set dueling). We provide LRU as the
//! default plus BIP/DIP/Random so that the benchmark harness can run the
//! replacement-policy ablation discussed in `DESIGN.md`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Replacement policy used by a [`crate::cache::Cache`].
///
/// The policy decides which way of a set is evicted on a miss in a full set
/// and at which recency position a newly inserted line starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line; insert new lines as MRU.
    #[default]
    Lru,
    /// Bimodal insertion: new lines are inserted in the LRU position most of
    /// the time and only promoted to MRU with a small probability. This
    /// protects the cache from scanning (blockie/lbm-like) workloads.
    Bip,
    /// Dynamic insertion (DIP): set dueling between [`ReplacementPolicy::Lru`]
    /// and [`ReplacementPolicy::Bip`], following Qureshi et al. (ISCA 2007).
    Dip,
    /// Evict a (deterministically seeded) random line.
    Random,
}

impl ReplacementPolicy {
    /// Human-readable name used by benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Bip => "bip",
            ReplacementPolicy::Dip => "dip",
            ReplacementPolicy::Random => "random",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Probability (out of [`BIP_EPSILON_DEN`]) that BIP inserts a new line in
/// the MRU position instead of the LRU position.
pub const BIP_EPSILON_NUM: u32 = 1;
/// Denominator of the BIP epsilon probability.
pub const BIP_EPSILON_DEN: u32 = 32;

/// Runtime state backing a replacement policy decision.
///
/// The state is shared by every set of a cache: it carries the RNG used by
/// BIP/Random and the PSEL saturating counter used by DIP set dueling.
#[derive(Debug, Clone)]
pub struct ReplacementState {
    policy: ReplacementPolicy,
    rng: SmallRng,
    /// DIP policy-selector counter. Values above the midpoint favour BIP.
    psel: i32,
    psel_max: i32,
}

/// Decision taken for a newly inserted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPosition {
    /// Insert at the most-recently-used position (normal LRU behaviour).
    Mru,
    /// Insert at the least-recently-used position (BIP behaviour): the line
    /// will be the next eviction victim unless it is reused first.
    Lru,
}

impl ReplacementState {
    /// Creates policy state with a deterministic seed.
    pub fn new(policy: ReplacementPolicy, seed: u64) -> Self {
        ReplacementState {
            policy,
            rng: SmallRng::seed_from_u64(seed),
            psel: 512,
            psel_max: 1024,
        }
    }

    /// The policy this state implements.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Chooses a victim way among `ways` candidates given their recency
    /// timestamps (`last_use[i]` is the logical time way `i` was last used).
    ///
    /// Lower timestamps are older. Invalid ways should be handled by the
    /// caller before asking for a victim.
    pub fn pick_victim(&mut self, last_use: &[u64]) -> usize {
        debug_assert!(!last_use.is_empty());
        match self.policy {
            ReplacementPolicy::Random => self.rng.gen_range(0..last_use.len()),
            // LRU, BIP and DIP all evict the least recently used line; they
            // differ only in the insertion position of new lines.
            _ => {
                let mut victim = 0;
                let mut oldest = last_use[0];
                for (i, &ts) in last_use.iter().enumerate().skip(1) {
                    if ts < oldest {
                        oldest = ts;
                        victim = i;
                    }
                }
                victim
            }
        }
    }

    /// Allocation-free victim choice for callers that already scanned the
    /// set: `lru_way` is the way with the oldest timestamp (first index on
    /// ties) and `ways` the associativity. Consumes the RNG exactly like
    /// [`ReplacementState::pick_victim`] would, so both entry points yield
    /// identical eviction streams.
    #[inline]
    pub fn pick_victim_prescanned(&mut self, lru_way: usize, ways: usize) -> usize {
        debug_assert!(ways > 0);
        match self.policy {
            ReplacementPolicy::Random => self.rng.gen_range(0..ways),
            _ => lru_way,
        }
    }

    /// Chooses the recency position of a newly inserted line.
    ///
    /// `set_index` is used by DIP set dueling: a few leader sets always use
    /// LRU, a few always use BIP, and the remaining follower sets follow the
    /// PSEL counter.
    #[inline]
    pub fn insert_position(&mut self, set_index: usize, total_sets: usize) -> InsertPosition {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Random => InsertPosition::Mru,
            ReplacementPolicy::Bip => self.bip_position(),
            ReplacementPolicy::Dip => match dip_set_role(set_index, total_sets) {
                DipSetRole::LruLeader => InsertPosition::Mru,
                DipSetRole::BipLeader => self.bip_position(),
                DipSetRole::Follower => {
                    if self.psel * 2 >= self.psel_max {
                        self.bip_position()
                    } else {
                        InsertPosition::Mru
                    }
                }
            },
        }
    }

    /// Notifies the policy that a miss occurred in `set_index`, so DIP can
    /// update its PSEL duel counter.
    #[inline]
    pub fn on_miss(&mut self, set_index: usize, total_sets: usize) {
        if self.policy != ReplacementPolicy::Dip {
            return;
        }
        match dip_set_role(set_index, total_sets) {
            // A miss in an LRU leader set is evidence in favour of BIP.
            DipSetRole::LruLeader => self.psel = (self.psel + 1).min(self.psel_max),
            // A miss in a BIP leader set is evidence in favour of LRU.
            DipSetRole::BipLeader => self.psel = (self.psel - 1).max(0),
            DipSetRole::Follower => {}
        }
    }

    fn bip_position(&mut self) -> InsertPosition {
        if self.rng.gen_range(0..BIP_EPSILON_DEN) < BIP_EPSILON_NUM {
            InsertPosition::Mru
        } else {
            InsertPosition::Lru
        }
    }
}

/// Role a set plays in DIP set dueling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DipSetRole {
    LruLeader,
    BipLeader,
    Follower,
}

/// Number of leader sets (per policy) used by DIP set dueling.
const DIP_LEADER_STRIDE: usize = 32;

fn dip_set_role(set_index: usize, total_sets: usize) -> DipSetRole {
    if total_sets < 2 * DIP_LEADER_STRIDE {
        // Tiny caches: alternate leaders to keep dueling meaningful.
        return match set_index % 4 {
            0 => DipSetRole::LruLeader,
            1 => DipSetRole::BipLeader,
            _ => DipSetRole::Follower,
        };
    }
    if set_index.is_multiple_of(DIP_LEADER_STRIDE) {
        DipSetRole::LruLeader
    } else if set_index % DIP_LEADER_STRIDE == 1 {
        DipSetRole::BipLeader
    } else {
        DipSetRole::Follower
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_oldest_way() {
        let mut state = ReplacementState::new(ReplacementPolicy::Lru, 1);
        let victim = state.pick_victim(&[10, 3, 7, 9]);
        assert_eq!(victim, 1);
    }

    #[test]
    fn lru_always_inserts_mru() {
        let mut state = ReplacementState::new(ReplacementPolicy::Lru, 1);
        for set in 0..128 {
            assert_eq!(state.insert_position(set, 1024), InsertPosition::Mru);
        }
    }

    #[test]
    fn bip_mostly_inserts_lru() {
        let mut state = ReplacementState::new(ReplacementPolicy::Bip, 42);
        let mut lru_inserts = 0;
        let trials = 10_000;
        for i in 0..trials {
            if state.insert_position(i % 64, 1024) == InsertPosition::Lru {
                lru_inserts += 1;
            }
        }
        let fraction = lru_inserts as f64 / trials as f64;
        assert!(
            fraction > 0.9,
            "BIP should insert at LRU most of the time, got {fraction}"
        );
        assert!(fraction < 1.0, "BIP must occasionally insert at MRU");
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut state = ReplacementState::new(ReplacementPolicy::Random, 7);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[state.pick_victim(&[1, 2, 3, 4])] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "random policy should eventually evict every way"
        );
    }

    #[test]
    fn dip_misses_in_lru_leaders_push_towards_bip() {
        let mut state = ReplacementState::new(ReplacementPolicy::Dip, 3);
        let before = state.psel;
        // Set 0 is an LRU leader set for large caches.
        for _ in 0..100 {
            state.on_miss(0, 1024);
        }
        assert!(state.psel > before);
    }

    #[test]
    fn dip_misses_in_bip_leaders_push_towards_lru() {
        let mut state = ReplacementState::new(ReplacementPolicy::Dip, 3);
        let before = state.psel;
        for _ in 0..100 {
            state.on_miss(1, 1024);
        }
        assert!(state.psel < before);
    }

    #[test]
    fn psel_saturates() {
        let mut state = ReplacementState::new(ReplacementPolicy::Dip, 3);
        for _ in 0..10_000 {
            state.on_miss(0, 1024);
        }
        assert!(state.psel <= state.psel_max);
        for _ in 0..100_000 {
            state.on_miss(1, 1024);
        }
        assert!(state.psel >= 0);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::Dip.to_string(), "dip");
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn non_dip_policies_ignore_miss_feedback() {
        let mut state = ReplacementState::new(ReplacementPolicy::Lru, 3);
        let before = state.psel;
        state.on_miss(0, 1024);
        assert_eq!(state.psel, before);
    }
}
