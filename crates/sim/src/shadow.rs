//! Per-owner shadow LLC used for simulator-based pollution attribution.
//!
//! Section 3.3 of the paper describes two ways of attributing LLC statistics
//! to a single VM while other VMs run on the same socket. The second one
//! replays the VM's instruction stream inside a micro-architectural simulator
//! (McSimA+ driven by a Pin tool) running on a dedicated machine, which
//! returns the PMCs the VM *would* have produced had it been alone.
//!
//! [`ShadowAttribution`] is the equivalent component here: for every owner it
//! maintains a private copy of the LLC and replays the owner's LLC-level
//! accesses into it. The shadow cache is only touched by one owner, so its
//! miss count estimates the owner's solo pollution, independent of who else
//! shares the real LLC.

use crate::cache::{Cache, CacheConfig, OwnerId};
use crate::error::SimError;
use std::collections::HashMap;

/// Per-owner solo-LLC replay used by the simulator-based pollution monitor.
#[derive(Debug, Clone)]
pub struct ShadowAttribution {
    llc_config: CacheConfig,
    shadows: HashMap<OwnerId, Cache>,
    references: HashMap<OwnerId, u64>,
    misses: HashMap<OwnerId, u64>,
}

impl ShadowAttribution {
    /// Creates an attribution engine replaying into shadow caches with the
    /// geometry of `llc_config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the geometry is invalid.
    pub fn new(llc_config: CacheConfig) -> Result<Self, SimError> {
        llc_config.num_sets()?;
        Ok(ShadowAttribution {
            llc_config,
            shadows: HashMap::new(),
            references: HashMap::new(),
            misses: HashMap::new(),
        })
    }

    /// Replays one LLC-level access (an access that missed the private
    /// caches) of `owner` at `addr`.
    pub fn observe(&mut self, owner: OwnerId, addr: u64) {
        let cache = self.shadows.entry(owner).or_insert_with(|| {
            let mut shadow = Cache::with_seed(self.llc_config.clone(), u64::from(owner))
                .expect("validated geometry");
            shadow.register_owner(owner);
            shadow
        });
        *self.references.entry(owner).or_insert(0) += 1;
        if !cache.access(addr, owner).hit {
            *self.misses.entry(owner).or_insert(0) += 1;
        }
    }

    /// Estimated solo LLC misses of `owner` since the last
    /// [`ShadowAttribution::reset_counters`].
    pub fn solo_misses(&self, owner: OwnerId) -> u64 {
        self.misses.get(&owner).copied().unwrap_or(0)
    }

    /// LLC references replayed for `owner` since the last counter reset.
    pub fn solo_references(&self, owner: OwnerId) -> u64 {
        self.references.get(&owner).copied().unwrap_or(0)
    }

    /// Estimated solo miss ratio of `owner` (misses / references).
    pub fn solo_miss_ratio(&self, owner: OwnerId) -> f64 {
        let refs = self.solo_references(owner);
        if refs == 0 {
            0.0
        } else {
            self.solo_misses(owner) as f64 / refs as f64
        }
    }

    /// Clears miss/reference counters while keeping shadow cache contents
    /// (the warmed-up state carries over to the next sampling period, like a
    /// long-running simulator instance would).
    pub fn reset_counters(&mut self) {
        self.references.clear();
        self.misses.clear();
    }

    /// Drops the shadow state of an owner entirely (VM destroyed).
    pub fn remove_owner(&mut self, owner: OwnerId) {
        self.shadows.remove(&owner);
        self.references.remove(&owner);
        self.misses.remove(&owner);
    }

    /// Owners currently tracked, in ascending id order.
    ///
    /// The backing store is a `HashMap` (lookups on the replay hot path),
    /// so the keys are collected and sorted here rather than exposing the
    /// hash-iteration order to callers.
    pub fn owners(&self) -> impl Iterator<Item = OwnerId> + '_ {
        // kyoto-lint: allow(nondet-iter): keys are sorted below before being exposed
        let mut owners: Vec<OwnerId> = self.shadows.keys().copied().collect();
        owners.sort_unstable();
        owners.into_iter()
    }

    /// Moves the shadow state (cache contents and counters) of `owners` out
    /// of `self` into a new, independent `ShadowAttribution` with the same
    /// geometry.
    ///
    /// The engine's socket-parallel path uses this to hand each socket's
    /// execution thread exactly the shadow state of the owners running on
    /// that socket; [`ShadowAttribution::merge`] reabsorbs the partitions
    /// after the threads join. Owners without existing state are simply
    /// absent from the partition and get created there on first
    /// [`ShadowAttribution::observe`].
    pub fn take_partition(&mut self, owners: &[OwnerId]) -> ShadowAttribution {
        let mut part = ShadowAttribution {
            llc_config: self.llc_config.clone(),
            shadows: HashMap::with_capacity(owners.len()),
            references: HashMap::with_capacity(owners.len()),
            misses: HashMap::with_capacity(owners.len()),
        };
        for &owner in owners {
            if let Some(cache) = self.shadows.remove(&owner) {
                part.shadows.insert(owner, cache);
            }
            if let Some(refs) = self.references.remove(&owner) {
                part.references.insert(owner, refs);
            }
            if let Some(misses) = self.misses.remove(&owner) {
                part.misses.insert(owner, misses);
            }
        }
        part
    }

    /// Reabsorbs a partition produced by [`ShadowAttribution::take_partition`].
    ///
    /// Owners tracked on both sides keep the partition's cache contents (the
    /// partition is the newer state) and sum their counters; this only
    /// happens when a partition is merged back into an attribution that
    /// observed the same owner in the meantime, which the engine's
    /// disjoint-by-socket partitioning rules out.
    pub fn merge(&mut self, part: ShadowAttribution) {
        debug_assert_eq!(
            self.llc_config, part.llc_config,
            "cannot merge shadow attributions of different geometry"
        );
        self.shadows.extend(part.shadows);
        // kyoto-lint: allow(nondet-iter): summing u64 counters is commutative, order is immaterial
        for (owner, refs) in part.references {
            *self.references.entry(owner).or_insert(0) += refs;
        }
        // kyoto-lint: allow(nondet-iter): summing u64 counters is commutative, order is immaterial
        for (owner, misses) in part.misses {
            *self.misses.entry(owner).or_insert(0) += misses;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow() -> ShadowAttribution {
        ShadowAttribution::new(CacheConfig::new(16 * 1024, 8, 64)).unwrap()
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(ShadowAttribution::new(CacheConfig::new(100, 8, 64)).is_err());
    }

    #[test]
    fn solo_misses_ignore_other_owners() {
        let mut s = shadow();
        // Owner 1 touches a tiny working set repeatedly: after warm-up it
        // should produce no further shadow misses.
        for round in 0..10 {
            for i in 0..4u64 {
                s.observe(1, i * 64);
            }
            // Owner 2 streams aggressively; this must not evict owner 1's
            // shadow lines because shadows are private per owner.
            for i in 0..1000u64 {
                s.observe(2, (round * 1000 + i) * 64);
            }
        }
        assert_eq!(
            s.solo_misses(1),
            4,
            "owner 1 should only miss on cold lines"
        );
        assert!(s.solo_misses(2) > 100);
    }

    #[test]
    fn counters_reset_but_contents_survive() {
        let mut s = shadow();
        for i in 0..8u64 {
            s.observe(1, i * 64);
        }
        assert_eq!(s.solo_misses(1), 8);
        s.reset_counters();
        assert_eq!(s.solo_misses(1), 0);
        // Replaying the same lines hits the warmed shadow cache.
        for i in 0..8u64 {
            s.observe(1, i * 64);
        }
        assert_eq!(s.solo_misses(1), 0);
        assert_eq!(s.solo_references(1), 8);
    }

    #[test]
    fn partitions_split_and_merge_round_trip() {
        let mut s = shadow();
        for i in 0..8u64 {
            s.observe(1, i * 64);
            s.observe(2, (100 + i) * 64);
        }
        let part = s.take_partition(&[1, 3]);
        // Owner 1 moved out entirely; owner 3 has no state yet.
        assert_eq!(s.solo_misses(1), 0);
        assert_eq!(s.solo_references(1), 0);
        assert_eq!(part.solo_misses(1), 8);
        assert_eq!(part.solo_references(1), 8);
        assert_eq!(s.solo_misses(2), 8);
        assert_eq!(part.owners().count(), 1);
        s.merge(part);
        assert_eq!(s.solo_misses(1), 8);
        assert_eq!(s.owners().count(), 2);
        // Warmed contents survived the round trip: replaying owner 1's
        // lines produces no new misses.
        for i in 0..8u64 {
            s.observe(1, i * 64);
        }
        assert_eq!(s.solo_misses(1), 8);
    }

    #[test]
    fn owners_listing_is_sorted_regardless_of_insertion_order() {
        let mut s = shadow();
        for owner in [7u16, 2, 9, 1, 5] {
            s.observe(owner, 0);
        }
        assert_eq!(s.owners().collect::<Vec<_>>(), vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn miss_ratio_and_owner_listing() {
        let mut s = shadow();
        assert_eq!(s.solo_miss_ratio(1), 0.0);
        s.observe(1, 0);
        s.observe(1, 0);
        assert!((s.solo_miss_ratio(1) - 0.5).abs() < 1e-12);
        assert_eq!(s.owners().count(), 1);
        s.remove_owner(1);
        assert_eq!(s.owners().count(), 0);
        assert_eq!(s.solo_references(1), 0);
    }
}
