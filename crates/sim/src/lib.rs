//! # kyoto-sim — micro-architectural substrate for the Kyoto reproduction
//!
//! This crate provides the hardware model on which the rest of the Kyoto
//! stack runs. The original paper ("Mitigating performance unpredictability
//! in the IaaS using the Kyoto principle", Middleware 2016) evaluates on a
//! real Intel Xeon E5-1603 v3 machine and reads hardware performance
//! monitoring counters (PMCs) through `perfctr-xen`. Neither is available to
//! a pure-Rust library, so this crate supplies the closest synthetic
//! equivalent:
//!
//! * [`cache`] — set-associative caches with pluggable replacement policies
//!   and per-owner occupancy accounting.
//! * [`hierarchy`] — the private L1D/L1I/L2 + shared LLC cache hierarchy of
//!   the paper's testbed (Table 1).
//! * [`topology`] — machine, socket, core and NUMA-node model, including the
//!   exact geometry and latencies of the paper's machines.
//! * [`pmc`] — virtualised performance counters (the `perfctr-xen` stand-in).
//! * [`workload`] — the [`workload::Workload`] trait that memory-access
//!   generators implement (implementations live in `kyoto-workloads`).
//! * [`engine`] — a deterministic, time-stepped engine that interleaves the
//!   access streams of co-scheduled virtual CPUs over the shared LLC.
//! * [`shadow`] — per-owner shadow LLC used for simulator-based pollution
//!   attribution (the McSimA+ stand-in of Section 3.3 of the paper).
//!
//! # Example
//!
//! ```
//! use kyoto_sim::topology::{Machine, MachineConfig};
//! use kyoto_sim::engine::{ExecSlot, SimEngine};
//! use kyoto_sim::workload::{Op, Workload};
//!
//! /// A trivial workload touching a single cache line repeatedly.
//! struct OneLine;
//! impl Workload for OneLine {
//!     fn next_op(&mut self) -> Op {
//!         Op::Load { addr: 0x1000 }
//!     }
//!     fn name(&self) -> &str {
//!         "one-line"
//!     }
//!     fn working_set_bytes(&self) -> u64 {
//!         64
//!     }
//! }
//!
//! let machine = Machine::new(MachineConfig::scaled_paper_machine(16));
//! let mut engine = SimEngine::new(machine);
//! let mut wl = OneLine;
//! let mut slot = ExecSlot::new(kyoto_sim::topology::CoreId(0), 0, &mut wl);
//! engine.run_slots(std::slice::from_mut(&mut slot), 10_000);
//! assert!(slot.pmcs.instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod pmc;
pub mod replacement;
pub mod shadow;
pub mod topology;
pub mod workload;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use engine::{ExecSlot, QuantumReport, SimEngine};
pub use error::SimError;
pub use hierarchy::{AccessKind, AccessOutcome, MemLevel};
pub use pmc::{PmcSet, VirtualPmu};
pub use replacement::ReplacementPolicy;
pub use topology::{CoreId, Machine, MachineConfig, NumaNode, SocketId};
pub use workload::{Op, Workload};
